"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments that lack the ``wheel`` package (``pip install -e . --no-build-isolation``
falls back to the legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
