"""Incremental ripping micro-benchmark: rip cost vs fraction of UI mutated.

PR 6's tentpole claim, measured: after a scoped mutation, the event-driven
incremental ripper re-explores only the dirty subtrees and replays the rest
from the prior trace.  The bench rips :class:`MutableDemoApp` from scratch,
applies mutations of increasing blast radius (one dialog-spec row, one
main-window widget, several main-window widgets), re-rips incrementally,
and records live-visit counts against the full-rip baseline.

Asserted, not just recorded (the ISSUE acceptance bar):

* a single-dialog mutation visits **< 20 %** of the nodes a full rip
  activates — checked through the ``rip_incremental`` telemetry event, not
  just the report;
* every incremental rip activates strictly fewer nodes live than a full
  re-rip of the same build would;
* every spliced graph is byte-identical to a scratch rip of a fresh,
  identically mutated instance.
"""

from __future__ import annotations

import json

from repro.apps.mutable import MutableDemoApp
from repro.bench.telemetry import AggregatingSink, use_sink
from repro.ripping.ripper import GuiRipper
from repro.topology.persistence import ung_to_dict

#: Mutation scenarios, smallest blast radius first.  Each value mutates the
#: app in place; a fresh twin gets the identical treatment to provide the
#: byte-identity reference.
SCENARIOS = {
    "dialog-row": lambda app: app.mutate_dialog_spec("checkbox", "Bench Row"),
    "main-widget": lambda app: app.add_quick_button("Bench Button"),
    "main-spread": lambda app: (app.add_quick_button("Bench A"),
                                app.add_quick_button("Bench B"),
                                app.set_status_line("bench"),
                                app.toggle_tab()),
}


class _CaptureSink(AggregatingSink):
    """AggregatingSink that also keeps the event objects themselves."""

    def __init__(self) -> None:
        super().__init__()
        self.events = []

    def emit(self, event) -> None:
        super().emit(event)
        self.events.append(event)


def _ung_bytes(ung) -> bytes:
    return json.dumps(ung_to_dict(ung), indent=1,
                      ensure_ascii=False).encode("utf-8")


def _scenario_cost(name):
    """Full rip, mutate, incremental rip; return accounting + identity."""
    app = MutableDemoApp()
    recorder = GuiRipper(app)
    recorder.rip()
    SCENARIOS[name](app)
    sink = _CaptureSink()
    with use_sink(sink):
        replayer = GuiRipper(app)
        spliced = replayer.rip_incremental(recorder.ung, recorder.trace)
    assert replayer.report.mode == "incremental", (
        f"{name}: fell back: {replayer.report.fallback_reason}")
    events = [e for e in sink.events if e.name == "rip_incremental"]
    assert len(events) == 1

    twin = MutableDemoApp()
    SCENARIOS[name](twin)
    reference = GuiRipper(twin)
    scratch = reference.rip()
    assert _ung_bytes(spliced) == _ung_bytes(scratch), (
        f"{name}: incremental splice is not byte-identical to a full re-rip")
    return {
        "visited": events[0].nodes_visited,
        "reused": events[0].nodes_reused,
        "patched": events[0].nodes_patched,
        "reuse_fraction": round(events[0].reuse_fraction, 4),
        "seconds": round(replayer.report.duration_seconds, 4),
        "full_rerip_visits": reference.report.nodes_visited,
        "full_rerip_seconds": round(reference.report.duration_seconds, 4),
    }


def test_incremental_rip_cost_scales_with_mutated_fraction(benchmark):
    baseline = GuiRipper(MutableDemoApp())
    baseline.rip()
    full_visits = baseline.report.nodes_visited

    costs = {name: _scenario_cost(name) for name in SCENARIOS}

    # Acceptance: a single-dialog mutation re-explores < 20 % of the UI.
    dialog = costs["dialog-row"]
    assert dialog["visited"] < 0.2 * full_visits, (
        f"dialog mutation visited {dialog['visited']} of {full_visits}")
    # Incremental always beats a full re-rip on live activations, and the
    # cost ordering follows the mutation's blast radius.
    for name, cost in costs.items():
        assert cost["visited"] < cost["full_rerip_visits"], name
        assert cost["visited"] < full_visits, name
    assert (costs["dialog-row"]["visited"]
            < costs["main-widget"]["visited"]
            <= costs["main-spread"]["visited"])

    # The timed figure: the cheapest (dialog-only) incremental re-rip.
    def rip_dialog_mutation():
        app = MutableDemoApp()
        recorder = GuiRipper(app)
        recorder.rip()
        SCENARIOS["dialog-row"](app)
        replayer = GuiRipper(app)
        replayer.rip_incremental(recorder.ung, recorder.trace)
        return replayer

    timed = benchmark.pedantic(rip_dialog_mutation, rounds=1, iterations=1)
    assert timed.report.mode == "incremental"

    benchmark.extra_info.update({
        "full_rip_visits": full_visits,
        "full_rip_seconds": round(baseline.report.duration_seconds, 4),
        **{f"{name}/{key}": value
           for name, cost in costs.items() for key, value in cost.items()},
    })
