"""Table 2 — state and observation declaration interfaces.

Regenerates the interface/pattern table and demonstrates that every listed
interface executes against a live application through the pattern the table
names (the interfaces are extensible wrappers over UIA control patterns).
"""

from __future__ import annotations

from repro.apps import ExcelApp, PowerPointApp, WordApp
from repro.bench.reporting import render_table2
from repro.dmi.interface import DMI
from repro.dmi.state import INTERFACE_PATTERN_TABLE


def exercise_every_interface(offline_artifacts) -> dict:
    """Run each Table 2 interface once; return interface -> ok flag."""
    results = {}
    ppt = DMI(PowerPointApp(), offline_artifacts["powerpoint"])
    word = DMI(WordApp(), offline_artifacts["word"])
    excel = DMI(ExcelApp(), offline_artifacts["excel"])

    results["set_scrollbar_pos"] = ppt.set_scrollbar_pos("Vertical Scroll Bar", None, 80.0).ok
    results["select_lines"] = word.select_lines("Document", 0, 1).ok
    results["select_paragraphs"] = word.select_paragraphs("Document", 2, 3).ok
    results["select_controls"] = excel.select_controls(["B7"]).ok
    results["get_texts"] = excel.get_texts("B2").ok
    word.app.ribbon.select_tab("View")
    results["set_toggle_state"] = word.set_toggle_state("Gridlines", True).ok
    # Interaction interfaces address controls on the current screen, so bring
    # the Design tab (which hosts the Themes gallery) forward first.
    ppt.app.ribbon.select_tab("Design")
    ppt.app.desktop.relayout()
    results["set_expanded"] = ppt.set_expanded("Themes").ok
    results["set_collapsed"] = ppt.set_collapsed("Themes").ok
    results["set_value"] = excel.set_value("Formula Bar", "=SUM(C2:C9)").ok
    return results


def test_table2_interfaces(benchmark, offline_artifacts):
    results = benchmark.pedantic(exercise_every_interface, args=(offline_artifacts,),
                                 rounds=1, iterations=1)
    table = render_table2()
    print("\n" + table)
    print("\nLive execution check:")
    for interface, ok in results.items():
        print(f"  {interface:<20} {'ok' if ok else 'FAILED'}")
    assert all(results.values())
    assert set(results) == set(INTERFACE_PATTERN_TABLE)
