"""Figure 6 — failure-cause distribution (policy vs mechanism).

The paper's finding: with GUI+DMI the overwhelming majority of remaining
failures are policy-level (semantic planning), while the GUI-only baseline's
failures are dominated by mechanism-level causes (control localization /
navigation, composite interaction).
"""

from __future__ import annotations

from repro.bench.failures import failure_breakdown, failure_distribution
from repro.bench.reporting import render_figure6


def test_figure6_failure_distribution(benchmark, table3_outcomes):
    dmi_results = table3_outcomes["dmi-gpt5-medium"].results
    gui_results = table3_outcomes["gui-gpt5-medium"].results

    figure = benchmark.pedantic(render_figure6, args=(dmi_results, gui_results),
                                rounds=1, iterations=1)
    print("\n" + figure)

    dmi = failure_distribution(dmi_results)
    gui = failure_distribution(gui_results)

    # DMI failures concentrate at the policy level (paper: 81% / 19%).
    assert dmi["failures"] > 0
    assert dmi["policy_share"] >= 0.6
    # The baseline's failures are mechanism-heavy (paper: 53.3% mechanism).
    assert gui["mechanism_share"] >= 0.4
    # And DMI is strictly more policy-centric than the baseline.
    assert dmi["policy_share"] > gui["policy_share"]

    # Mechanism-level causes present in the baseline but largely absent with DMI.
    gui_causes = failure_breakdown(gui_results)
    assert any("localization" in cause or "composite" in cause for cause in gui_causes)
