"""Figure 5b — normalized core steps on the intersection of solved tasks.

Core steps exclude the fixed 3-call framework overhead; normalization uses
only tasks solved by every compared method so easy-task survivorship does
not skew the comparison (paper §5.3).
"""

from __future__ import annotations

from repro.bench.metrics import normalized_core_steps
from repro.bench.reporting import render_figure5b

GROUPS = (
    ("gui-gpt5-medium", "forest-gpt5-medium", "dmi-gpt5-medium"),
    ("gui-gpt5-minimal", "dmi-gpt5-minimal"),
    ("gui-gpt5-mini", "forest-gpt5-mini", "dmi-gpt5-mini"),
)


def test_figure5b_normalized_core_steps(benchmark, table3_outcomes):
    figure = benchmark.pedantic(render_figure5b, args=(table3_outcomes, GROUPS),
                                rounds=1, iterations=1)
    print("\n" + figure)

    for group in GROUPS:
        normalized = normalized_core_steps(
            {key: table3_outcomes[key].results for key in group})
        dmi_key = [k for k in group if k.startswith("dmi")][0]
        gui_key = [k for k in group if k.startswith("gui")][0]
        assert normalized[dmi_key] < normalized[gui_key], group
        # The paper reports ~2x or better reduction in normalized core steps
        # for the core setting; require a clear (>=1.5x) reduction here.
        if dmi_key == "dmi-gpt5-medium":
            assert normalized[gui_key] / max(normalized[dmi_key], 1e-9) > 1.5
        # The ablation does not reduce core steps relative to the baseline.
        forest_keys = [k for k in group if k.startswith("forest")]
        if forest_keys:
            assert normalized[forest_keys[0]] > normalized[dmi_key]
