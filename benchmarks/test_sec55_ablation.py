"""§5.5 — ablation: declarative interface vs static knowledge.

Provides the DMI navigation forest in the prompt while *disabling* the
declarative interface (the GUI-only + Nav.forest rows of Table 3).  The
paper's finding: for the strong model the static knowledge alone changes
little — the declarative interface is the dominant driver; the weaker model
gains modestly from the knowledge but far less than from full DMI.
"""

from __future__ import annotations

from repro.bench.metrics import aggregate
from repro.bench.reporting import render_ablation

TRIPLES = (
    ("gui-gpt5-medium", "forest-gpt5-medium", "dmi-gpt5-medium"),
    ("gui-gpt5-mini", "forest-gpt5-mini", "dmi-gpt5-mini"),
)


def test_sec55_ablation_static_knowledge_vs_interface(benchmark, table3_outcomes):
    report = benchmark.pedantic(render_ablation, args=(table3_outcomes, TRIPLES),
                                rounds=1, iterations=1)
    print("\n" + report)

    summaries = {key: aggregate(outcome.results) for key, outcome in table3_outcomes.items()}

    # GPT-5 medium: knowledge alone yields no significant gain over the
    # baseline (paper: 42% vs 44.4%) — certainly not the DMI-sized jump.
    gui = summaries["gui-gpt5-medium"].success_rate
    forest = summaries["forest-gpt5-medium"].success_rate
    dmi = summaries["dmi-gpt5-medium"].success_rate
    assert abs(forest - gui) < (dmi - max(forest, gui)) + 0.15
    assert dmi > forest

    # Knowledge alone does not reduce interaction steps the way DMI does.
    assert summaries["forest-gpt5-medium"].avg_steps > summaries["dmi-gpt5-medium"].avg_steps

    # GPT-5-mini: supplementary topology knowledge helps the weaker model
    # (paper: 23.5% vs 17.3%), but full DMI is clearly better still.
    assert summaries["forest-gpt5-mini"].success_rate >= summaries["gui-gpt5-mini"].success_rate
    assert summaries["dmi-gpt5-mini"].success_rate > summaries["forest-gpt5-mini"].success_rate
    assert summaries["dmi-gpt5-mini"].avg_steps < summaries["forest-gpt5-mini"].avg_steps
