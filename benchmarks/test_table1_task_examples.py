"""Table 1 — task examples: imperative GUI vs declarative DMI.

Task 1: make the background blue on all slides (navigation-heavy).
Task 2: show the area close to the end (composite interaction).

The bench executes both tasks through the real DMI instance and through the
imperative GUI path, records the command traces, and prints them side by
side the way Table 1 presents them.
"""

from __future__ import annotations

import dataclasses
import random

from repro.agent.app_agent import GuiAppAgent
from repro.agent.session import InterfaceSetting, SessionResult
from repro.apps import PowerPointApp
from repro.bench.reporting import render_table1
from repro.bench.tasks import task_by_id
from repro.dmi.interface import DMI
from repro.llm.planner import SemanticPlanner
from repro.llm.profiles import GPT5_MEDIUM

PERFECT = dataclasses.replace(
    GPT5_MEDIUM, grounding_error_rate=0.0, nav_plan_error_rate=0.0,
    composite_error_rate=0.0, visual_parse_error_rate=0.0, semantic_error_rate=0.0,
    instruction_following_error=0.0, recovery_competence=1.0)


def dmi_trace_for(task, dmi) -> list:
    planner = SemanticPlanner(PERFECT, random.Random(0))
    plan = planner.plan_declarative(task, dmi.forest, dmi.core)
    trace = []
    for call in plan.calls:
        if call.kind == "visit":
            names = [dmi.forest.node(c["id"]).name for c in call.payload["commands"] if "id" in c]
            trace.append(f"visit({names})")
        elif call.kind == "set_scrollbar_pos":
            trace.append(f"set_scrollbar_pos({call.payload['percent']:.0f}%)")
        else:
            trace.append(call.kind)
    return trace


def gui_trace_for(task, forest) -> list:
    planner = SemanticPlanner(PERFECT, random.Random(0))
    plan = planner.plan_imperative(task, forest)
    trace = []
    for step in plan.steps:
        if step.kind == "click":
            trace.append(f'click("{step.target}")')
        elif step.kind == "drag_scroll":
            trace.append("iterative drag-and-observe on the scrollbar")
        elif step.kind == "type":
            trace.append(f'type("{step.text}")')
        else:
            trace.append(step.kind)
    return trace


def run_table1(offline_artifacts) -> str:
    artifacts = offline_artifacts["powerpoint"]
    task1 = task_by_id("ppt-01-blue-background")
    task2 = task_by_id("ppt-02-scroll-to-end")

    dmi = DMI(PowerPointApp(), artifacts)
    gui_trace1 = gui_trace_for(task1, artifacts.forest)
    dmi_trace1 = dmi_trace_for(task1, dmi)
    gui_trace2 = gui_trace_for(task2, artifacts.forest)
    dmi_trace2 = dmi_trace_for(task2, dmi)

    # Execute the DMI plan for Task 1 end-to-end to confirm the trace works.
    result = SessionResult(task_id=task1.task_id, app="powerpoint",
                           interface=InterfaceSetting.GUI_PLUS_DMI,
                           model="gpt-5", reasoning="medium")
    agent_app = PowerPointApp()
    executing_dmi = DMI(agent_app, artifacts)
    planner = SemanticPlanner(PERFECT, random.Random(0))
    plan = planner.plan_declarative(task1, executing_dmi.forest, executing_dmi.core)
    for call in plan.calls:
        if call.kind == "visit":
            executing_dmi.visit(call.payload["commands"])
    assert task1.checker(agent_app), "the declarative trace must actually complete Task 1"

    # And the imperative trace through the baseline executor.
    gui_app = PowerPointApp()
    gui_agent = GuiAppAgent(gui_app, artifacts.forest, PERFECT, InterfaceSetting.GUI_ONLY,
                            rng=random.Random(0), core=artifacts.core)
    gui_result = SessionResult(task_id=task1.task_id, app="powerpoint",
                               interface=InterfaceSetting.GUI_ONLY,
                               model="gpt-5", reasoning="medium")
    gui_agent.execute_task(task1, gui_result)
    assert gui_result.success

    return render_table1(gui_trace1, dmi_trace1, gui_trace2, dmi_trace2)


def test_table1_task_examples(benchmark, offline_artifacts):
    report = benchmark.pedantic(run_table1, args=(offline_artifacts,), rounds=1, iterations=1)
    print("\n" + report)
    assert "visit(" in report
    assert "set_scrollbar_pos(80%)" in report
    assert 'click("Design")' in report
