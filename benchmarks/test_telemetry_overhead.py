"""Telemetry overhead guard: the default NullSink must cost ~nothing.

PR 5 threads instrumentation points through every hot path (trial
execution, cache loads, broker leases).  The contract that makes that
acceptable is the NullSink guard pattern — ``sink = resolve(self.sink);
if sink: sink.emit(Event(...))`` — which, with telemetry off, pays one
module-global read and one (constant-false) truthiness check and never
constructs an event.  This bench pins that contract two ways:

* a micro-benchmark of the guard pattern itself, asserting the per-site
  cost stays in the nanosecond regime (a generous microsecond-scale bound,
  so the assertion is hardware noise-proof);
* the same warm-cache grid executed with telemetry off (default NullSink)
  and with a live AggregatingSink, both recorded in ``extra_info`` — the
  off path must not be meaningfully slower than the on path (it does
  strictly less work), and both must produce identical results.
"""

from __future__ import annotations

import time

from repro.bench.metrics import aggregate
from repro.bench.runner import BenchmarkConfig, BenchmarkRunner, setting_by_key
from repro.bench.tasks import tasks_for_app
from repro.bench.telemetry import AggregatingSink, resolve, use_sink

TRIALS = 2
SETTING_KEYS = ("gui-gpt5-medium", "dmi-gpt5-medium")

#: Guard iterations for the micro-bench; enough to average out timer noise.
GUARD_ITERATIONS = 200_000

#: Upper bound on one NullSink guard check.  The real cost is tens of
#: nanoseconds; 5 µs keeps the assertion meaningful (a mistakenly
#: constructed event or dict allocation per check would blow it) without
#: ever tripping on slow CI hardware.
MAX_SECONDS_PER_CHECK = 5e-6


def test_null_sink_guard_is_nanoscale(benchmark):
    """The emit-site pattern with telemetry off: resolve + truthiness."""

    def guard_loop():
        checked = 0
        for _ in range(GUARD_ITERATIONS):
            sink = resolve(None)
            if sink:  # pragma: no cover - never true under the NullSink
                checked += 1
        return checked

    assert benchmark.pedantic(guard_loop, rounds=3, iterations=1) == 0
    per_check = benchmark.stats.stats.min / GUARD_ITERATIONS
    benchmark.extra_info.update({
        "iterations": GUARD_ITERATIONS,
        "seconds_per_check": per_check,
    })
    assert per_check < MAX_SECONDS_PER_CHECK, (
        f"NullSink guard costs {per_check * 1e9:.0f}ns per instrumented "
        f"site; the zero-overhead contract allows "
        f"{MAX_SECONDS_PER_CHECK * 1e9:.0f}ns")


def test_instrumented_grid_pays_nothing_under_the_null_sink(
        benchmark, tmp_path_factory):
    """Same warm-cache grid, telemetry off vs on: off must not lose."""
    tasks = tasks_for_app("powerpoint")
    settings = [setting_by_key(key) for key in SETTING_KEYS]
    cache_dir = tmp_path_factory.mktemp("telemetry-cache")

    def fresh_runner() -> BenchmarkRunner:
        return BenchmarkRunner(BenchmarkConfig(trials=TRIALS, tasks=tasks,
                                               cache_dir=cache_dir))

    # Untimed warm-up: both timed runs load models from the same warm cache.
    fresh_runner().all_offline_artifacts()

    def run_with_null_sink():
        return fresh_runner().run_settings(settings)

    off_outcomes = benchmark.pedantic(run_with_null_sink, rounds=1,
                                      iterations=1)
    off_seconds = benchmark.stats.stats.mean

    started = time.perf_counter()
    with use_sink(AggregatingSink()) as sink:
        on_outcomes = fresh_runner().run_settings(settings)
    on_seconds = time.perf_counter() - started

    trial_count = len(tasks) * len(settings) * TRIALS
    assert sink.count("trial_finished") == trial_count
    benchmark.extra_info.update({
        "trials_in_grid": trial_count,
        "null_sink_seconds": round(off_seconds, 4),
        "aggregating_sink_seconds": round(on_seconds, 4),
        "overhead_ratio": round(off_seconds / on_seconds, 3),
    })
    # Identical outputs (telemetry must never perturb results)...
    for key in off_outcomes:
        assert [r.as_dict() for r in off_outcomes[key].results] \
            == [r.as_dict() for r in on_outcomes[key].results]
        assert aggregate(off_outcomes[key].results) \
            == aggregate(on_outcomes[key].results)
    # ...and the off path does strictly less work than the on path, so
    # aside from scheduler noise it cannot be meaningfully slower.  The
    # 2x + 250ms envelope only catches gross inversions (e.g. an emit
    # that stopped being guarded), not jitter.
    assert off_seconds <= on_seconds * 2.0 + 0.25, (
        f"telemetry-off run took {off_seconds:.3f}s vs {on_seconds:.3f}s "
        "with a live sink; the NullSink path has stopped being free")
