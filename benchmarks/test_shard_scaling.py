"""Shard-pipeline micro-benchmark: plan → run-each → merge vs direct serial.

Companion to ``test_engine_scaling.py`` for the distributed path (ROADMAP:
"shard the suite across machines"): the same fixed grid is executed once by
the SerialExecutor directly and once through the full manifest pipeline —
:func:`plan_shards`, one :class:`ManifestExecutor` per manifest over a shared
warm artifact cache, then :func:`merge_shard_results`.

As with the engine benchmark, only correctness is asserted (the merged
outcome is bit-identical to serial); the recorded ``shard_overhead_seconds``
is the price of manifest serialization + per-shard runner spin-up on *one*
machine, i.e. the fixed cost a real deployment pays to buy N-machine
scale-out.
"""

from __future__ import annotations

import time

from repro.bench.metrics import aggregate
from repro.bench.runner import BenchmarkConfig, BenchmarkRunner, setting_by_key
from repro.bench.shard import ManifestExecutor, merge_shard_results
from repro.bench.tasks import tasks_for_app

SHARDS = 3
TRIALS = 2
SETTING_KEYS = ("gui-gpt5-medium", "dmi-gpt5-medium")


def test_shard_pipeline_overhead_vs_serial(benchmark, tmp_path_factory):
    tasks = tasks_for_app("powerpoint")
    settings = [setting_by_key(key) for key in SETTING_KEYS]
    cache_dir = tmp_path_factory.mktemp("shard-cache")

    serial = BenchmarkRunner(BenchmarkConfig(trials=TRIALS, tasks=tasks,
                                             cache_dir=cache_dir))
    # Untimed warm-up so both paths start from a warm cache.
    serial.offline_artifacts("powerpoint")

    started = time.perf_counter()
    out_serial = serial.run_settings(settings)
    serial_seconds = time.perf_counter() - started

    plan = serial.shard_plan(settings, SHARDS)

    def run_pipeline():
        executor = ManifestExecutor(cache_dir=cache_dir)
        return merge_shard_results([executor.run(manifest)
                                    for manifest in plan.manifests])

    merged = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
    sharded_seconds = benchmark.stats.stats.mean

    benchmark.extra_info.update({
        "trials_in_grid": len(tasks) * len(settings) * TRIALS,
        "shards": SHARDS,
        "serial_seconds": round(serial_seconds, 3),
        "sharded_seconds": round(sharded_seconds, 3),
        "shard_overhead_seconds": round(sharded_seconds - serial_seconds, 3),
    })

    for key in out_serial:
        assert ([r.as_dict() for r in out_serial[key].results]
                == [r.as_dict() for r in merged[key].results])
        assert (aggregate(out_serial[key].results).as_dict()
                == aggregate(merged[key].results).as_dict())
