"""§5.3 — one-shot task completion.

The paper reports that with DMI over 61% of successful trials complete in 4
total steps: the 3-call framework overhead plus a single core LLM call in
which the AppAgent plans the whole user intent globally.
"""

from __future__ import annotations

from repro.bench.metrics import aggregate, one_shot_rate
from repro.bench.reporting import render_one_shot


def test_sec53_one_shot_completion(benchmark, table3_outcomes):
    report = benchmark.pedantic(render_one_shot, args=(table3_outcomes, "dmi-gpt5-medium"),
                                rounds=1, iterations=1)
    print("\n" + report)

    dmi = table3_outcomes["dmi-gpt5-medium"]
    gui = table3_outcomes["gui-gpt5-medium"]

    dmi_rate = one_shot_rate(dmi.results)
    gui_rate = one_shot_rate(gui.results)

    # Paper: > 61% of successful DMI trials are one-shot.
    assert dmi_rate > 0.61
    # The baseline cannot plan over not-yet-visible controls, so one-shot
    # completion is rare there.
    assert gui_rate < 0.35
    # 4 total steps == 1 core step + 3 framework calls.
    summary = aggregate(dmi.results)
    for result in dmi.results:
        if result.success and result.one_shot:
            assert result.steps == 4
    assert summary.avg_steps < 6.0
