"""Figure 5a — success rate per interface x model (bar chart, text form)."""

from __future__ import annotations

from repro.bench.metrics import aggregate
from repro.bench.reporting import render_figure5a


def test_figure5a_success_rate(benchmark, table3_outcomes):
    figure = benchmark.pedantic(render_figure5a, args=(table3_outcomes,),
                                rounds=1, iterations=1)
    print("\n" + figure)

    summaries = {key: aggregate(outcome.results) for key, outcome in table3_outcomes.items()}
    # Bars ordered the way the paper groups them: within every model group
    # the GUI+DMI bar is the tallest.
    assert summaries["dmi-gpt5-medium"].success_rate == max(
        summaries[k].success_rate for k in
        ("gui-gpt5-medium", "forest-gpt5-medium", "dmi-gpt5-medium"))
    assert summaries["dmi-gpt5-mini"].success_rate == max(
        summaries[k].success_rate for k in
        ("gui-gpt5-mini", "forest-gpt5-mini", "dmi-gpt5-mini"))
    assert summaries["dmi-gpt5-minimal"].success_rate > summaries["gui-gpt5-minimal"].success_rate
    # Reasoning still matters with DMI: GPT-5 medium > GPT-5 minimal.
    assert summaries["dmi-gpt5-medium"].success_rate > summaries["dmi-gpt5-minimal"].success_rate
