"""Shared fixtures for the benchmark harness.

Each bench regenerates one table or figure from the paper's evaluation
section (see DESIGN.md's per-experiment index and EXPERIMENTS.md).  The
expensive inputs — the offline navigation models and the Table 3 end-to-end
runs — are produced once per session and shared by every bench.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import BenchmarkConfig, BenchmarkRunner, DEFAULT_SEED

#: The paper's protocol: every task runs three times and results are averaged.
TRIALS = 3
#: One canonical seed for library, CLI and harness (see runner.DEFAULT_SEED).
SEED = DEFAULT_SEED


@pytest.fixture(scope="session")
def runner() -> BenchmarkRunner:
    return BenchmarkRunner(BenchmarkConfig(trials=TRIALS, seed=SEED))


@pytest.fixture(scope="session")
def offline_artifacts(runner):
    """Offline navigation models for Word, Excel and PowerPoint (§5.2)."""
    return runner.all_offline_artifacts()


@pytest.fixture(scope="session")
def table3_outcomes(runner, offline_artifacts):
    """The eight Table 3 configurations, 27 tasks x 3 trials each."""
    return runner.run_table3()
