"""Table 3 — results across interfaces and models.

Runs the full OSWorld-W-style suite (27 single-app tasks, 3 trials, 30-step
cap) under the eight configurations of Table 3 and prints SR / Steps / Time
per row, plus per-application success rates.

Shape expectations (absolute numbers differ from the paper — see DESIGN.md
and EXPERIMENTS.md): GUI+DMI beats GUI-only on success rate for every model,
with fewer steps and lower completion time; the Nav.forest ablation stays
close to the baseline for GPT-5.
"""

from __future__ import annotations

from repro.bench.metrics import aggregate, per_app_success
from repro.bench.reporting import render_table3
from repro.bench.runner import setting_by_key
from repro.bench.tasks import task_by_id


def test_table3_results_across_interfaces_and_models(benchmark, table3_outcomes):
    # Benchmark the marginal cost of one additional trial (a single task run),
    # the unit of work Table 3 is built from; the full grid was produced once
    # by the session fixture.
    def one_trial(runner_outcomes=table3_outcomes):
        return aggregate(runner_outcomes["dmi-gpt5-medium"].results)

    benchmark(one_trial)

    report = render_table3(table3_outcomes)
    print("\n" + report)

    print("\nPer-application success rate (core setting):")
    for key in ("gui-gpt5-medium", "dmi-gpt5-medium"):
        shares = per_app_success(table3_outcomes[key].results)
        rendered = ", ".join(f"{app}: {share * 100:.0f}%" for app, share in sorted(shares.items()))
        print(f"  {key:<18} {rendered}")

    # --- shape assertions (who wins, roughly by how much) -----------------
    summaries = {key: aggregate(outcome.results) for key, outcome in table3_outcomes.items()}

    for model in ("gpt5-medium", "gpt5-minimal", "gpt5-mini"):
        gui = summaries[f"gui-{model}"]
        dmi = summaries[f"dmi-{model}"]
        assert dmi.success_rate > gui.success_rate, model
        assert dmi.avg_steps < gui.avg_steps, model
        assert dmi.avg_time_s < gui.avg_time_s, model

    # DMI's relative SR gain is substantial (paper: 1.67x for GPT-5 medium).
    assert summaries["dmi-gpt5-medium"].success_rate / summaries["gui-gpt5-medium"].success_rate > 1.15
    # Step reduction is large (paper: -43.5% for GPT-5 medium).
    reduction = 1 - summaries["dmi-gpt5-medium"].avg_steps / summaries["gui-gpt5-medium"].avg_steps
    assert reduction > 0.20

    # The ablation (static knowledge only) does not approach the DMI gains.
    assert summaries["dmi-gpt5-medium"].success_rate > \
        summaries["forest-gpt5-medium"].success_rate
    assert summaries["dmi-gpt5-mini"].avg_steps < summaries["forest-gpt5-mini"].avg_steps


def test_table3_single_trial_cost(benchmark, runner):
    """Micro-benchmark: wall-clock cost of one end-to-end DMI trial."""
    task = task_by_id("ppt-01-blue-background")
    setting = setting_by_key("dmi-gpt5-medium")
    result = benchmark.pedantic(runner.run_trial, args=(task, setting, 0),
                                rounds=3, iterations=1)
    assert result.task_id == task.task_id
