"""Object-store broker micro-benchmark: CAS queue + heartbeats vs serial.

Companion to ``test_transport_scaling.py`` for the object-store backend
(ROADMAP: "an object-store ShardBroker backend"): the same fixed grid is
executed once by the SerialExecutor directly and once through the full
object-store pipeline — :meth:`~repro.bench.transport.ObjectStoreBroker.submit`
over a :class:`~repro.bench.store.FileSystemObjectStore`, one
:class:`~repro.bench.transport.ShardWorker` pull loop (with its default
heartbeat thread renewing leases in the background) over a warm artifact
cache, then ``collect`` + :func:`~repro.bench.shard.merge_shard_results`.

Only correctness is asserted (the collected merge is bit-identical to
serial); the recorded ``store_overhead_seconds`` is the price of CAS
bookkeeping — plan/manifest/lease objects, compare-and-swap leases and
renewals, results puts and re-reads — i.e. what the cloud-shaped transport
costs over the directory broker's rename-based one on one machine.
"""

from __future__ import annotations

import time

from repro.bench.metrics import aggregate
from repro.bench.runner import BenchmarkConfig, BenchmarkRunner, setting_by_key
from repro.bench.shard import ManifestExecutor, merge_shard_results
from repro.bench.store import FileSystemObjectStore
from repro.bench.tasks import tasks_for_app
from repro.bench.transport import ObjectStoreBroker, ShardWorker

SHARDS = 3
TRIALS = 2
SETTING_KEYS = ("gui-gpt5-medium", "dmi-gpt5-medium")


def test_object_store_pipeline_overhead_vs_serial(benchmark, tmp_path_factory):
    tasks = tasks_for_app("powerpoint")
    settings = [setting_by_key(key) for key in SETTING_KEYS]
    cache_dir = tmp_path_factory.mktemp("store-cache")

    serial = BenchmarkRunner(BenchmarkConfig(trials=TRIALS, tasks=tasks,
                                             cache_dir=cache_dir))
    # Untimed warm-up so both paths start from a warm cache.
    serial.offline_artifacts("powerpoint")

    started = time.perf_counter()
    out_serial = serial.run_settings(settings)
    serial_seconds = time.perf_counter() - started

    plan = serial.shard_plan(settings, SHARDS)

    def run_pipeline():
        store = FileSystemObjectStore(tmp_path_factory.mktemp("objstore"))
        broker = ObjectStoreBroker(store)
        broker.submit(plan)
        worker = ShardWorker(broker, ManifestExecutor(cache_dir=cache_dir),
                             worker_id="bench-worker", poll=0)
        worker.run()
        return merge_shard_results(broker.collect())

    merged = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
    store_seconds = benchmark.stats.stats.mean

    benchmark.extra_info.update({
        "trials_in_grid": len(tasks) * len(settings) * TRIALS,
        "shards": SHARDS,
        "serial_seconds": round(serial_seconds, 3),
        "store_seconds": round(store_seconds, 3),
        "store_overhead_seconds": round(store_seconds - serial_seconds, 3),
    })

    for key in out_serial:
        assert ([r.as_dict() for r in out_serial[key].results]
                == [r.as_dict() for r in merged[key].results])
        assert (aggregate(out_serial[key].results).as_dict()
                == aggregate(merged[key].results).as_dict())
