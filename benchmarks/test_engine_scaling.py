"""Engine scaling micro-benchmark: serial vs parallel execution wall-clock.

First datapoint of the performance trajectory (ROADMAP: "as fast as the
hardware allows"): the same fixed task×setting×trial grid is executed by the
SerialExecutor and by the process-pool ParallelExecutor with ``jobs=4`` over
a warm artifact cache, and both wall-clock times are recorded in the
pytest-benchmark report (``extra_info``).

The bench asserts only correctness (parallel output identical to serial) and
records the timings plus ``cpu_count``; speedup assertions would be
hardware-dependent noise — on a single-core container the parallel run is
*expected* to be slower (pool spin-up and IPC with no cores to spread over),
so interpret ``speedup`` relative to the recorded ``cpu_count``.
"""

from __future__ import annotations

import os
import time

from repro.bench.metrics import aggregate
from repro.bench.runner import BenchmarkConfig, BenchmarkRunner, setting_by_key
from repro.bench.tasks import tasks_for_app

JOBS = 4
TRIALS = 3
SETTING_KEYS = ("gui-gpt5-medium", "dmi-gpt5-medium")


def _grid():
    tasks = tasks_for_app("powerpoint") + tasks_for_app("word")
    settings = [setting_by_key(key) for key in SETTING_KEYS]
    return tasks, settings


def test_engine_scaling_serial_vs_parallel(benchmark, tmp_path_factory):
    tasks, settings = _grid()
    cache_dir = tmp_path_factory.mktemp("engine-cache")

    serial = BenchmarkRunner(BenchmarkConfig(trials=TRIALS, tasks=tasks,
                                             cache_dir=cache_dir))
    # Untimed warm-up: both timed runs start from the same warm cache so the
    # comparison measures executor scaling, not cache population.
    for app_name in sorted({task.app for task in tasks}):
        serial.offline_artifacts(app_name)

    started = time.perf_counter()
    out_serial = serial.run_settings(settings)
    serial_seconds = time.perf_counter() - started

    parallel = BenchmarkRunner(BenchmarkConfig(trials=TRIALS, tasks=tasks,
                                               jobs=JOBS, cache_dir=cache_dir))

    def run_parallel():
        return parallel.run_settings(settings)

    out_parallel = benchmark.pedantic(run_parallel, rounds=1, iterations=1)
    parallel_seconds = benchmark.stats.stats.mean

    trial_count = len(tasks) * len(settings) * TRIALS
    benchmark.extra_info.update({
        "trials_in_grid": trial_count,
        "jobs": JOBS,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(serial_seconds / parallel_seconds, 2),
    })

    for key in out_serial:
        assert ([r.as_dict() for r in out_serial[key].results]
                == [r.as_dict() for r in out_parallel[key].results])
        assert aggregate(out_serial[key].results) == aggregate(out_parallel[key].results)
