"""§5.2 — offline phase: UI navigation modeling cost.

Regenerates the offline-modeling statistics the paper reports: raw UNG size
per application, merge nodes and cycles, the forest produced by cost-based
externalization, the size of the depth-limited core topology, and the
automated modeling time.  The ripping itself is the benchmarked operation.
"""

from __future__ import annotations

from repro.apps import APP_FACTORIES, WordApp
from repro.bench.reporting import render_offline_modeling
from repro.dmi.interface import build_offline_artifacts


def test_sec52_offline_modeling_statistics(benchmark, offline_artifacts):
    # Benchmark one full offline build (rip -> decycle -> externalize ->
    # forest -> core) on the Word-like application.
    artifacts = benchmark.pedantic(build_offline_artifacts, args=(WordApp(),),
                                   rounds=1, iterations=1)
    assert artifacts.ung.node_count() > 400

    report = render_offline_modeling(offline_artifacts)
    print("\n" + report)

    for app_name, art in offline_artifacts.items():
        summary = art.summary()
        # Feature-rich applications: hundreds of controls each (the real
        # Office suite exceeds 4K; the simulated apps are smaller but keep
        # the same structural properties).
        assert summary["ung_nodes"] > 400, app_name
        assert summary["merge_nodes"] > 5, app_name
        # The forest stays linear in the UNG size (no clone blow-up).
        assert summary["forest_nodes"] < 3 * summary["ung_nodes"], app_name
        # The core topology is a strict subset of the forest.
        assert summary["core_nodes"] <= summary["forest_nodes"], app_name
        # Automated modeling is fast on the simulator (paper: < 3 hours per
        # real application).
        assert summary["modeling_seconds"] < 120, app_name

    # Word's Find-and-Replace More/Less pair produces a cycle in the raw UNG.
    assert offline_artifacts["word"].rip_report.cycles


def test_sec52_modeling_is_reusable_across_instances(benchmark, offline_artifacts, runner):
    """The model is version-specific but reusable: running a task on a fresh
    application instance with the cached artifacts requires no re-modeling."""
    from repro.bench.runner import setting_by_key
    from repro.bench.tasks import task_by_id

    task = task_by_id("word-02-landscape")
    setting = setting_by_key("dmi-gpt5-medium")
    result = benchmark.pedantic(runner.run_trial, args=(task, setting, 0),
                                rounds=3, iterations=1)
    assert result.steps <= 30
