"""§5.4 — token overhead of the DMI context.

Reproduces the paper's accounting: most of DMI's extra context comes from
the navigation forest; each control costs a bounded number of tokens; the
core topologies stay well within modern context windows; and because DMI
cuts the number of interaction rounds, total token usage per task ends up
lower than the GUI baseline in the core setting.
"""

from __future__ import annotations

from repro.apps import APP_FACTORIES
from repro.bench.metrics import aggregate
from repro.bench.reporting import render_token_overhead
from repro.dmi.interface import DMI


def test_sec54_token_overhead(benchmark, offline_artifacts, table3_outcomes):
    def breakdowns():
        per_app = {}
        per_control = {}
        for app_name, artifacts in offline_artifacts.items():
            dmi = DMI(APP_FACTORIES[app_name](), artifacts)
            breakdown = dmi.context_token_breakdown()
            per_app[app_name] = breakdown
            per_control[app_name] = (breakdown["navigation_topology"]
                                     / max(1, artifacts.core.visible_node_count()))
        return per_app, per_control

    per_app, per_control = benchmark.pedantic(breakdowns, rounds=1, iterations=1)

    per_task = {}
    for key in ("gui-gpt5-medium", "dmi-gpt5-medium"):
        summary = aggregate(table3_outcomes[key].results)
        per_task[key] = {"prompt": summary.avg_prompt_tokens,
                         "total": summary.avg_total_tokens}

    print("\n" + render_token_overhead(per_app, per_control, per_task))

    for app_name, breakdown in per_app.items():
        # The navigation forest dominates DMI's context overhead (paper: >80%).
        assert breakdown["navigation_topology"] / breakdown["total"] > 0.6, app_name
        # Each control costs a bounded number of tokens (paper: ~15).
        assert per_control[app_name] < 40, app_name
        # Core topologies fit comfortably in modern context windows.
        assert breakdown["total"] < 60_000, app_name

    # Fewer rounds => total tokens per successful task are lower with DMI.
    assert per_task["dmi-gpt5-medium"]["total"] < per_task["gui-gpt5-medium"]["total"]
