"""Figure 4 / §3.2 — navigation topology: graph vs tree vs forest.

The design figure contrasts three representations of the same navigation
relationships: the raw graph (imperative navigation needs an explicit path),
the fully cloned tree (unique single-id paths but exponential node blow-up),
and the cost-based forest (unique paths, bounded size, short declarations).

This bench quantifies the trade-off on (a) the real application graphs and
(b) a synthetic family of highly shared DAGs where naive cloning explodes,
sweeping the externalization threshold.
"""

from __future__ import annotations

from repro.ripping.ung import NavigationGraph, UNGNode, VIRTUAL_ROOT_ID
from repro.topology.decycle import decycle
from repro.topology.externalize import (
    ExternalizationConfig,
    externalized_only_size,
    full_clone_size,
    plan_externalization,
)
from repro.topology.forest import build_forest
from repro.uia.control_types import ControlType


def layered_shared_graph(layers: int = 8, width: int = 3) -> NavigationGraph:
    """A DAG where every node in layer i points at every node in layer i+1.

    Full cloning of such a graph is exponential in the number of layers,
    which is the blow-up the paper's cost-based externalization avoids.
    """
    graph = NavigationGraph(app_name=f"shared-{layers}x{width}")
    previous = [VIRTUAL_ROOT_ID]
    for layer in range(layers):
        current = []
        for index in range(width):
            node_id = f"L{layer}N{index}"
            graph.add_node(UNGNode(node_id=node_id, name=node_id,
                                   control_type=ControlType.BUTTON))
            for parent in previous:
                graph.add_edge(parent, node_id)
            current.append(node_id)
        previous = current
    return graph


def sweep(graph: NavigationGraph, thresholds) -> dict:
    dag = decycle(graph)
    rows = {}
    for threshold in thresholds:
        plan = plan_externalization(dag, ExternalizationConfig(clone_cost_threshold=threshold,
                                                               max_total_nodes=10**7))
        forest = build_forest(graph, dag=dag, plan=plan)
        leaves = forest.leaf_nodes()
        avg_declared_ids = 1 + (1 if any(l.subtree_id is not None for l in leaves) else 0)
        rows[threshold] = {
            "externalized": len(plan.externalized),
            "forest_nodes": forest.node_count(),
            "subtrees": len(forest.shared_subtrees),
            "avg_ids_per_declaration": avg_declared_ids,
        }
    rows["graph_nodes"] = graph.node_count()
    rows["full_clone_tree_nodes"] = full_clone_size(dag)
    rows["all_externalized_nodes"] = externalized_only_size(dag)
    return rows


def test_figure4_synthetic_blowup_vs_forest(benchmark):
    graph = layered_shared_graph(layers=10, width=3)
    rows = benchmark.pedantic(sweep, args=(graph, (0, 10, 50, 10**9)), rounds=1, iterations=1)

    print("\nFigure 4 ablation (synthetic highly shared DAG):")
    print(f"  raw graph nodes:              {rows['graph_nodes']}")
    print(f"  naive graph->tree clone size: {rows['full_clone_tree_nodes']}")
    print(f"  externalize-everything size:  {rows['all_externalized_nodes']}")
    for threshold in (0, 10, 50):
        row = rows[threshold]
        print(f"  threshold={threshold:<4} forest={row['forest_nodes']:<8} "
              f"subtrees={row['subtrees']}")

    # Naive cloning explodes (exponential in layers)...
    assert rows["full_clone_tree_nodes"] > 1000 * rows["graph_nodes"]
    # ...while the cost-based forest stays linear in the graph size.
    assert rows[0]["forest_nodes"] < 5 * rows["graph_nodes"]
    assert rows[10]["forest_nodes"] < 10 * rows["graph_nodes"]


def test_figure4_threshold_tradeoff_on_real_apps(benchmark, offline_artifacts):
    def run():
        table = {}
        for app_name, artifacts in offline_artifacts.items():
            table[app_name] = sweep(artifacts.ung, (0, 40, 10**6))
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nFigure 4 ablation (application graphs): externalization threshold sweep")
    for app_name, rows in table.items():
        print(f"  {app_name}: graph={rows['graph_nodes']}, "
              f"full clone={rows['full_clone_tree_nodes']}, "
              f"forest(t=0)={rows[0]['forest_nodes']}, "
              f"forest(t=40)={rows[40]['forest_nodes']}, "
              f"forest(t=inf)={rows[10**6]['forest_nodes']}")
        # Externalizing more aggressively (t=0) never increases forest size.
        assert rows[0]["forest_nodes"] <= rows[10**6]["forest_nodes"]
        # The shipped threshold keeps the forest within ~2x of the raw graph.
        assert rows[40]["forest_nodes"] <= 2.5 * rows["graph_nodes"]
        # And every configuration stays far below the naive clone expansion.
        assert rows[40]["forest_nodes"] <= rows["full_clone_tree_nodes"]
