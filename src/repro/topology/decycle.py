"""Graph decycling: UNG -> single-source DAG (paper §3.2, step 1).

Cycles in the UNG (e.g. Word's Find-and-Replace ``More >>`` / ``<< Less``
buttons revealing each other) would make root-to-control paths infinite.  The
transformation removes *back-edges* discovered by a depth-first traversal
from the single source (the virtual root), which preserves reachability of
every node while producing an acyclic graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.ripping.ung import NavigationGraph


@dataclass
class DecycleResult:
    """The DAG produced from a UNG plus bookkeeping about what was removed."""

    root_id: str
    #: Adjacency of the resulting DAG (successor lists preserve UNG order).
    successors: Dict[str, List[str]] = field(default_factory=dict)
    #: Edges removed because they closed a cycle.
    removed_back_edges: List[Tuple[str, str]] = field(default_factory=list)
    #: Nodes unreachable from the root (excluded from the DAG).
    unreachable: Set[str] = field(default_factory=set)

    # -- queries ---------------------------------------------------------
    def nodes(self) -> Set[str]:
        found = set(self.successors.keys())
        for targets in self.successors.values():
            found.update(targets)
        return found

    def in_degree(self) -> Dict[str, int]:
        degree: Dict[str, int] = {nid: 0 for nid in self.nodes()}
        for targets in self.successors.values():
            for target in targets:
                degree[target] = degree.get(target, 0) + 1
        return degree

    def edge_count(self) -> int:
        return sum(len(t) for t in self.successors.values())

    def is_acyclic(self) -> bool:
        state: Dict[str, int] = {}

        def visit(node: str) -> bool:
            state[node] = 1
            for child in self.successors.get(node, []):
                mark = state.get(child, 0)
                if mark == 1:
                    return False
                if mark == 0 and not visit(child):
                    return False
            state[node] = 2
            return True

        return visit(self.root_id)

    def topological_order(self) -> List[str]:
        """Topological order of the DAG (root first)."""
        order: List[str] = []
        state: Dict[str, int] = {}

        def visit(node: str) -> None:
            state[node] = 1
            for child in self.successors.get(node, []):
                if state.get(child, 0) == 0:
                    visit(child)
            state[node] = 2
            order.append(node)

        visit(self.root_id)
        order.reverse()
        return order


def decycle(ung: NavigationGraph) -> DecycleResult:
    """Remove back-edges from ``ung`` so every node keeps a finite root path.

    The traversal is iterative DFS from the virtual root; an edge u -> v is a
    back-edge iff v is currently on the DFS stack (grey).  Cross- and
    forward-edges are preserved — they are what merge nodes are made of and
    the externalization step deals with them.
    """
    result = DecycleResult(root_id=ung.root_id)
    reachable = ung.reachable_from_root()
    result.unreachable = set(ung.nodes) - reachable

    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[str, int] = {nid: WHITE for nid in reachable}

    def visit(node: str) -> None:
        color[node] = GREY
        kept: List[str] = []
        for child in ung.successors(node):
            if child not in reachable:
                continue
            if color.get(child) == GREY or child == node:
                result.removed_back_edges.append((node, child))
                continue
            kept.append(child)
            if color.get(child) == WHITE:
                visit(child)
        result.successors[node] = kept
        color[node] = BLACK

    # Recursion depth equals the navigation depth of the application
    # (typically < 15), so plain recursion is safe.
    visit(ung.root_id)
    for node in reachable:
        result.successors.setdefault(node, [nid for nid in ung.successors(node)
                                             if nid in reachable])
    return result
