"""Query-on-demand over the navigation forest (paper §3.3, §3.4).

When the pruned core topology lacks the structure a task needs, the LLM
issues a ``further_query`` command with two modes:

* **targeted branch queries** — expand the substructure below specific node
  ids;
* **global queries** — retrieve the complete forest (``-1``).

The :class:`QueryEngine` answers both, and keeps simple accounting of how
many tokens each answer adds (used by the token-overhead bench).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union

from repro.llm.tokens import estimate_tokens
from repro.topology.core import CoreTopology
from repro.topology.forest import NavigationForest
from repro.topology.serialize import SerializationConfig, serialize_forest, serialize_node

#: Sentinel node id meaning "fetch the entire forest".
FULL_FOREST = -1


@dataclass
class QueryResult:
    """One answered further_query."""

    requested: List[int]
    text: str
    tokens: int
    is_global: bool = False
    unknown_ids: List[int] = field(default_factory=list)


class QueryEngine:
    """Answers ``further_query`` commands against a forest / core view."""

    def __init__(self, forest: NavigationForest, core: CoreTopology,
                 serialization: SerializationConfig = SerializationConfig()) -> None:
        self.forest = forest
        self.core = core
        self.serialization = serialization
        self.history: List[QueryResult] = []

    # ------------------------------------------------------------------
    def initial_prompt_text(self) -> str:
        """The core topology text included in every prompt by default."""
        return self.core.serialize(self.serialization)

    def further_query(self, node_ids: Union[int, Sequence[int]]) -> QueryResult:
        """Answer a further_query command.

        ``node_ids`` may be a single id, a sequence of ids, or ``-1`` (or a
        sequence containing ``-1``) for the whole forest.
        """
        if isinstance(node_ids, int):
            node_ids = [node_ids]
        requested = [int(n) for n in node_ids]
        if FULL_FOREST in requested:
            text = serialize_forest(self.forest, self.serialization)
            result = QueryResult(requested=requested, text=text,
                                 tokens=estimate_tokens(text), is_global=True)
            self.history.append(result)
            return result

        sections: List[str] = []
        unknown: List[int] = []
        for node_id in requested:
            if not self.forest.has_node(node_id):
                unknown.append(node_id)
                continue
            node = self.forest.node(node_id)
            sections.append(serialize_node(node, self.serialization))
        text = "\n".join(sections)
        result = QueryResult(requested=requested, text=text,
                             tokens=estimate_tokens(text), unknown_ids=unknown)
        self.history.append(result)
        return result

    # ------------------------------------------------------------------
    def total_query_tokens(self) -> int:
        return sum(r.tokens for r in self.history)

    def query_count(self) -> int:
        return len(self.history)

    def coverage_report(self) -> Dict[str, int]:
        """How much of the forest the core view covers versus on-demand."""
        return {
            "core_nodes": self.core.visible_node_count(),
            "pruned_nodes": self.core.pruned_node_count(),
            "queries_answered": self.query_count(),
            "query_tokens": self.total_query_tokens(),
            "core_tokens": self.core.token_estimate(),
        }
