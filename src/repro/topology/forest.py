"""The path-unambiguous navigation forest (paper §3.2).

A :class:`NavigationForest` contains

* a **main tree** rooted at the virtual root,
* a set of **shared subtrees**, each rooted at an externalized merge node,
* an **entry map** connecting reference nodes in the main tree (or in other
  subtrees) to the shared subtree they stand for.

Every node carries a small consecutive integer id — the id the LLM uses in
``visit`` commands — plus the underlying composite control identifier the
executor resolves against the live UI.  For any functional control the
forest yields a *unique* root-to-control path; controls inside shared
subtrees additionally need the reference node(s) that select which entry
path is meant (``entry_ref_id`` in the visit command).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.ripping.ung import NavigationGraph, VIRTUAL_ROOT_ID
from repro.topology.decycle import DecycleResult, decycle
from repro.topology.externalize import (
    ExternalizationConfig,
    ExternalizationResult,
    plan_externalization,
)
from repro.uia.control_types import ControlType


@dataclass
class ForestNode:
    """A node of the navigation forest."""

    node_id: int
    control_id: str
    name: str
    control_type: ControlType
    description: str = ""
    is_reference: bool = False
    ref_subtree_id: Optional[int] = None
    subtree_id: Optional[int] = None          # None -> main tree
    parent: Optional["ForestNode"] = None
    children: List["ForestNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """Functional (non-navigational) nodes are the leaves of the forest."""
        return not self.children and not self.is_reference

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def add_child(self, child: "ForestNode") -> "ForestNode":
        child.parent = self
        self.children.append(child)
        return child

    def iter_subtree(self) -> Iterator["ForestNode"]:
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def ancestors(self) -> List["ForestNode"]:
        chain = []
        node = self.parent
        while node is not None:
            chain.append(node)
            node = node.parent
        return chain

    def depth(self) -> int:
        return len(self.ancestors())

    def path_from_root(self) -> List["ForestNode"]:
        """Nodes from the tree/subtree root down to (and including) this node."""
        return list(reversed([self] + self.ancestors()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "ref" if self.is_reference else self.control_type.value
        return f"ForestNode(id={self.node_id}, name={self.name!r}, kind={kind})"


class ForestBuildError(RuntimeError):
    """Raised when the forest cannot be built (e.g. node ceiling exceeded)."""


class NavigationForest:
    """Main tree + shared subtrees + entry map, with integer node ids."""

    def __init__(self, app_name: str = "") -> None:
        self.app_name = app_name
        self.main_root: Optional[ForestNode] = None
        self.shared_subtrees: Dict[int, ForestNode] = {}
        self.nodes_by_id: Dict[int, ForestNode] = {}
        #: reference-node id -> shared subtree id
        self.entry_map: Dict[int, int] = {}
        #: externalized control id -> shared subtree id
        self.subtree_id_by_control: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> ForestNode:
        try:
            return self.nodes_by_id[node_id]
        except KeyError:
            raise KeyError(f"no forest node with id {node_id}") from None

    def has_node(self, node_id: int) -> bool:
        return node_id in self.nodes_by_id

    def node_count(self) -> int:
        return len(self.nodes_by_id)

    def iter_all_nodes(self) -> Iterator[ForestNode]:
        if self.main_root is not None:
            yield from self.main_root.iter_subtree()
        for root in self.shared_subtrees.values():
            yield from root.iter_subtree()

    def leaf_nodes(self) -> List[ForestNode]:
        return [n for n in self.iter_all_nodes() if n.is_leaf]

    def reference_nodes(self) -> List[ForestNode]:
        return [n for n in self.iter_all_nodes() if n.is_reference]

    def find_by_name(self, name: str, exact: bool = True,
                     leaves_only: bool = False) -> List[ForestNode]:
        wanted = name.lower()
        matches = []
        for node in self.iter_all_nodes():
            if leaves_only and not node.is_leaf:
                continue
            candidate = node.name.lower()
            if (exact and candidate == wanted) or (not exact and wanted in candidate):
                matches.append(node)
        return matches

    def references_to_subtree(self, subtree_id: int) -> List[ForestNode]:
        return [self.nodes_by_id[ref_id] for ref_id, sid in self.entry_map.items()
                if sid == subtree_id]

    # ------------------------------------------------------------------
    # path resolution
    # ------------------------------------------------------------------
    def node_path(self, node_id: int,
                  entry_ref_ids: Optional[List[int]] = None) -> List[ForestNode]:
        """The sequence of forest nodes to traverse, root to target.

        Reference nodes and the virtual root are excluded: what remains is
        exactly the sequence of real controls a navigator clicks.  For nodes
        inside shared subtrees the path is stitched through the selected
        reference node's position in its own tree.
        """
        node = self.node(node_id)
        entry_refs = list(entry_ref_ids or [])
        segments: List[List[ForestNode]] = []
        guard = 0
        while True:
            guard += 1
            if guard > 64:
                raise ForestBuildError("reference chain too deep while resolving path")
            segment = [n for n in node.path_from_root()
                       if n.control_id and n.control_id != VIRTUAL_ROOT_ID and not n.is_reference]
            segments.append(segment)
            if node.subtree_id is None:
                break
            node = self._select_reference(node.subtree_id, entry_refs)
        segments.reverse()
        return [n for segment in segments for n in segment]

    def control_path(self, node_id: int,
                     entry_ref_ids: Optional[List[int]] = None) -> List[str]:
        """The unique sequence of control identifiers to click, root to target.

        For nodes in the main tree the path follows tree parents.  For nodes
        in a shared subtree, ``entry_ref_ids`` selects the reference node(s)
        used to enter the subtree (one per level of nesting, outermost
        first); if omitted and exactly one reference exists, it is used
        implicitly.

        The virtual root is excluded; reference nodes contribute nothing
        themselves (the subtree root they point at is the control that gets
        clicked).
        """
        return [n.control_id for n in self.node_path(node_id, entry_ref_ids)]

    def _select_reference(self, subtree_id: int, entry_refs: List[int]) -> ForestNode:
        candidates = self.references_to_subtree(subtree_id)
        if not candidates:
            raise ForestBuildError(f"shared subtree {subtree_id} has no reference nodes")
        if entry_refs:
            wanted = entry_refs.pop()
            for candidate in candidates:
                if candidate.node_id == wanted:
                    return candidate
            # Fall through: an unknown ref id falls back to the first
            # reference (structured error feedback happens at the DMI layer).
        return candidates[0]

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        main_size = sum(1 for _ in self.main_root.iter_subtree()) if self.main_root else 0
        subtree_sizes = {sid: sum(1 for _ in root.iter_subtree())
                         for sid, root in self.shared_subtrees.items()}
        depths = [n.depth() for n in self.iter_all_nodes()]
        return {
            "app": self.app_name,
            "total_nodes": self.node_count(),
            "main_tree_nodes": main_size,
            "shared_subtrees": len(self.shared_subtrees),
            "shared_subtree_nodes": sum(subtree_sizes.values()),
            "reference_nodes": len(self.entry_map),
            "leaves": len(self.leaf_nodes()),
            "max_depth": max(depths) if depths else 0,
        }


def build_forest(ung: NavigationGraph,
                 externalization: Optional[ExternalizationConfig] = None,
                 dag: Optional[DecycleResult] = None,
                 plan: Optional[ExternalizationResult] = None) -> NavigationForest:
    """Build the navigation forest from a UNG.

    ``dag`` and ``plan`` may be supplied to reuse previously computed stages
    (the ablation benches sweep externalization thresholds over one DAG).
    """
    config = externalization or ExternalizationConfig()
    dag = dag if dag is not None else decycle(ung)
    plan = plan if plan is not None else plan_externalization(dag, config)

    forest = NavigationForest(app_name=ung.app_name)
    counter = _IdCounter()
    budget = _NodeBudget(config.max_total_nodes)

    # Shared subtrees are built first so reference nodes can point at them.
    subtree_ids: Dict[str, int] = {}
    for index, control_id in enumerate(sorted(plan.externalized), start=1):
        subtree_ids[control_id] = index
    forest.subtree_id_by_control = dict(subtree_ids)

    pending_refs: List[Tuple[ForestNode, str]] = []

    def expand(control_id: str, subtree_id: Optional[int]) -> ForestNode:
        budget.spend()
        meta = ung.nodes[control_id]
        node = ForestNode(
            node_id=counter.next(),
            control_id=control_id,
            name=meta.name,
            control_type=meta.control_type,
            description=meta.description,
            subtree_id=subtree_id,
        )
        forest.nodes_by_id[node.node_id] = node
        for child_id in dag.successors.get(control_id, []):
            if child_id in plan.externalized:
                budget.spend()
                ref = ForestNode(
                    node_id=counter.next(),
                    control_id="",
                    name=f"-> {ung.nodes[child_id].name}",
                    control_type=ung.nodes[child_id].control_type,
                    description=f"reference to shared subtree of {ung.nodes[child_id].name!r}",
                    is_reference=True,
                    subtree_id=subtree_id,
                )
                forest.nodes_by_id[ref.node_id] = ref
                node.add_child(ref)
                pending_refs.append((ref, child_id))
            else:
                node.add_child(expand(child_id, subtree_id))
        return node

    forest.main_root = expand(ung.root_id, None)
    for control_id, subtree_id in subtree_ids.items():
        forest.shared_subtrees[subtree_id] = expand(control_id, subtree_id)

    for ref, control_id in pending_refs:
        subtree_id = subtree_ids[control_id]
        ref.ref_subtree_id = subtree_id
        forest.entry_map[ref.node_id] = subtree_id

    return forest


class _IdCounter:
    """Consecutive integer ids (1-based; 0 is reserved for 'no id')."""

    def __init__(self) -> None:
        self._next = 0

    def next(self) -> int:
        self._next += 1
        return self._next


class _NodeBudget:
    def __init__(self, ceiling: int) -> None:
        self.ceiling = ceiling
        self.spent = 0

    def spend(self) -> None:
        self.spent += 1
        if self.spent > self.ceiling:
            raise ForestBuildError(
                f"forest expansion exceeded the configured ceiling of {self.ceiling} nodes"
            )
