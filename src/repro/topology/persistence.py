"""Persistence of the offline navigation model.

The paper notes the navigation model is version-specific but *reusable across
machines* for the same application build (§5.2).  This module serialises the
UI Navigation Graph to JSON so the expensive offline phase (GUI ripping plus
any manual blocklist/context curation) runs once per application build; any
other machine can load the JSON and rebuild the forest, core topology and
query engine deterministically.

Only the UNG is persisted: the forest and core view are cheap, deterministic
functions of it, so storing them would just risk divergence from the
transformation code.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.ripping.ripper import RipReport
from repro.ripping.ung import NavigationGraph, UNGNode
from repro.uia.control_types import ControlType

#: Format marker so later revisions can migrate old files.
FORMAT_VERSION = 1


def ung_to_dict(ung: NavigationGraph, report: Optional[RipReport] = None) -> Dict:
    """Serialisable representation of a UNG (plus optional rip report)."""
    payload = {
        "format_version": FORMAT_VERSION,
        "app_name": ung.app_name,
        "root_id": ung.root_id,
        "nodes": [
            {
                "node_id": node.node_id,
                "name": node.name,
                "control_type": node.control_type.value,
                "automation_id": node.automation_id,
                "description": node.description,
                "contexts": sorted(node.contexts),
                "window": node.window,
            }
            for node in ung.nodes.values()
        ],
        "edges": [[source, target] for source, target in ung.edges()],
    }
    if report is not None:
        payload["rip_report"] = report.as_dict()
    return payload


def ung_digest(ung: NavigationGraph) -> str:
    """Short content digest of a UNG's canonical serialized form.

    Two UNGs with the same digest serialize to the same bytes (modulo the
    rip report, which is intentionally excluded: its timings differ between
    otherwise identical rips).  Used by the incremental pipeline to decide
    whether downstream artefacts (forest, core) can be reused as-is.
    """
    encoded = json.dumps(ung_to_dict(ung), sort_keys=True,
                         ensure_ascii=False).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()[:16]


def ung_from_dict(payload: Dict) -> NavigationGraph:
    """Rebuild a UNG from its serialised representation."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported navigation-model format version {version!r}")
    ung = NavigationGraph(app_name=payload.get("app_name", ""))
    for entry in payload["nodes"]:
        ung.add_node(UNGNode(
            node_id=entry["node_id"],
            name=entry["name"],
            control_type=ControlType(entry["control_type"]),
            automation_id=entry.get("automation_id", ""),
            description=entry.get("description", ""),
            contexts=set(entry.get("contexts", [])),
            window=entry.get("window", ""),
        ))
    ung.root_id = payload.get("root_id", ung.root_id)
    for source, target in payload["edges"]:
        ung.add_edge(source, target)
    return ung


def save_ung(ung: NavigationGraph, path: Union[str, Path],
             report: Optional[RipReport] = None) -> Path:
    """Write the UNG (and optional rip report) to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(ung_to_dict(ung, report), handle, ensure_ascii=False, indent=1)
    return path


def load_ung(path: Union[str, Path]) -> NavigationGraph:
    """Load a UNG previously written by :func:`save_ung`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return ung_from_dict(json.load(handle))


def rip_report_from_dict(payload: Dict) -> RipReport:
    """Rebuild a :class:`RipReport` from :meth:`RipReport.as_dict` output."""
    known = {f for f in RipReport.__dataclass_fields__}
    return RipReport(**{key: value for key, value in payload.items() if key in known})


def load_model(path: Union[str, Path]) -> Tuple[NavigationGraph, Optional[RipReport]]:
    """Load a UNG plus its rip report (when one was saved alongside it).

    This is the machine-transfer entry point: the UNG file produced on the
    modeling machine carries the rip statistics, so a loading machine can
    report the original offline cost without re-ripping.
    """
    with Path(path).open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    ung = ung_from_dict(payload)
    report_payload = payload.get("rip_report")
    report = rip_report_from_dict(report_payload) if report_payload else None
    return ung, report
