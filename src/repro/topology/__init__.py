"""Path-unambiguous navigation topology (paper §3.2, §3.3).

This package turns the raw UI Navigation Graph produced by ripping into the
artefacts DMI consumes online:

1. :mod:`repro.topology.decycle` — remove back-edges to obtain a
   single-source DAG;
2. :mod:`repro.topology.externalize` — cost-based selective externalization
   of merge nodes, trading clone blow-up against indirection;
3. :mod:`repro.topology.forest` — the resulting forest (main tree + shared
   subtrees + entry map) with unique root-to-control paths;
4. :mod:`repro.topology.serialize` — the compact textual description
   ``name(type)(description)_id[children]`` sent to the LLM;
5. :mod:`repro.topology.core` — depth-limited core extraction with pruning of
   large enumerations;
6. :mod:`repro.topology.query` — the ``further_query`` on-demand retrieval
   mechanism.
"""

from repro.topology.decycle import DecycleResult, decycle
from repro.topology.externalize import ExternalizationConfig, ExternalizationResult, plan_externalization
from repro.topology.forest import ForestNode, NavigationForest, build_forest
from repro.topology.serialize import SerializationConfig, serialize_forest, serialize_node
from repro.topology.core import CoreTopologyConfig, CoreTopology, extract_core
from repro.topology.query import QueryEngine
from repro.topology.persistence import load_ung, save_ung, ung_from_dict, ung_to_dict

__all__ = [
    "load_ung",
    "save_ung",
    "ung_from_dict",
    "ung_to_dict",
    "CoreTopology",
    "CoreTopologyConfig",
    "DecycleResult",
    "ExternalizationConfig",
    "ExternalizationResult",
    "ForestNode",
    "NavigationForest",
    "QueryEngine",
    "SerializationConfig",
    "build_forest",
    "decycle",
    "extract_core",
    "plan_externalization",
    "serialize_forest",
    "serialize_node",
]
