"""Cost-based selective externalization (paper §3.2, step 2).

Merge nodes (DAG nodes with several incoming edges) prevent unique paths.
Two textbook fixes both fail at application scale:

* *clone everything* — duplicate the merge node and its descendants under
  every incoming edge: unique paths, but exponential node blow-up;
* *delete in-edges* — unique paths, but loses path-dependent semantics
  (Word's colour cell means different things under Font Color vs Underline
  Color).

The paper's middle ground processes nodes in reverse topological order and,
for each merge node, estimates the *cloning cost* — the extra nodes created
by duplicating its (already-resolved) substructure along every additional
incoming edge.  If that cost exceeds a configurable threshold the node is
*externalized*: it becomes the root of a shared subtree and every incoming
edge is redirected to a lightweight reference node.  Otherwise the node is
cloned.  The result grows linearly with the application size while keeping
most paths direct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.topology.decycle import DecycleResult


@dataclass
class ExternalizationConfig:
    """Tuning knobs for the externalization pass."""

    #: A merge node is externalized when cloning it would add more than this
    #: many nodes.  The paper leaves the threshold configurable; 40 keeps the
    #: simulated Office-scale topologies comfortably linear while cloning
    #: small shared structures in place (shorter declared paths).
    clone_cost_threshold: int = 40
    #: Hard ceiling on the number of nodes the expanded forest may contain.
    #: Exceeding it raises, protecting against degenerate configurations
    #: (e.g. threshold = infinity on a highly shared DAG).
    max_total_nodes: int = 2_000_000


@dataclass
class ExternalizationResult:
    """The externalization decision for every merge node plus size accounting."""

    externalized: Set[str] = field(default_factory=set)
    #: Expanded-subtree size per node (reference nodes count as 1).
    expanded_size: Dict[str, int] = field(default_factory=dict)
    #: Cloning cost that was evaluated for each merge node.
    clone_costs: Dict[str, int] = field(default_factory=dict)
    #: Estimated total nodes of the resulting forest (main tree + subtrees).
    estimated_total_nodes: int = 0

    def is_externalized(self, node_id: str) -> bool:
        return node_id in self.externalized


def plan_externalization(dag: DecycleResult,
                         config: ExternalizationConfig = ExternalizationConfig()
                         ) -> ExternalizationResult:
    """Decide which merge nodes become shared subtrees.

    Nodes are processed in reverse topological order so that a node's
    expanded size already accounts for externalization decisions made for its
    descendants.
    """
    result = ExternalizationResult()
    in_degree = dag.in_degree()
    order = dag.topological_order()

    for node in reversed(order):
        children = dag.successors.get(node, [])
        size = 1
        for child in children:
            if child in result.externalized:
                size += 1  # replaced by a reference node
            else:
                size += result.expanded_size.get(child, 1)
        result.expanded_size[node] = size

        degree = in_degree.get(node, 0)
        if degree > 1:
            clone_cost = (degree - 1) * size
            result.clone_costs[node] = clone_cost
            if clone_cost > config.clone_cost_threshold:
                result.externalized.add(node)

    # Estimated total: the main tree expanded from the root plus one copy of
    # every externalized subtree.
    total = result.expanded_size.get(dag.root_id, 1)
    for node in result.externalized:
        total += result.expanded_size.get(node, 1)
    result.estimated_total_nodes = total
    if total > config.max_total_nodes:
        raise ValueError(
            f"expanded forest would contain {total} nodes, exceeding the "
            f"configured ceiling of {config.max_total_nodes}; raise the "
            f"externalization threshold or the ceiling"
        )
    return result


def full_clone_size(dag: DecycleResult) -> int:
    """Size of the forest if *every* merge node were cloned (no externalization).

    This is the naive graph-to-tree expansion the paper warns about; the
    Figure 4 ablation bench compares it against the cost-based forest.  The
    computation is the same reverse-topological size propagation with an
    empty externalized set, so it stays polynomial even though the expansion
    it measures can be exponential in size.
    """
    sizes: Dict[str, int] = {}
    for node in reversed(dag.topological_order()):
        sizes[node] = 1 + sum(sizes.get(child, 1) for child in dag.successors.get(node, []))
    return sizes.get(dag.root_id, 1)


def externalized_only_size(dag: DecycleResult) -> int:
    """Size if every merge node were externalized (maximal indirection)."""
    in_degree = dag.in_degree()
    sizes: Dict[str, int] = {}
    externalized = {n for n, d in in_degree.items() if d > 1}
    for node in reversed(dag.topological_order()):
        size = 1
        for child in dag.successors.get(node, []):
            size += 1 if child in externalized else sizes.get(child, 1)
        sizes[node] = size
    total = sizes.get(dag.root_id, 1)
    for node in externalized:
        total += sizes.get(node, 1)
    return total
