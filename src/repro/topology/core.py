"""Core-topology extraction (paper §3.3, "Query on demand").

Most tasks only need a fraction of the full forest.  DMI therefore sends the
LLM a *core* view by default: the forest limited to a configurable depth,
with large enumerations (font lists, colour galleries beyond a sample) and a
manual prune list removed.  Whatever the core view omits remains reachable
through ``further_query``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.topology.forest import ForestNode, NavigationForest
from repro.topology.serialize import SerializationConfig, serialize_forest
from repro.llm.tokens import estimate_tokens


@dataclass
class CoreTopologyConfig:
    """What the default (core) view of the topology contains."""

    #: Maximum depth of nodes included in the core view (the paper uses ~6
    #: levels by default).
    max_depth: int = 6
    #: A node whose child count exceeds this is treated as a large
    #: enumeration: only the first ``enumeration_sample`` children stay in
    #: the core view.  The default keeps colour galleries (~30 cells) in the
    #: core while pruning font-family lists and similar long enumerations.
    enumeration_threshold: int = 40
    enumeration_sample: int = 4
    #: Manually identified node names excluded from the core view (the paper
    #: notes these pruning rules are currently manual).
    manual_prune_names: Set[str] = field(default_factory=lambda: {
        "Font items", "Font Size items",
    })


@dataclass
class CoreTopology:
    """A core view over a navigation forest."""

    forest: NavigationForest
    config: CoreTopologyConfig
    visible_ids: Set[int]
    pruned_ids: Set[int]

    def contains(self, node_id: int) -> bool:
        return node_id in self.visible_ids

    def serialize(self, serialization: SerializationConfig = SerializationConfig()) -> str:
        return serialize_forest(self.forest, serialization, visible_ids=self.visible_ids)

    def token_estimate(self) -> int:
        return estimate_tokens(self.serialize())

    def visible_node_count(self) -> int:
        return len(self.visible_ids)

    def pruned_node_count(self) -> int:
        return len(self.pruned_ids)

    def stats(self) -> Dict[str, object]:
        return {
            "app": self.forest.app_name,
            "core_nodes": self.visible_node_count(),
            "pruned_nodes": self.pruned_node_count(),
            "forest_nodes": self.forest.node_count(),
            "core_tokens": self.token_estimate(),
        }


def _is_large_enumeration(node: ForestNode, config: CoreTopologyConfig) -> bool:
    """Heuristic for "large enumeration" nodes (font lists, colour galleries).

    A node is treated as an enumeration when it has many children and those
    children are overwhelmingly homogeneous leaves (same control type, no
    substructure).  Heterogeneous containers — most importantly the virtual
    root, whose children are the whole initial screen — are never pruned
    this way.
    """
    if node.parent is None:
        # Tree roots (the virtual root, shared-subtree roots) always keep
        # their children: the initial screen is not an enumeration.
        return False
    children = node.children
    if len(children) <= config.enumeration_threshold:
        return False
    leaf_children = [c for c in children if c.is_leaf]
    if len(leaf_children) < 0.9 * len(children):
        return False
    type_counts = {}
    for child in leaf_children:
        type_counts[child.control_type] = type_counts.get(child.control_type, 0) + 1
    dominant = max(type_counts.values())
    return dominant >= 0.9 * len(leaf_children)


def extract_core(forest: NavigationForest,
                 config: Optional[CoreTopologyConfig] = None) -> CoreTopology:
    """Compute the default core view of ``forest``."""
    config = config or CoreTopologyConfig()
    visible: Set[int] = set()
    pruned: Set[int] = set()

    def walk(node: ForestNode, depth: int) -> None:
        if node.name in config.manual_prune_names:
            pruned.update(n.node_id for n in node.iter_subtree())
            return
        if depth > config.max_depth:
            pruned.update(n.node_id for n in node.iter_subtree())
            return
        visible.add(node.node_id)
        children = node.children
        if _is_large_enumeration(node, config):
            kept = children[: config.enumeration_sample]
            for dropped in children[config.enumeration_sample:]:
                pruned.update(n.node_id for n in dropped.iter_subtree())
            children = kept
        for child in children:
            walk(child, depth + 1)

    roots: List[ForestNode] = []
    if forest.main_root is not None:
        roots.append(forest.main_root)
    roots.extend(forest.shared_subtrees.values())
    for root in roots:
        walk(root, 0)
    return CoreTopology(forest=forest, config=config, visible_ids=visible, pruned_ids=pruned)
