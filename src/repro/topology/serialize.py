"""Context-efficient textual descriptions of controls and navigation (paper §3.3, §4.2).

The forest is serialised into compact structured text the LLM reads in its
prompt::

    name(type)(description)_id[children]

Parentheses mark optional fields, square brackets encode hierarchical
nesting; ``id`` is the forest's consecutive integer id.  Descriptions are
selectively attached:

* always for controls with *key* types (Menu, TabItem, ComboBox, Group,
  Button, ...) when available;
* when several controls share a name and the group includes at least one key
  type, descriptions are applied to all of them;
* non-leaf (navigational) nodes get full descriptions by default — they are
  few but pivotal;
* descriptions are truncated to a configurable length.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.topology.forest import ForestNode, NavigationForest
from repro.uia.control_types import KEY_CONTROL_TYPES


@dataclass
class SerializationConfig:
    """Controls what gets included in the textual topology."""

    #: Maximum characters of a description before truncation.
    max_description_chars: int = 60
    #: Include descriptions on navigational (non-leaf) nodes when available.
    describe_non_leaves: bool = True
    #: Include descriptions on key-type controls when available.
    describe_key_types: bool = True
    #: Include the control type for every node.
    include_types: bool = True


def _shared_name_groups(nodes: Iterable[ForestNode]) -> Set[str]:
    """Names that appear on multiple controls, at least one of key type."""
    nodes = list(nodes)
    counts = Counter(n.name for n in nodes if n.name)
    duplicated = {name for name, count in counts.items() if count > 1}
    keyed = set()
    for node in nodes:
        if node.name in duplicated and node.control_type in KEY_CONTROL_TYPES:
            keyed.add(node.name)
    return keyed


def _wants_description(node: ForestNode, shared_names: Set[str],
                       config: SerializationConfig) -> bool:
    if not node.description:
        return False
    if config.describe_non_leaves and not node.is_leaf:
        return True
    if config.describe_key_types and node.control_type in KEY_CONTROL_TYPES:
        return True
    return node.name in shared_names


def _escape(text: str) -> str:
    """Escape the structural characters of the output schema."""
    return (text.replace("\\", "\\\\").replace("(", "\\(").replace(")", "\\)")
            .replace("[", "\\[").replace("]", "\\]").replace(",", "\\,"))


def serialize_node(node: ForestNode, config: SerializationConfig = SerializationConfig(),
                   shared_names: Optional[Set[str]] = None,
                   visible_ids: Optional[Set[int]] = None,
                   max_depth: Optional[int] = None) -> str:
    """Serialize one node (and its visible descendants) to schema text.

    ``visible_ids`` restricts the output to a subset of node ids (used by the
    core-topology extraction); ``max_depth`` limits recursion depth relative
    to this node.
    """
    if shared_names is None:
        shared_names = set()
    parts: List[str] = [_escape(node.name or "[Unnamed]")]
    if config.include_types:
        parts.append(f"({node.control_type.value})")
    if _wants_description(node, shared_names, config):
        description = node.description[: config.max_description_chars]
        parts.append(f"({_escape(description)})")
    parts.append(f"_{node.node_id}")
    if node.is_reference and node.ref_subtree_id is not None:
        parts.append(f"{{ref:S{node.ref_subtree_id}}}")

    children = node.children
    if visible_ids is not None:
        children = [c for c in children if c.node_id in visible_ids]
    if max_depth is not None and max_depth <= 0:
        children = []
    if children:
        child_depth = None if max_depth is None else max_depth - 1
        inner = ",".join(
            serialize_node(child, config, shared_names, visible_ids, child_depth)
            for child in children
        )
        parts.append(f"[{inner}]")
    hidden = len(node.children) - len(children)
    if hidden > 0:
        parts.append(f"{{+{hidden} more via further_query}}")
    return "".join(parts)


def serialize_forest(forest: NavigationForest,
                     config: SerializationConfig = SerializationConfig(),
                     visible_ids: Optional[Set[int]] = None,
                     max_depth: Optional[int] = None) -> str:
    """Serialize the whole forest: the main tree followed by shared subtrees.

    The shared-subtree entry map is rendered explicitly so the LLM knows
    which reference ids select which subtree (paper §3.3).
    """
    if forest.main_root is None:
        return ""
    shared_names = _shared_name_groups(forest.iter_all_nodes())
    sections: List[str] = []
    sections.append("## Main tree")
    sections.append(serialize_node(forest.main_root, config, shared_names,
                                   visible_ids, max_depth))
    if forest.shared_subtrees:
        sections.append("## Shared subtrees")
        for subtree_id in sorted(forest.shared_subtrees):
            root = forest.shared_subtrees[subtree_id]
            sections.append(f"S{subtree_id}: " + serialize_node(
                root, config, shared_names, visible_ids, max_depth))
        sections.append("## Shared subtree entry map (reference id -> subtree)")
        entries = [f"{ref_id}->S{subtree_id}"
                   for ref_id, subtree_id in sorted(forest.entry_map.items())]
        sections.append(", ".join(entries))
    return "\n".join(sections)


def leaf_catalog(forest: NavigationForest) -> Dict[int, str]:
    """A flat id -> 'path-qualified name' map of all functional controls.

    This is the *strawman* flattened representation the paper discusses (and
    rejects as context-inefficient); it is kept for the token-overhead
    ablation bench and for debugging.
    """
    catalog: Dict[int, str] = {}
    for leaf in forest.leaf_nodes():
        path = " > ".join(n.name for n in leaf.path_from_root() if n.name)
        catalog[leaf.node_id] = path
    return catalog
