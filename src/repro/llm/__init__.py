"""A calibrated stochastic policy simulator standing in for GPT-5-class LLMs.

The paper's online evaluation drives GPT-5 / GPT-5-mini through the OpenAI
API.  Offline reproduction replaces the remote model with a *policy
simulator*: a planner that derives plans the same way the LLM would (from
the task instruction plus either the navigation forest or the visible
controls), combined with an error model whose parameters mirror the failure
modes the paper attributes to LLMs — imperfect visual grounding, fragile
long-horizon navigation planning, occasional semantic misunderstanding,
imperfect instruction-following and per-call latency.  See DESIGN.md
(substitution table) for why this preserves the behaviour the paper
measures.
"""

from repro.llm.tokens import estimate_tokens
from repro.llm.profiles import (
    GPT5_MEDIUM,
    GPT5_MINIMAL,
    GPT5_MINI,
    ModelProfile,
    profile_by_name,
)
from repro.llm.grounding import GroundingModel
from repro.llm.planner import PlannedCall, SemanticPlanner, SemanticPlan

__all__ = [
    "GPT5_MEDIUM",
    "GPT5_MINI",
    "GPT5_MINIMAL",
    "GroundingModel",
    "ModelProfile",
    "PlannedCall",
    "SemanticPlan",
    "SemanticPlanner",
    "estimate_tokens",
    "profile_by_name",
]
