"""Visual-grounding simulation.

GUI-based agents must map the control they *intend* to act on to a concrete
on-screen element, typically by reading a labelled accessibility tree or a
screenshot.  The paper identifies imperfect visual grounding as a dominant
mechanism-level failure source for GUI-only agents.  :class:`GroundingModel`
reproduces that failure mode: a lookup by name usually resolves to the right
element, but with a profile-dependent probability it lands on a *plausible
neighbour* (spatially close, or sharing part of the name) instead.

DMI's access declaration bypasses grounding entirely — the executor resolves
ids deterministically — which is exactly why the declarative interface
removes this class of failure.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.gui.screen import neighbours_of
from repro.llm.profiles import ModelProfile
from repro.uia.element import UIElement


class GroundingModel:
    """Resolves intended control names against the visible UI, imperfectly."""

    def __init__(self, profile: ModelProfile, rng: Optional[random.Random] = None) -> None:
        self.profile = profile
        self.rng = rng or random.Random(0)
        self.lookups = 0
        self.errors_injected = 0

    # ------------------------------------------------------------------
    def locate(self, name: str, visible: Sequence[UIElement],
               scope_hint: str = "") -> Optional[UIElement]:
        """Find the on-screen element the model believes matches ``name``.

        Returns None when nothing plausibly matches (the model reports the
        control as "not visible"), the correct element most of the time, and
        a nearby/confusable element with probability
        ``profile.grounding_error_rate``.
        """
        self.lookups += 1
        target = self._best_match(name, visible, scope_hint)
        if target is None:
            return None
        if self.rng.random() < self.profile.grounding_error_rate:
            wrong = self._confusable_alternative(target, name, visible)
            if wrong is not None:
                self.errors_injected += 1
                return wrong
        return target

    def misreads_content(self) -> bool:
        """Whether the model misreads dynamic on-screen content this time."""
        return self.rng.random() < self.profile.visual_parse_error_rate

    # ------------------------------------------------------------------
    def _best_match(self, name: str, visible: Sequence[UIElement],
                    scope_hint: str = "") -> Optional[UIElement]:
        wanted = name.lower()
        hint = scope_hint.lower()
        exact = [e for e in visible if e.name.lower() == wanted and e.is_enabled]
        if hint and len(exact) > 1:
            scoped = [e for e in exact if hint in _ancestry_text(e)]
            if scoped:
                exact = scoped
        if exact:
            return exact[0]
        partial = [e for e in visible
                   if wanted and wanted in e.name.lower() and e.is_enabled]
        if hint and len(partial) > 1:
            scoped = [e for e in partial if hint in _ancestry_text(e)]
            if scoped:
                partial = scoped
        return partial[0] if partial else None

    def _confusable_alternative(self, target: UIElement, name: str,
                                visible: Sequence[UIElement]) -> Optional[UIElement]:
        """Pick a plausible wrong element: same-name siblings first, then
        spatial neighbours, then anything clickable nearby in the list."""
        same_name = [e for e in visible
                     if e is not target and e.name.lower() == name.lower()]
        if same_name:
            return self.rng.choice(same_name)
        near = [e for e in neighbours_of(target) if e.is_enabled]
        if near:
            return self.rng.choice(near)
        others = [e for e in visible if e is not target and e.is_enabled and e.name]
        if others:
            return self.rng.choice(others)
        return None


def _ancestry_text(element: UIElement) -> str:
    return " > ".join(a.name for a in reversed(element.ancestors())).lower()
