"""Token estimation.

The paper reports topology overhead in tokens under the ``o200k_base``
encoding (~15 tokens per control on average).  Offline we estimate token
counts with a standard heuristic: BPE encodings of English UI text average
roughly four characters per token, with punctuation-heavy structured text a
bit denser.  The estimator combines a character-based and a word-based bound,
which tracks ``o200k_base`` within ~10% on the kind of text we serialise —
close enough for the overhead analysis, whose claims are about orders of
magnitude and relative growth.
"""

from __future__ import annotations

import re

_WORD_RE = re.compile(r"[A-Za-z0-9]+|[^\sA-Za-z0-9]")


def estimate_tokens(text: str) -> int:
    """Estimate the number of BPE tokens in ``text``."""
    if not text:
        return 0
    char_estimate = len(text) / 4.0
    pieces = _WORD_RE.findall(text)
    word_estimate = 0.0
    for piece in pieces:
        if piece.isalpha():
            # Long identifiers split into several tokens.
            word_estimate += max(1.0, len(piece) / 6.0)
        else:
            word_estimate += 1.0
    return int(round(max(char_estimate, word_estimate)))


def tokens_per_item(texts) -> float:
    """Average token count across an iterable of text snippets."""
    texts = list(texts)
    if not texts:
        return 0.0
    return sum(estimate_tokens(t) for t in texts) / len(texts)
