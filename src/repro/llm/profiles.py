"""Model capability profiles.

Each profile parameterises the policy simulator with the failure modes and
costs the paper attributes to a given model / reasoning configuration.  The
values are calibrated from the paper's own measurements:

* the per-category failure counts in §5.6 (Figure 6) pin down the semantic
  (policy) error rates and the aggregate mechanism error mass;
* Table 3's success rates, step counts and completion times pin down the
  per-action grounding error, the navigation-planning error and the latency
  model;
* the ablation (§5.5) motivates ``knows_app_structure``: GPT-5 already knows
  where Office controls live (providing the forest as prose changes little),
  while GPT-5-mini benefits modestly from it.

The calibration targets the *shape* of the results, not the exact numbers —
see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class ModelProfile:
    """Capability/cost parameters of one simulated model configuration."""

    name: str
    reasoning: str                         # "medium" | "minimal"

    # -- mechanism-level error rates (imperative GUI interaction) --------
    #: Probability that a control-targeting action lands on the wrong
    #: on-screen control (imperfect visual grounding).
    grounding_error_rate: float
    #: Probability, per planning round, of choosing a wrong navigation branch
    #: (a wasted round before the planner recovers).
    nav_plan_error_rate: float
    #: Probability that one composite interaction attempt (drag a scrollbar
    #: thumb to a target position) fails and must be retried.
    composite_error_rate: float
    #: Probability of misreading on-screen content when a task requires
    #: perceiving dynamic data without structured retrieval.
    visual_parse_error_rate: float
    #: Probability that the model, having gotten lost mid-navigation (wrong
    #: click, unexpected dialog), correctly re-plans its way back on track in
    #: a single round.  Low values make mechanism errors cascade, which is
    #: the fragility the paper attributes to imperative GUI use.
    recovery_competence: float

    # -- policy-level error rates ----------------------------------------
    #: Probability of a semantic planning error on an average task.
    semantic_error_rate: float
    #: Multiplier on the semantic error rate when the model must also handle
    #: the mechanism (GUI-only setting); the paper observes additional
    #: semantic mistakes when attention is split.
    attention_split_factor: float
    #: Probability of violating the "output functional controls only"
    #: instruction by including navigation nodes in a visit command.
    instruction_following_error: float

    # -- knowledge ---------------------------------------------------------
    #: Whether the model already knows the application's command structure
    #: (true for frontier models on Microsoft Office).
    knows_app_structure: bool

    # -- cost model --------------------------------------------------------
    #: Fixed seconds per LLM call (inference + agent overhead).
    base_latency_s: float
    #: Additional seconds per 1000 prompt tokens.
    latency_per_1k_prompt_tokens_s: float
    #: Average completion length in tokens.
    completion_tokens_mean: float = 220.0

    def with_knowledge(self, knows: bool) -> "ModelProfile":
        """A copy of this profile with the app-structure knowledge overridden."""
        return replace(self, knows_app_structure=knows)

    def effective_semantic_error(self, difficulty: float, split_attention: bool) -> float:
        """Semantic error probability for one task."""
        rate = self.semantic_error_rate * difficulty
        if split_attention:
            rate *= self.attention_split_factor
        return min(0.95, rate)


GPT5_MEDIUM = ModelProfile(
    name="gpt-5",
    reasoning="medium",
    grounding_error_rate=0.16,
    nav_plan_error_rate=0.13,
    composite_error_rate=0.25,
    visual_parse_error_rate=0.15,
    recovery_competence=0.55,
    semantic_error_rate=0.26,
    attention_split_factor=1.35,
    instruction_following_error=0.10,
    knows_app_structure=True,
    base_latency_s=44.0,
    latency_per_1k_prompt_tokens_s=0.55,
)

GPT5_MINIMAL = ModelProfile(
    name="gpt-5",
    reasoning="minimal",
    grounding_error_rate=0.17,
    nav_plan_error_rate=0.15,
    composite_error_rate=0.35,
    visual_parse_error_rate=0.30,
    recovery_competence=0.50,
    semantic_error_rate=0.70,
    attention_split_factor=1.15,
    instruction_following_error=0.15,
    knows_app_structure=True,
    base_latency_s=25.0,
    latency_per_1k_prompt_tokens_s=0.30,
)

GPT5_MINI = ModelProfile(
    name="gpt-5-mini",
    reasoning="medium",
    grounding_error_rate=0.20,
    nav_plan_error_rate=0.18,
    composite_error_rate=0.40,
    visual_parse_error_rate=0.35,
    recovery_competence=0.40,
    semantic_error_rate=0.58,
    attention_split_factor=1.20,
    instruction_following_error=0.20,
    knows_app_structure=False,
    base_latency_s=20.0,
    latency_per_1k_prompt_tokens_s=0.85,
)

_PROFILES: Dict[str, ModelProfile] = {
    "gpt-5-medium": GPT5_MEDIUM,
    "gpt-5-minimal": GPT5_MINIMAL,
    "gpt-5-mini-medium": GPT5_MINI,
}


def profile_by_name(name: str) -> ModelProfile:
    """Look up a profile by its canonical ``<model>-<reasoning>`` key."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown profile {name!r}; available: {sorted(_PROFILES)}"
        ) from None


def all_profiles() -> Dict[str, ModelProfile]:
    return dict(_PROFILES)
