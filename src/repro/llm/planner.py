"""The semantic planner: the policy half of the simulated LLM.

Given a task specification, the planner produces either

* a **declarative plan** (:meth:`SemanticPlanner.plan_declarative`) — the
  sequence of DMI calls (``visit`` bundles, state declarations, observation
  requests, ``further_query``) an LLM using DMI would emit, or
* an **imperative plan** (:meth:`SemanticPlanner.plan_imperative`) — the
  sequence of fine-grained GUI micro-steps (clicks, text entry, drags) a
  GUI-only agent must emit.

Both start from the task's oracle intent decomposition and then degrade it
according to the model profile:

* **semantic errors** — with a task- and profile-dependent probability the
  planner misunderstands the task: it substitutes a plausible distractor
  control, mangles a numeric argument, or drops a trailing intent.  This is
  decided once per trial (a misunderstanding persists across rounds) and is
  the source of *policy-level* failures.
* **imperfect instruction following** — with some probability the planner
  also emits navigation (non-leaf) nodes in ``visit`` commands, which DMI's
  filtering must absorb.
* **knowledge gaps** — models that do not know the application's command
  structure explore wrong ribbon tabs before finding the right one when
  driving the GUI imperatively.

Mechanism-level errors (grounding, composite interaction) are *not* applied
here; they live in :mod:`repro.llm.grounding` and the agent's executor,
because they occur at action-delivery time.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from repro.llm.profiles import ModelProfile
from repro.spec import FailureCause, Intent, IntentKind, TaskSpec
from repro.topology.forest import ForestNode, NavigationForest

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.topology.core import CoreTopology


@dataclass
class PlannedCall:
    """One LLM round's worth of DMI output."""

    kind: str                      # visit | set_scrollbar_pos | select_lines |
    #                              # select_paragraphs | select_controls |
    #                              # get_texts | further_query | gui_fallback
    payload: dict = field(default_factory=dict)
    intent_index: int = -1


@dataclass
class MicroStep:
    """One fine-grained imperative GUI action the baseline must deliver."""

    kind: str                      # click | type | shortcut | drag_scroll |
    #                              # select_text | read
    target: str = ""
    scope_hint: str = ""
    text: str = ""
    value: float = 0.0
    select_range: Tuple[int, ...] = ()
    intent_index: int = -1
    #: True when the step is exploratory noise (wrong tab opened by a model
    #: that does not know the application structure).
    exploratory: bool = False


@dataclass
class SemanticPlan:
    """The planner's output for one trial."""

    calls: List[PlannedCall] = field(default_factory=list)
    steps: List[MicroStep] = field(default_factory=list)
    corruption: Optional[FailureCause] = None
    corrupted_intent: int = -1
    notes: List[str] = field(default_factory=list)


@dataclass
class LeafResolution:
    """Result of resolving an intent target against the navigation forest."""

    node: Optional[ForestNode]
    entry_ref_ids: List[int] = field(default_factory=list)
    in_core: bool = True

    @property
    def resolved(self) -> bool:
        return self.node is not None


class SemanticPlanner:
    """Produces (possibly degraded) plans for one task trial."""

    def __init__(self, profile: ModelProfile, rng: Optional[random.Random] = None) -> None:
        self.profile = profile
        self.rng = rng or random.Random(0)

    # ------------------------------------------------------------------
    # semantic corruption
    # ------------------------------------------------------------------
    def corrupt_intents(self, task: TaskSpec, split_attention: bool
                        ) -> Tuple[List[Intent], Optional[FailureCause], int]:
        """Apply at most one semantic misunderstanding to the task's intents.

        Returns (intents, failure_cause, corrupted_index); the cause is None
        when the planner understood the task correctly.
        """
        intents = list(task.intents)
        probability = self.profile.effective_semantic_error(task.semantic_difficulty,
                                                            split_attention)
        if self.rng.random() >= probability:
            return intents, None, -1

        index = self.rng.randrange(len(intents))
        intents[index] = self._corrupt_one(intents[index])
        cause = task.policy_failure_cause
        if task.ambiguous:
            cause = FailureCause.AMBIGUOUS_TASK
        return intents, cause, index

    def _corrupt_one(self, intent: Intent) -> Intent:
        """Produce a plausible — and consequential — misunderstanding of one intent."""
        from dataclasses import replace

        if intent.distractors:
            wrong = self.rng.choice(list(intent.distractors))
            return replace(intent, target=wrong, scope_hint="")
        if intent.kind == IntentKind.SET_SCROLLBAR:
            wrong_value = max(0.0, min(100.0, intent.value + self.rng.choice([-45.0, -30.0, 35.0])))
            return replace(intent, value=wrong_value)
        if intent.kind in (IntentKind.SELECT_LINES, IntentKind.SELECT_PARAGRAPHS) \
                and intent.select_range:
            start, end = intent.select_range[0], intent.select_range[-1]
            shifted = (max(0, start - 1), max(0, end - 1))
            return replace(intent, select_range=shifted)
        if intent.kind == IntentKind.ACCESS_INPUT and intent.text:
            return replace(intent, text=_corrupt_text(intent.text, self.rng))
        if intent.kind == IntentKind.SELECT_CONTROLS and intent.control_names:
            return replace(intent, control_names=tuple(_corrupt_text(n, self.rng)
                                                       for n in intent.control_names))
        # Last resort: the planner simply skips the operation.
        return replace(intent, kind=IntentKind.OBSERVE, target=intent.target)

    # ------------------------------------------------------------------
    # leaf resolution against the forest
    # ------------------------------------------------------------------
    def resolve_leaf(self, forest: NavigationForest, name: str, scope_hint: str = "",
                     core: Optional["CoreTopology"] = None,
                     prefer_types: Tuple[str, ...] = ()) -> LeafResolution:
        """Find the functional node the planner means by ``name``.

        Candidates are filtered by the scope hint first (the path-dependent
        disambiguation — "Blue" under "Fill Color" vs "Font Color"), then by
        control-type preference (a "type text into X" intent prefers Edit-like
        controls over an identically named checkbox), then leaves are
        preferred.  The chosen node may be a non-leaf when the semantically
        right control happens to reveal content when clicked (e.g.
        "New Slide > Two Content" reveals a new thumbnail); the caller decides
        what to do with it — DMI's visit interface would filter it, so the
        declarative planner falls back to GUI for that intent, as the paper's
        "explicit navigation-node access" lesson prescribes.
        """
        candidates = forest.find_by_name(name, exact=True)
        if not candidates:
            candidates = forest.find_by_name(name, exact=False)
        candidates = [c for c in candidates if not c.is_reference]
        if not candidates:
            return LeafResolution(node=None)
        scoped = self._filter_by_scope(candidates, scope_hint)
        pool = scoped if scoped else candidates
        if prefer_types:
            wanted_types = {t.lower() for t in prefer_types}
            typed = [c for c in pool if c.control_type.value.lower() in wanted_types]
            if typed:
                pool = typed
        leaves = [c for c in pool if c.is_leaf]
        chosen = leaves[0] if leaves else pool[0]
        entry_refs: List[int] = []
        if chosen.subtree_id is not None:
            references = forest.references_to_subtree(chosen.subtree_id)
            scoped_refs = self._filter_by_scope(references, scope_hint)
            ref = (scoped_refs or references)[0] if references else None
            if ref is not None:
                entry_refs = [ref.node_id]
        in_core = core.contains(chosen.node_id) if core is not None else True
        return LeafResolution(node=chosen, entry_ref_ids=entry_refs, in_core=in_core)

    @staticmethod
    def _filter_by_scope(candidates: Sequence[ForestNode], scope_hint: str) -> List[ForestNode]:
        if not scope_hint:
            return list(candidates)
        hint = scope_hint.lower()
        matching = []
        for candidate in candidates:
            path_text = " > ".join(n.name for n in candidate.path_from_root()).lower()
            if hint in path_text:
                matching.append(candidate)
        return matching

    # ------------------------------------------------------------------
    # declarative planning (GUI + DMI)
    # ------------------------------------------------------------------
    def plan_declarative(self, task: TaskSpec, forest: NavigationForest,
                         core: Optional["CoreTopology"] = None) -> SemanticPlan:
        """The sequence of DMI calls the model emits for this task."""
        intents, cause, corrupted = self.corrupt_intents(task, split_attention=False)
        plan = SemanticPlan(corruption=cause, corrupted_intent=corrupted)

        pending_visit: List[dict] = []

        def flush_visit() -> None:
            if pending_visit:
                plan.calls.append(PlannedCall(kind="visit",
                                              payload={"commands": list(pending_visit)}))
                pending_visit.clear()

        for index, intent in enumerate(intents):
            if intent.kind in (IntentKind.ACCESS, IntentKind.ACCESS_INPUT):
                prefer = _EDITABLE_TYPES if intent.kind == IntentKind.ACCESS_INPUT else ()
                resolution = self.resolve_leaf(forest, intent.target, intent.scope_hint, core,
                                               prefer_types=prefer)
                if not resolution.resolved or not resolution.node.is_leaf:
                    # Either the topology lacks the control, or the intended
                    # control is a navigation node that visit would filter:
                    # use the GUI slow path for this intent (paper §5.7).
                    flush_visit()
                    plan.calls.append(PlannedCall(kind="gui_fallback",
                                                  payload={"intent": intent},
                                                  intent_index=index))
                    plan.notes.append(f"{intent.target!r} is outside visit's fast path; "
                                      f"falling back to GUI")
                    continue
                if not resolution.in_core:
                    flush_visit()
                    plan.calls.append(PlannedCall(
                        kind="further_query",
                        payload={"node_ids": [resolution.node.node_id]},
                        intent_index=index))
                command = {"id": resolution.node.node_id}
                if resolution.entry_ref_ids:
                    command["entry_ref_id"] = list(resolution.entry_ref_ids)
                if intent.kind == IntentKind.ACCESS_INPUT:
                    command["text"] = intent.text
                pending_visit.append(command)
                self._maybe_disobey(forest, resolution, pending_visit)
            elif intent.kind == IntentKind.SHORTCUT:
                pending_visit.append({"shortcut_key": intent.text})
            elif intent.kind == IntentKind.SET_SCROLLBAR:
                flush_visit()
                plan.calls.append(PlannedCall(
                    kind="set_scrollbar_pos",
                    payload={"control": intent.target, "percent": intent.value},
                    intent_index=index))
            elif intent.kind == IntentKind.SELECT_LINES:
                flush_visit()
                plan.calls.append(PlannedCall(
                    kind="select_lines",
                    payload={"control": intent.target,
                             "start": intent.select_range[0],
                             "end": intent.select_range[-1]},
                    intent_index=index))
            elif intent.kind == IntentKind.SELECT_PARAGRAPHS:
                flush_visit()
                plan.calls.append(PlannedCall(
                    kind="select_paragraphs",
                    payload={"control": intent.target,
                             "start": intent.select_range[0],
                             "end": intent.select_range[-1]},
                    intent_index=index))
            elif intent.kind == IntentKind.SELECT_CONTROLS:
                flush_visit()
                plan.calls.append(PlannedCall(
                    kind="select_controls",
                    payload={"controls": list(intent.control_names)},
                    intent_index=index))
            elif intent.kind == IntentKind.OBSERVE:
                flush_visit()
                plan.calls.append(PlannedCall(
                    kind="get_texts",
                    payload={"control": intent.target},
                    intent_index=index))
            else:  # pragma: no cover - defensive
                raise ValueError(f"unhandled intent kind {intent.kind}")
        flush_visit()
        return plan

    def _maybe_disobey(self, forest: NavigationForest, resolution: LeafResolution,
                       pending_visit: List[dict]) -> None:
        """With some probability, also emit the navigation parent (violating
        the "functional controls only" instruction); DMI must filter it."""
        if self.rng.random() >= self.profile.instruction_following_error:
            return
        node = resolution.node
        if node is None or node.parent is None:
            return
        parent = node.parent
        if parent.is_reference or parent.parent is None:
            return
        pending_visit.insert(max(0, len(pending_visit) - 1), {"id": parent.node_id})

    # ------------------------------------------------------------------
    # imperative planning (GUI-only baseline)
    # ------------------------------------------------------------------
    def plan_imperative(self, task: TaskSpec, forest: NavigationForest,
                        knows_structure: Optional[bool] = None) -> SemanticPlan:
        """The fine-grained GUI micro-steps the baseline model emits."""
        intents, cause, corrupted = self.corrupt_intents(task, split_attention=True)
        plan = SemanticPlan(corruption=cause, corrupted_intent=corrupted)
        knows = self.profile.knows_app_structure if knows_structure is None else knows_structure

        previous_path_names: List[str] = []
        for index, intent in enumerate(intents):
            if intent.kind in (IntentKind.ACCESS, IntentKind.ACCESS_INPUT):
                if not knows:
                    for wrong_tab in self._exploration_noise(forest):
                        plan.steps.append(MicroStep(kind="click", target=wrong_tab,
                                                    intent_index=index, exploratory=True))
                prefer = _EDITABLE_TYPES if intent.kind == IntentKind.ACCESS_INPUT else ()
                resolution = self.resolve_leaf(forest, intent.target, intent.scope_hint,
                                               prefer_types=prefer)
                if resolution.resolved:
                    path = forest.node_path(resolution.node.node_id, resolution.entry_ref_ids)
                else:
                    # The model believes the control exists and will try to
                    # click it directly (and fail to find it on screen).
                    path = []
                path_names = [node.name for node in path]
                # Consecutive intents that live behind the same menu/dialog
                # share a navigation prefix the model does not re-open (the
                # dialog is already in front of it).
                shared = _common_prefix_length(previous_path_names, path_names)
                shared = min(shared, max(0, len(path_names) - 1))
                for name in path_names[shared:]:
                    plan.steps.append(MicroStep(kind="click", target=name,
                                                scope_hint=intent.scope_hint,
                                                intent_index=index))
                if not path_names:
                    plan.steps.append(MicroStep(kind="click", target=intent.target,
                                                scope_hint=intent.scope_hint,
                                                intent_index=index))
                previous_path_names = path_names
                if intent.kind == IntentKind.ACCESS_INPUT:
                    plan.steps.append(MicroStep(kind="type", target=intent.target,
                                                scope_hint=intent.scope_hint,
                                                text=intent.text, intent_index=index))
            elif intent.kind == IntentKind.SHORTCUT:
                plan.steps.append(MicroStep(kind="shortcut", text=intent.text,
                                            intent_index=index))
            elif intent.kind == IntentKind.SET_SCROLLBAR:
                plan.steps.append(MicroStep(kind="drag_scroll", target=intent.target,
                                            value=intent.value, intent_index=index))
            elif intent.kind in (IntentKind.SELECT_LINES, IntentKind.SELECT_PARAGRAPHS):
                plan.steps.append(MicroStep(kind="select_text", target=intent.target,
                                            select_range=tuple(intent.select_range),
                                            intent_index=index))
            elif intent.kind == IntentKind.SELECT_CONTROLS:
                for name in intent.control_names:
                    plan.steps.append(MicroStep(kind="click", target=name,
                                                intent_index=index))
            elif intent.kind == IntentKind.OBSERVE:
                plan.steps.append(MicroStep(kind="read", target=intent.target,
                                            intent_index=index))
            else:  # pragma: no cover - defensive
                raise ValueError(f"unhandled intent kind {intent.kind}")
        return plan

    def _exploration_noise(self, forest: NavigationForest) -> List[str]:
        """Ribbon tabs a structure-unaware model opens while searching."""
        if forest.main_root is None:
            return []
        tabs = [n.name for n in forest.main_root.children
                if not n.is_reference and n.children and n.name]
        if not tabs:
            return []
        count = self.rng.choice([0, 1, 1, 2])
        return [self.rng.choice(tabs) for _ in range(count)]


#: Control types an access-and-input-text intent prefers when several
#: controls share a name (the Notes edit pane over the "Notes" checkbox).
_EDITABLE_TYPES = ("Edit", "ComboBox", "DataItem", "Document", "Spinner")


def _common_prefix_length(previous: Sequence[str], current: Sequence[str]) -> int:
    """Length of the shared leading segment of two navigation paths."""
    length = 0
    for a, b in zip(previous, current):
        if a != b:
            break
        length += 1
    return length


_CELL_REFERENCE_RE = re.compile(r"^([A-Za-z]{1,3})([0-9]+)((:[A-Za-z]{1,3}[0-9]+)?)$")


def _corrupt_text(text: str, rng: random.Random) -> str:
    """A consequential misunderstanding of a textual argument.

    Cell references drift by one row, numbers lose or gain an order of
    magnitude or a digit, and free text is replaced by a near-miss — the
    kinds of small semantic slips that still execute cleanly but leave the
    wrong final state.
    """
    match = _CELL_REFERENCE_RE.match(text.strip())
    if match:
        column, row, tail = match.group(1), int(match.group(2)), match.group(3) or ""
        return f"{column}{max(1, row + rng.choice([-1, 1]))}{tail}"
    try:
        value = float(text)
    except ValueError:
        words = text.split()
        if len(words) > 1:
            return " ".join(words[:-1])
        return text + " draft"
    factor = rng.choice([0.1, 10.0])
    corrupted = value * factor
    return str(int(corrupted)) if corrupted.is_integer() else str(corrupted)
