"""The desktop: window management, focus and process registry.

The desktop is the single authority on which windows exist, their z-order and
which one is "topmost valid" — the notion DMI's path-navigation loop uses
("fetch the topmost valid window and all descendant controls", paper §4.3).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from repro.gui.screen import ScreenLayout
from repro.gui.widgets import Window
from repro.uia.element import UIElement
from repro.uia.events import EventBus, EventKind

_process_id_counter = itertools.count(1000)


class Desktop:
    """A simulated desktop session.

    Responsibilities:

    * track open top-level windows and modal dialogs in z-order;
    * expose the *topmost valid* window (modal dialogs take priority);
    * maintain keyboard focus;
    * emit accessibility events (window opened/closed, focus changed);
    * lay out visible elements so coordinate-based interaction works.
    """

    def __init__(self, width: int = 1920, height: int = 1080) -> None:
        self.width = width
        self.height = height
        self.windows: List[Window] = []
        self.focus: Optional[UIElement] = None
        self.events = EventBus()
        self.layout = ScreenLayout(width=width, height=height)
        self._processes: Dict[int, str] = {}
        self._window_listeners: List[Callable[[Window, str], None]] = []

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def register_process(self, name: str) -> int:
        """Register an application process and return its process id."""
        pid = next(_process_id_counter)
        self._processes[pid] = name
        return pid

    def process_name(self, pid: int) -> Optional[str]:
        return self._processes.get(pid)

    # ------------------------------------------------------------------
    # windows
    # ------------------------------------------------------------------
    def open_window(self, window: Window, process_id: Optional[int] = None) -> Window:
        """Add ``window`` to the desktop on top of the z-order."""
        window.desktop = self
        if process_id is not None:
            window.process_id = process_id
        self.windows.append(window)
        self.events.emit_kind(EventKind.WINDOW_OPENED, source=window)
        for listener in list(self._window_listeners):
            listener(window, "opened")
        self.relayout()
        return window

    def notify_window_closed(self, window: Window) -> None:
        """Called by :class:`Window` when its WindowPattern closes."""
        if window in self.windows:
            self.windows.remove(window)
        if self.focus is not None and self.focus.root() is window:
            self.focus = None
        self.events.emit_kind(EventKind.WINDOW_CLOSED, source=window)
        for listener in list(self._window_listeners):
            listener(window, "closed")
        self.relayout()

    def add_window_listener(self, listener: Callable[[Window, str], None]) -> Callable[[], None]:
        """Register a window open/close listener; returns an unsubscriber."""
        self._window_listeners.append(listener)

        def remove() -> None:
            if listener in self._window_listeners:
                self._window_listeners.remove(listener)

        return remove

    def open_windows(self, process_id: Optional[int] = None) -> List[Window]:
        """All open windows, optionally filtered by process id (bottom-up z-order)."""
        result = [w for w in self.windows if w.is_open]
        if process_id is not None:
            result = [w for w in result if w.process_id == process_id]
        return result

    def top_window(self, process_id: Optional[int] = None) -> Optional[Window]:
        """The topmost valid window: the most recently opened open window.

        Modal dialogs are always above their owners because they are opened
        later; this matches the "fetch the topmost valid window" rule the DMI
        executor follows.
        """
        candidates = self.open_windows(process_id)
        return candidates[-1] if candidates else None

    def modal_windows(self, process_id: Optional[int] = None) -> List[Window]:
        return [w for w in self.open_windows(process_id) if w.is_modal]

    # ------------------------------------------------------------------
    # focus
    # ------------------------------------------------------------------
    def set_focus(self, element: Optional[UIElement]) -> None:
        if element is not self.focus:
            self.focus = element
            self.events.emit_kind(EventKind.FOCUS_CHANGED, source=element)

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------
    def relayout(self) -> None:
        """Recompute bounding rectangles for every visible element."""
        self.layout.layout_windows(self.open_windows())

    def element_at(self, x: float, y: float) -> Optional[UIElement]:
        """Hit-test: the deepest visible element under the point, topmost window first."""
        for window in reversed(self.open_windows()):
            hit = self.layout.hit_test(window, x, y)
            if hit is not None:
                return hit
        return None

    def visible_control_count(self) -> int:
        """Total number of on-screen elements across all open windows."""
        total = 0
        for window in self.open_windows():
            total += sum(1 for _ in _visible_iter(window))
        return total


def _visible_iter(root: UIElement):
    stack = [root]
    while stack:
        node = stack.pop()
        if not node.visible:
            continue
        yield node
        stack.extend(reversed(node.children))
