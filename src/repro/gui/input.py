"""Input simulation: the imperative GUI action surface.

This module is the analogue of pywinauto's mouse/keyboard layer.  Both the
GUI-only agent baseline (clicks, drags, wheel, keyboard) and the DMI executor
(which performs the final primitive interaction after deterministic
navigation) funnel through :class:`InputSimulator`, so the two paths exercise
the same underlying machinery — only *who decides what to do* differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.gui.desktop import Desktop
from repro.gui.widgets import Edit, ScrollBarControl, Widget
from repro.uia.element import UIElement
from repro.uia.events import EventKind
from repro.uia.patterns import PatternId


class InputError(RuntimeError):
    """Raised when an input action cannot be delivered (e.g. empty point)."""


@dataclass(frozen=True)
class Shortcut:
    """A keyboard shortcut such as ``ctrl+s`` or ``enter``."""

    keys: Tuple[str, ...]

    @classmethod
    def parse(cls, combination: str) -> "Shortcut":
        keys = tuple(k.strip().lower() for k in combination.replace("-", "+").split("+") if k.strip())
        if not keys:
            raise ValueError(f"empty key combination: {combination!r}")
        return cls(keys=keys)

    def __str__(self) -> str:
        return "+".join(self.keys)


@dataclass
class InputLogEntry:
    """One delivered input action (for traces and step accounting)."""

    kind: str
    target: Optional[str] = None
    detail: dict = field(default_factory=dict)


class InputSimulator:
    """Delivers simulated mouse and keyboard input to a :class:`Desktop`."""

    def __init__(self, desktop: Desktop) -> None:
        self.desktop = desktop
        self.log: List[InputLogEntry] = []
        self.cursor: Tuple[float, float] = (0.0, 0.0)
        self._drag_origin: Optional[Tuple[float, float]] = None

    # ------------------------------------------------------------------
    # mouse: element-addressed
    # ------------------------------------------------------------------
    def click(self, element: UIElement) -> None:
        """Primitive interaction on an element (the widget decides semantics)."""
        if not element.is_enabled:
            raise InputError(f"cannot click disabled control {element.name!r}")
        self._record("click", element)
        self.cursor = element.rect.center
        self.desktop.set_focus(element)
        if isinstance(element, Widget):
            element.activate()
        else:
            invoke = element.get_pattern(PatternId.INVOKE)
            if invoke is not None:
                invoke.invoke()
        self.desktop.events.emit_kind(EventKind.INVOKED, source=element)
        self.desktop.relayout()

    def double_click(self, element: UIElement) -> None:
        self.click(element)
        self.click(element)

    # ------------------------------------------------------------------
    # mouse: coordinate-addressed (the fragile imperative path)
    # ------------------------------------------------------------------
    def click_on_coordinates(self, x: float, y: float) -> Optional[UIElement]:
        """Click whatever is under the point; returns the element hit (if any)."""
        self._record("click_on_coordinates", None, x=x, y=y)
        self.cursor = (x, y)
        target = self.desktop.element_at(x, y)
        if target is None:
            return None
        self.click(target)
        return target

    def drag_on_coordinates(self, x1: float, y1: float, x2: float, y2: float) -> Optional[UIElement]:
        """Press at (x1, y1), drag to (x2, y2), release.

        Dragging a scrollbar thumb adjusts the scrollbar position
        proportionally to the drag distance along its orientation.  Dragging
        anything else records the gesture but has no structural effect (as in
        a real app, many drags are no-ops unless they hit a drag-aware
        control).
        """
        self._record("drag_on_coordinates", None, x1=x1, y1=y1, x2=x2, y2=y2)
        origin = self.desktop.element_at(x1, y1)
        self.cursor = (x2, y2)
        if origin is None:
            return None
        scrollbar = _owning_scrollbar(origin)
        if scrollbar is not None:
            span = (
                scrollbar.rect.width if scrollbar.orientation == "horizontal" else scrollbar.rect.height
            )
            if span <= 0:
                span = 1.0
            delta = (x2 - x1) if scrollbar.orientation == "horizontal" else (y2 - y1)
            scrollbar.set_position(scrollbar.position + (delta / span) * 100.0)
            self.desktop.events.emit_kind(EventKind.SCROLL_CHANGED, source=scrollbar)
        return origin

    def wheel_mouse_input(self, element: UIElement, wheel_dist: int) -> None:
        """Scroll the element (or its nearest scrollable ancestor) by notches."""
        self._record("wheel_mouse_input", element, wheel_dist=wheel_dist)
        node: Optional[UIElement] = element
        while node is not None:
            scroll = node.get_pattern(PatternId.SCROLL)
            if scroll is not None and scroll.vertically_scrollable:
                # One wheel notch ~ 5% of the document, matching typical apps.
                scroll.scroll_by(vertical_delta=-5.0 * wheel_dist)
                self.desktop.events.emit_kind(EventKind.SCROLL_CHANGED, source=node)
                return
            node = node.parent

    # ------------------------------------------------------------------
    # keyboard
    # ------------------------------------------------------------------
    def type_text(self, element: UIElement, text: str) -> None:
        """Type ``text`` into an editable control (replacing its content)."""
        self._record("type_text", element, text=text)
        self.desktop.set_focus(element)
        if isinstance(element, Edit):
            element.set_text(text)
        else:
            value = element.get_pattern(PatternId.VALUE)
            if value is None:
                raise InputError(f"control {element.name!r} does not accept text input")
            value.set_value(text)
            element.text = text
        self.desktop.events.emit_kind(EventKind.VALUE_CHANGED, source=element)

    def keyboard_input(self, combination: str) -> Shortcut:
        """Deliver a keyboard shortcut to the focused element / top window."""
        shortcut = Shortcut.parse(combination)
        self._record("keyboard_input", self.desktop.focus, keys=str(shortcut))
        focus = self.desktop.focus
        if shortcut.keys == ("enter",) and isinstance(focus, Edit):
            focus.commit()
        elif shortcut.keys == ("escape",):
            top = self.desktop.top_window()
            if top is not None and top.is_modal:
                top.close()
        # Other shortcuts are delivered to the application via its
        # shortcut table (see repro.apps.base.Application.handle_shortcut).
        top = self.desktop.top_window()
        app = getattr(top, "application", None) if top is not None else None
        if app is not None:
            app.handle_shortcut(shortcut)
        return shortcut

    # ------------------------------------------------------------------
    def _record(self, kind: str, target: Optional[UIElement], **detail) -> None:
        self.log.append(
            InputLogEntry(kind=kind, target=target.name if target is not None else None,
                          detail=dict(detail))
        )

    @property
    def action_count(self) -> int:
        """Number of delivered low-level input actions."""
        return len(self.log)


def _owning_scrollbar(element: UIElement) -> Optional[ScrollBarControl]:
    node: Optional[UIElement] = element
    while node is not None:
        if isinstance(node, ScrollBarControl):
            return node
        node = node.parent
    return None
