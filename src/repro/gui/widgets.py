"""Widget toolkit built on top of the UIA element model.

Every widget *is* a :class:`repro.uia.element.UIElement` (subclass) carrying
the appropriate UIA control type and control patterns.  Widgets implement the
imperative GUI behaviour that makes applications navigable:

* a :class:`TabItem` reveals its panel when selected;
* a :class:`MenuItem` with a sub-menu expands it when clicked;
* a :class:`ComboBox` drops down its item list;
* a :class:`Button` can open dialogs or mutate application state via its
  ``on_click`` callback.

The :meth:`Widget.activate` method is the single entry point used by the
input simulator: it dispatches a "primitive interaction" (a click) to the
widget-appropriate pattern.  This is exactly the behaviour DMI's ``visit``
executor relies on when it performs the primitive interaction at the end of a
navigation path.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.uia.control_types import ControlType
from repro.uia.element import BoundingRect, UIElement, notify_ui_change
from repro.uia.patterns import (
    ExpandCollapsePattern,
    ExpandCollapseState,
    GridItemPattern,
    GridPattern,
    InvokePattern,
    LegacyAccessiblePattern,
    PatternId,
    RangeValuePattern,
    ScrollPattern,
    SelectionItemPattern,
    SelectionPattern,
    TextPattern,
    TogglePattern,
    ToggleState,
    ValuePattern,
    WindowPattern,
)

Callback = Optional[Callable[[], None]]


class Widget(UIElement):
    """Base class for all widgets."""

    DEFAULT_CONTROL_TYPE = ControlType.CUSTOM

    def __init__(
        self,
        name: str = "",
        automation_id: str = "",
        description: str = "",
        control_type: Optional[ControlType] = None,
        enabled: bool = True,
        visible: bool = True,
    ) -> None:
        super().__init__(
            name=name,
            control_type=control_type or self.DEFAULT_CONTROL_TYPE,
            automation_id=automation_id,
            description=description,
            enabled=enabled,
            visible=visible,
        )
        if description:
            self.add_pattern(LegacyAccessiblePattern(self, description=description))

    # ------------------------------------------------------------------
    def activate(self) -> None:
        """Perform the widget's primitive interaction (a single click).

        The default dispatch order mirrors how a real click is interpreted by
        UIA providers: Invoke > SelectionItem > Toggle > ExpandCollapse.
        Widgets override this when a click means something more specific.
        """
        invoke = self.get_pattern(PatternId.INVOKE)
        if invoke is not None:
            invoke.invoke()
            return
        selection_item = self.get_pattern(PatternId.SELECTION_ITEM)
        if selection_item is not None:
            selection_item.select()
            return
        toggle = self.get_pattern(PatternId.TOGGLE)
        if toggle is not None:
            toggle.toggle()
            return
        expand = self.get_pattern(PatternId.EXPAND_COLLAPSE)
        if expand is not None:
            if expand.state == ExpandCollapseState.EXPANDED:
                expand.collapse()
            else:
                expand.expand()
            return
        # A click on an inert widget (Pane/Text) has no effect.


# ----------------------------------------------------------------------
# structural containers
# ----------------------------------------------------------------------
class Pane(Widget):
    DEFAULT_CONTROL_TYPE = ControlType.PANE


class Group(Widget):
    DEFAULT_CONTROL_TYPE = ControlType.GROUP


class ToolBar(Widget):
    DEFAULT_CONTROL_TYPE = ControlType.TOOL_BAR


class StatusBar(Widget):
    DEFAULT_CONTROL_TYPE = ControlType.STATUS_BAR


class TextLabel(Widget):
    DEFAULT_CONTROL_TYPE = ControlType.TEXT

    def __init__(self, text: str, **kwargs) -> None:
        super().__init__(name=text, **kwargs)
        self.text = text


class Hyperlink(Widget):
    DEFAULT_CONTROL_TYPE = ControlType.HYPERLINK

    def __init__(self, name: str, on_click: Callback = None, **kwargs) -> None:
        super().__init__(name=name, **kwargs)
        self.add_pattern(InvokePattern(self, on_invoke=on_click))


# ----------------------------------------------------------------------
# buttons and toggles
# ----------------------------------------------------------------------
class Button(Widget):
    """A push button; ``on_click`` mutates application state or opens UI."""

    DEFAULT_CONTROL_TYPE = ControlType.BUTTON

    def __init__(self, name: str, on_click: Callback = None, **kwargs) -> None:
        super().__init__(name=name, **kwargs)
        self._on_click = on_click
        self.add_pattern(InvokePattern(self, on_invoke=self._handle_click))

    def _handle_click(self) -> None:
        if self._on_click is not None:
            self._on_click()

    def set_on_click(self, callback: Callback) -> None:
        self._on_click = callback


class SplitButton(Button):
    """A button with an attached drop-down of variants.

    A click both runs the button's own callback (if any) and expands the
    drop-down, revealing the child controls — this is the navigation step the
    ripper captures as outgoing edges.
    """

    DEFAULT_CONTROL_TYPE = ControlType.SPLIT_BUTTON

    def __init__(self, name: str, on_click: Callback = None, **kwargs) -> None:
        super().__init__(name=name, on_click=on_click, **kwargs)
        self._expand = self.add_pattern(
            ExpandCollapsePattern(self, on_expand=self._show_children, on_collapse=self._hide_children)
        )

    def _show_children(self) -> None:
        for child in self.children:
            child.visible = True

    def _hide_children(self) -> None:
        for child in self.children:
            child.visible = False

    def add_child(self, child: UIElement, index: Optional[int] = None) -> UIElement:
        child = super().add_child(child, index)
        child.visible = self._expand.state == ExpandCollapseState.EXPANDED
        return child

    def _handle_click(self) -> None:
        super()._handle_click()
        if self._expand.state == ExpandCollapseState.EXPANDED:
            self._expand.collapse()
        else:
            self._expand.expand()


class CheckBox(Widget):
    DEFAULT_CONTROL_TYPE = ControlType.CHECK_BOX

    def __init__(
        self,
        name: str,
        checked: bool = False,
        on_change: Optional[Callable[[bool], None]] = None,
        **kwargs,
    ) -> None:
        super().__init__(name=name, **kwargs)
        self._on_change = on_change
        self._toggle = self.add_pattern(
            TogglePattern(
                self,
                state=ToggleState.ON if checked else ToggleState.OFF,
                on_change=self._handle_change,
            )
        )

    def _handle_change(self, state: ToggleState) -> None:
        if self._on_change is not None:
            self._on_change(state == ToggleState.ON)

    @property
    def checked(self) -> bool:
        return self._toggle.state == ToggleState.ON

    def set_checked(self, value: bool) -> None:
        self._toggle.set_state(ToggleState.ON if value else ToggleState.OFF)


class RadioButton(Widget):
    DEFAULT_CONTROL_TYPE = ControlType.RADIO_BUTTON

    def __init__(
        self,
        name: str,
        selected: bool = False,
        on_select: Optional[Callable[[bool], None]] = None,
        **kwargs,
    ) -> None:
        super().__init__(name=name, **kwargs)
        self._item = self.add_pattern(
            SelectionItemPattern(self, is_selected=selected, on_select=on_select)
        )

    @property
    def selected(self) -> bool:
        return self._item.is_selected


# ----------------------------------------------------------------------
# tabs
# ----------------------------------------------------------------------
class TabControl(Widget):
    """A tab strip; each :class:`TabItem` owns a content panel."""

    DEFAULT_CONTROL_TYPE = ControlType.TAB

    def __init__(self, name: str = "Tabs", **kwargs) -> None:
        super().__init__(name=name, **kwargs)
        self.add_pattern(SelectionPattern(self, can_select_multiple=False))

    def add_tab(self, tab: "TabItem") -> "TabItem":
        self.add_child(tab)
        return tab

    def tabs(self) -> List["TabItem"]:
        return [c for c in self.children if isinstance(c, TabItem)]

    def selected_tab(self) -> Optional["TabItem"]:
        for tab in self.tabs():
            if tab.is_selected:
                return tab
        return None


class TabItem(Widget):
    """A tab header; selecting it reveals its panel and hides siblings'."""

    DEFAULT_CONTROL_TYPE = ControlType.TAB_ITEM

    def __init__(
        self,
        name: str,
        panel: Optional[UIElement] = None,
        on_select: Callback = None,
        **kwargs,
    ) -> None:
        super().__init__(name=name, **kwargs)
        self.panel = panel
        self._on_select = on_select
        self._item = self.add_pattern(
            SelectionItemPattern(self, is_selected=False, on_select=self._handle_select)
        )
        if panel is not None:
            panel.visible = False

    @property
    def is_selected(self) -> bool:
        return self._item.is_selected

    def attach_panel(self, panel: UIElement) -> UIElement:
        self.panel = panel
        panel.visible = self._item.is_selected
        return panel

    def _handle_select(self, selected: bool) -> None:
        if self.panel is not None:
            self.panel.visible = selected
        if selected:
            notify_ui_change(self, "tab_activated")
        if selected and self._on_select is not None:
            self._on_select()

    def select(self) -> None:
        self._item.select()


# ----------------------------------------------------------------------
# menus
# ----------------------------------------------------------------------
class Menu(Widget):
    DEFAULT_CONTROL_TYPE = ControlType.MENU


class MenuItem(Widget):
    """A menu entry; with a sub-menu it expands, otherwise it invokes."""

    DEFAULT_CONTROL_TYPE = ControlType.MENU_ITEM

    def __init__(self, name: str, on_click: Callback = None, **kwargs) -> None:
        super().__init__(name=name, **kwargs)
        self._on_click = on_click
        self.submenu: Optional[Menu] = None
        self.add_pattern(InvokePattern(self, on_invoke=self._handle_click))
        self._expand = self.add_pattern(
            ExpandCollapsePattern(
                self,
                state=ExpandCollapseState.LEAF_NODE,
                on_expand=self._show_submenu,
                on_collapse=self._hide_submenu,
            )
        )

    def attach_submenu(self, submenu: Menu) -> Menu:
        self.submenu = submenu
        self.add_child(submenu)
        submenu.visible = False
        self._expand.state = ExpandCollapseState.COLLAPSED
        return submenu

    def _show_submenu(self) -> None:
        if self.submenu is not None:
            self.submenu.visible = True

    def _hide_submenu(self) -> None:
        if self.submenu is not None:
            self.submenu.visible = False

    def _handle_click(self) -> None:
        if self.submenu is not None:
            if self._expand.state == ExpandCollapseState.EXPANDED:
                self._expand.collapse()
            else:
                self._expand.expand()
        if self._on_click is not None:
            self._on_click()

    def activate(self) -> None:
        # A click always goes through the invoke handler so that sub-menu
        # expansion and the click callback stay consistent.
        self.get_pattern(PatternId.INVOKE).invoke()


# ----------------------------------------------------------------------
# lists, combo boxes, galleries
# ----------------------------------------------------------------------
class ListBox(Widget):
    DEFAULT_CONTROL_TYPE = ControlType.LIST

    def __init__(self, name: str = "", multi_select: bool = False, **kwargs) -> None:
        super().__init__(name=name, **kwargs)
        self.add_pattern(SelectionPattern(self, can_select_multiple=multi_select))

    def add_item(self, item: "ListItemControl") -> "ListItemControl":
        self.add_child(item)
        return item

    def items(self) -> List["ListItemControl"]:
        return [c for c in self.children if isinstance(c, ListItemControl)]

    def selected_items(self) -> List["ListItemControl"]:
        return [i for i in self.items() if i.is_selected]


class ListItemControl(Widget):
    DEFAULT_CONTROL_TYPE = ControlType.LIST_ITEM

    def __init__(self, name: str, on_select: Callback = None, **kwargs) -> None:
        super().__init__(name=name, **kwargs)
        self._on_select = on_select
        self._item = self.add_pattern(
            SelectionItemPattern(self, is_selected=False, on_select=self._handle_select)
        )

    @property
    def is_selected(self) -> bool:
        return self._item.is_selected

    def _handle_select(self, selected: bool) -> None:
        if selected and self._on_select is not None:
            self._on_select()


class Gallery(ListBox):
    """A grid-like gallery of choices (colour cells, themes, styles).

    Galleries are modelled as lists; each cell invokes a callback carrying the
    choice value.  This is the structure behind the paper's "colour picker
    reachable via Font / Outline / Underline paths" example: the same gallery
    subtree hangs below several navigation parents, so it becomes a merge node
    in the UNG and eventually a shared subtree in the forest.
    """

    def __init__(self, name: str, choices: Sequence[str],
                 on_choice: Optional[Callable[[str], None]] = None, **kwargs) -> None:
        super().__init__(name=name, **kwargs)
        self._on_choice = on_choice
        for choice in choices:
            self.add_item(GalleryCell(choice, gallery=self))

    def choose(self, value: str) -> None:
        if self._on_choice is not None:
            self._on_choice(value)


class GalleryCell(ListItemControl):
    """A single selectable cell of a gallery."""

    def __init__(self, name: str, gallery: Gallery, **kwargs) -> None:
        super().__init__(name=name, **kwargs)
        self._gallery = gallery
        self.add_pattern(InvokePattern(self, on_invoke=self._choose))

    def _choose(self) -> None:
        self._item.select()
        self._gallery.choose(self.name)

    def activate(self) -> None:
        self.get_pattern(PatternId.INVOKE).invoke()


class ComboBox(Widget):
    """Drop-down with a value; expanding reveals its items."""

    DEFAULT_CONTROL_TYPE = ControlType.COMBO_BOX

    def __init__(
        self,
        name: str,
        choices: Sequence[str] = (),
        value: str = "",
        on_change: Optional[Callable[[str], None]] = None,
        **kwargs,
    ) -> None:
        super().__init__(name=name, **kwargs)
        self._on_change = on_change
        self._value = self.add_pattern(ValuePattern(self, value=value, on_change=self._changed))
        self._expand = self.add_pattern(
            ExpandCollapsePattern(self, on_expand=self._show_items, on_collapse=self._hide_items)
        )
        self._list = ListBox(name=f"{name} items", automation_id=f"{self.automation_id}_items")
        self.add_child(self._list)
        self._list.visible = False
        for choice in choices:
            self.add_choice(choice)

    @property
    def value(self) -> str:
        return self._value.value

    def add_choice(self, choice: str) -> ListItemControl:
        item = ListItemControl(choice, on_select=lambda c=choice: self._value.set_value(c))
        item.visible = False
        self._list.add_item(item)
        return item

    def choices(self) -> List[str]:
        return [i.name for i in self._list.items()]

    def _changed(self, value: str) -> None:
        if self._on_change is not None:
            self._on_change(value)

    def _show_items(self) -> None:
        self._list.visible = True
        for item in self._list.items():
            item.visible = True

    def _hide_items(self) -> None:
        self._list.visible = False
        for item in self._list.items():
            item.visible = False

    def set_value(self, value: str) -> None:
        self._value.set_value(value)


# ----------------------------------------------------------------------
# text input
# ----------------------------------------------------------------------
class Edit(Widget):
    """A single- or multi-line text entry field."""

    DEFAULT_CONTROL_TYPE = ControlType.EDIT

    def __init__(
        self,
        name: str,
        value: str = "",
        on_change: Optional[Callable[[str], None]] = None,
        on_commit: Optional[Callable[[str], None]] = None,
        requires_enter_to_commit: bool = False,
        **kwargs,
    ) -> None:
        super().__init__(name=name, **kwargs)
        self._on_commit = on_commit
        self.requires_enter_to_commit = requires_enter_to_commit
        self._value = self.add_pattern(ValuePattern(self, value=value, on_change=on_change))
        self.add_pattern(TextPattern(self, provider=None))
        self.text = value

    @property
    def value(self) -> str:
        return self._value.value

    def set_text(self, text: str) -> None:
        """Type text into the field (replaces current content)."""
        self._value.set_value(text)
        self.text = text
        notify_ui_change(self, "property_changed")
        if not self.requires_enter_to_commit:
            self.commit()

    def append_text(self, text: str) -> None:
        self.set_text(self.value + text)

    def commit(self) -> None:
        """Commit the current value (e.g. the user pressed ENTER)."""
        if self._on_commit is not None:
            self._on_commit(self.value)


class DocumentControl(Widget):
    """A document surface exposing TextPattern over an application provider."""

    DEFAULT_CONTROL_TYPE = ControlType.DOCUMENT

    def __init__(self, name: str, provider=None, **kwargs) -> None:
        super().__init__(name=name, **kwargs)
        self.provider = provider
        self.add_pattern(TextPattern(self, provider=provider))
        self.add_pattern(ScrollPattern(self, horizontal=0.0, vertical=0.0))


# ----------------------------------------------------------------------
# range-valued widgets
# ----------------------------------------------------------------------
class Slider(Widget):
    DEFAULT_CONTROL_TYPE = ControlType.SLIDER

    def __init__(self, name: str, value: float = 0.0, minimum: float = 0.0,
                 maximum: float = 100.0, on_change: Optional[Callable[[float], None]] = None,
                 **kwargs) -> None:
        super().__init__(name=name, **kwargs)
        self._range = self.add_pattern(
            RangeValuePattern(self, value=value, minimum=minimum, maximum=maximum,
                              on_change=on_change)
        )

    @property
    def value(self) -> float:
        return self._range.value

    def set_value(self, value: float) -> None:
        self._range.set_value(value)


class Spinner(Widget):
    DEFAULT_CONTROL_TYPE = ControlType.SPINNER

    def __init__(self, name: str, value: float = 0.0, minimum: float = 0.0,
                 maximum: float = 100.0, step: float = 1.0,
                 on_change: Optional[Callable[[float], None]] = None, **kwargs) -> None:
        super().__init__(name=name, **kwargs)
        self._range = self.add_pattern(
            RangeValuePattern(self, value=value, minimum=minimum, maximum=maximum,
                              small_change=step, on_change=on_change)
        )
        self.add_pattern(ValuePattern(self, value=str(value),
                                      on_change=lambda v: self._range.set_value(float(v))))

    @property
    def value(self) -> float:
        return self._range.value

    def increment(self) -> None:
        self._range.set_value(self._range.value + self._range.small_change)

    def decrement(self) -> None:
        self._range.set_value(self._range.value - self._range.small_change)

    def set_value(self, value: float) -> None:
        self._range.set_value(value)


class ScrollBarControl(Widget):
    """A scrollbar; dragging its thumb (imperative) or setting its position
    (declarative) scrolls the associated viewport."""

    DEFAULT_CONTROL_TYPE = ControlType.SCROLL_BAR

    def __init__(self, name: str, orientation: str = "vertical",
                 on_scroll: Optional[Callable[[float], None]] = None, **kwargs) -> None:
        super().__init__(name=name, **kwargs)
        self.orientation = orientation
        self._on_scroll = on_scroll
        horizontal = 0.0 if orientation == "horizontal" else ScrollPattern.NO_SCROLL
        vertical = 0.0 if orientation == "vertical" else ScrollPattern.NO_SCROLL
        self._scroll = self.add_pattern(
            ScrollPattern(self, horizontal=horizontal, vertical=vertical,
                          on_scroll=self._scrolled)
        )
        self._range = self.add_pattern(RangeValuePattern(self, value=0.0))

    @property
    def position(self) -> float:
        if self.orientation == "horizontal":
            return self._scroll.horizontal_percent
        return self._scroll.vertical_percent

    def set_position(self, percent: float) -> None:
        if self.orientation == "horizontal":
            self._scroll.set_scroll_percent(percent, None)
        else:
            self._scroll.set_scroll_percent(None, percent)

    def _scrolled(self, horizontal: float, vertical: float) -> None:
        position = horizontal if self.orientation == "horizontal" else vertical
        self._range.set_value(position)
        if self._on_scroll is not None:
            self._on_scroll(position)


# ----------------------------------------------------------------------
# data grids and trees
# ----------------------------------------------------------------------
class DataGrid(Widget):
    """A two-dimensional grid of :class:`DataItem` cells (spreadsheet view)."""

    DEFAULT_CONTROL_TYPE = ControlType.DATA_GRID

    def __init__(self, name: str, rows: int, columns: int,
                 cell_factory: Optional[Callable[[int, int], "DataItem"]] = None,
                 **kwargs) -> None:
        super().__init__(name=name, **kwargs)
        self.rows = rows
        self.columns = columns
        self._cells: List[List[DataItem]] = []
        factory = cell_factory or (lambda r, c: DataItem(name=f"R{r+1}C{c+1}", row=r, column=c))
        for row in range(rows):
            row_cells = []
            for column in range(columns):
                cell = factory(row, column)
                self.add_child(cell)
                row_cells.append(cell)
            self._cells.append(row_cells)
        self.add_pattern(GridPattern(self, row_count=rows, column_count=columns,
                                     get_item=self.cell))
        self.add_pattern(SelectionPattern(self, can_select_multiple=True))
        self.add_pattern(ScrollPattern(self, horizontal=0.0, vertical=0.0))

    def cell(self, row: int, column: int) -> "DataItem":
        return self._cells[row][column]

    def all_cells(self) -> List["DataItem"]:
        return [cell for row in self._cells for cell in row]


class DataItem(Widget):
    """A cell in a data grid; exposes Value, Text, GridItem and SelectionItem."""

    DEFAULT_CONTROL_TYPE = ControlType.DATA_ITEM

    def __init__(self, name: str, row: int = 0, column: int = 0, value: str = "",
                 on_change: Optional[Callable[[str], None]] = None,
                 on_select: Optional[Callable[[bool], None]] = None, **kwargs) -> None:
        super().__init__(name=name, **kwargs)
        self.row = row
        self.column = column
        self._value = self.add_pattern(ValuePattern(self, value=value, on_change=on_change))
        self.add_pattern(TextPattern(self, provider=None))
        self.add_pattern(GridItemPattern(self, row=row, column=column))
        self._item = self.add_pattern(SelectionItemPattern(self, on_select=on_select))
        self.text = value

    @property
    def value(self) -> str:
        return self._value.value

    def set_value(self, value: str) -> None:
        self._value.set_value(value)
        self.text = self._value.value
        notify_ui_change(self, "property_changed")

    def set_display_value(self, value: str) -> None:
        """Update the displayed value without firing the edit callback.

        Used when the application mirrors model state into the grid (the
        change originated in the model, not in user input).
        """
        self._value.value = str(value)
        self.text = str(value)

    @property
    def is_selected(self) -> bool:
        return self._item.is_selected

    def set_selected(self, value: bool) -> None:
        self._item._set_selected(value)

    def set_selected_display(self, value: bool) -> None:
        """Mirror a selection made in the model without firing the selection
        callback (used when the application syncs model state into the grid)."""
        self._item.is_selected = value


class TreeControl(Widget):
    DEFAULT_CONTROL_TYPE = ControlType.TREE

    def __init__(self, name: str = "", **kwargs) -> None:
        super().__init__(name=name, **kwargs)
        self.add_pattern(SelectionPattern(self, can_select_multiple=False))


class TreeItemControl(Widget):
    DEFAULT_CONTROL_TYPE = ControlType.TREE_ITEM

    def __init__(self, name: str, on_select: Callback = None, **kwargs) -> None:
        super().__init__(name=name, **kwargs)
        self._on_select = on_select
        self._item = self.add_pattern(
            SelectionItemPattern(self, on_select=lambda s: on_select() if s and on_select else None)
        )
        self._expand = self.add_pattern(
            ExpandCollapsePattern(self, state=ExpandCollapseState.LEAF_NODE,
                                  on_expand=self._show_children, on_collapse=self._hide_children)
        )

    def add_child(self, child: UIElement, index: Optional[int] = None) -> UIElement:
        child = super().add_child(child, index)
        if isinstance(child, TreeItemControl):
            child.visible = False
            self._expand.state = ExpandCollapseState.COLLAPSED
        return child

    def _show_children(self) -> None:
        for child in self.children:
            child.visible = True

    def _hide_children(self) -> None:
        for child in self.children:
            child.visible = False

    @property
    def is_selected(self) -> bool:
        return self._item.is_selected


# ----------------------------------------------------------------------
# windows
# ----------------------------------------------------------------------
class Window(Widget):
    """A top-level window; the root of an accessibility subtree."""

    DEFAULT_CONTROL_TYPE = ControlType.WINDOW

    def __init__(self, title: str, is_modal: bool = False,
                 on_close: Callback = None, **kwargs) -> None:
        super().__init__(name=title, **kwargs)
        self._user_on_close = on_close
        self._window = self.add_pattern(
            WindowPattern(self, is_modal=is_modal, on_close=self._handle_close)
        )
        self.desktop = None  # set by Desktop.open_window
        self.process_id: Optional[int] = None

    @property
    def is_modal(self) -> bool:
        return self._window.is_modal

    @property
    def is_open(self) -> bool:
        return self._window.is_open

    def close(self) -> None:
        self._window.close()

    def _handle_close(self) -> None:
        if self._user_on_close is not None:
            self._user_on_close()
        if self.desktop is not None:
            self.desktop.notify_window_closed(self)


class Dialog(Window):
    """A modal dialog with conventional OK / Cancel / Close buttons.

    The executor's "closing priority" (OK > Close > Cancel, paper §4.3)
    operates on the buttons created here.
    """

    def __init__(self, title: str, on_ok: Callback = None, on_cancel: Callback = None,
                 with_buttons: bool = True, **kwargs) -> None:
        super().__init__(title, is_modal=True, **kwargs)
        self._on_ok = on_ok
        self._on_cancel = on_cancel
        self.ok_button: Optional[Button] = None
        self.cancel_button: Optional[Button] = None
        self.close_button: Optional[Button] = None
        if with_buttons:
            self._build_buttons()

    def _build_buttons(self) -> None:
        footer = Group(name="Dialog buttons", automation_id=f"{self.name}.buttons")
        self.add_child(footer)
        self.ok_button = Button("OK", on_click=self._ok, automation_id=f"{self.name}.OK")
        self.cancel_button = Button("Cancel", on_click=self._cancel,
                                    automation_id=f"{self.name}.Cancel")
        self.close_button = Button("Close", on_click=self._cancel,
                                   automation_id=f"{self.name}.Close")
        footer.add_children([self.ok_button, self.cancel_button, self.close_button])

    def _ok(self) -> None:
        if self._on_ok is not None:
            self._on_ok()
        self.close()

    def _cancel(self) -> None:
        if self._on_cancel is not None:
            self._on_cancel()
        self.close()
