"""Ribbon/menu/dialog construction helpers.

The Office-like applications in :mod:`repro.apps` share a common UI
vocabulary: a ribbon of tabs, each containing groups of controls, drop-down
galleries (colours, styles, fonts), and modal dialogs with nested tabs.  The
builders here produce those structures out of the widget toolkit, keeping the
application modules focused on wiring UI to application state.

Structurally, the ribbons produced here exhibit the properties the paper
leans on: deep navigation (tab -> group -> split button -> menu -> gallery ->
cell), *merge nodes* (the same colour gallery reachable from several parents,
with path-dependent semantics), and *cycles* (dialogs returning to the main
window), which is exactly what the UNG-to-forest transformation has to cope
with.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.gui.widgets import (
    Button,
    CheckBox,
    ComboBox,
    Dialog,
    Edit,
    Gallery,
    Group,
    Menu,
    MenuItem,
    Pane,
    RadioButton,
    Spinner,
    SplitButton,
    TabControl,
    TabItem,
    Window,
)

#: The "theme" colour names used by colour pickers across the simulated apps.
THEME_COLORS: Sequence[str] = (
    "White", "Black", "Dark Gray", "Gray", "Light Gray",
    "Dark Blue", "Blue", "Light Blue", "Dark Red", "Red",
    "Orange", "Gold", "Yellow", "Light Green", "Green",
    "Dark Green", "Teal", "Cyan", "Purple", "Violet",
)

#: Standard colours (a second row, as in Office colour pickers).
STANDARD_COLORS: Sequence[str] = (
    "Standard Dark Red", "Standard Red", "Standard Orange", "Standard Yellow",
    "Standard Light Green", "Standard Green", "Standard Light Blue",
    "Standard Blue", "Standard Dark Blue", "Standard Purple",
)

#: Font families offered by font combo boxes (a large enumeration the core
#: topology intentionally prunes, paper §3.3 "Query on demand").
FONT_FAMILIES: Sequence[str] = (
    "Calibri", "Cambria", "Candara", "Consolas", "Constantia", "Corbel",
    "Arial", "Arial Black", "Arial Narrow", "Bahnschrift", "Book Antiqua",
    "Bookman Old Style", "Calisto MT", "Century", "Century Gothic",
    "Comic Sans MS", "Courier New", "Franklin Gothic", "Gabriola", "Garamond",
    "Georgia", "Gill Sans MT", "Helvetica", "Impact", "Lucida Console",
    "Lucida Sans", "Malgun Gothic", "Microsoft YaHei", "MingLiU", "Palatino",
    "Rockwell", "Segoe Print", "Segoe Script", "Segoe UI", "SimSun",
    "Sitka", "Sylfaen", "Tahoma", "Times New Roman", "Trebuchet MS",
    "Tw Cen MT", "Verdana", "Yu Gothic",
)

#: Font sizes offered by size combo boxes.
FONT_SIZES: Sequence[str] = (
    "8", "9", "10", "10.5", "11", "12", "14", "16", "18", "20",
    "22", "24", "26", "28", "36", "48", "72",
)

ChoiceCallback = Callable[[str], None]


class RibbonBuilder:
    """Builds a ribbon (a :class:`TabControl` plus per-tab panels).

    Parameters
    ----------
    window:
        The window the ribbon is installed into.
    app_name:
        Used to derive automation ids (``Word.Ribbon.Home`` etc.).
    """

    def __init__(self, window: Window, app_name: str) -> None:
        self.window = window
        self.app_name = app_name
        self.ribbon = TabControl(name="Ribbon", automation_id=f"{app_name}.Ribbon")
        window.add_child(self.ribbon)
        self.panels: Dict[str, Pane] = {}
        self.tabs: Dict[str, TabItem] = {}

    def add_tab(self, title: str, description: str = "", visible: bool = True,
                on_select: Optional[Callable[[], None]] = None) -> Pane:
        """Add a ribbon tab and return its content panel."""
        panel = Pane(name=f"{title} panel", automation_id=f"{self.app_name}.{title}.Panel")
        tab = TabItem(
            name=title,
            automation_id=f"{self.app_name}.Tab.{title}",
            description=description or f"{title} ribbon tab",
            panel=panel,
            on_select=on_select,
        )
        tab.visible = visible
        self.ribbon.add_tab(tab)
        self.window.add_child(panel)
        self.panels[title] = panel
        self.tabs[title] = tab
        return panel

    def add_group(self, tab_title: str, group_title: str, description: str = "") -> Group:
        """Add a command group to a previously created tab panel."""
        panel = self.panels[tab_title]
        group = Group(
            name=group_title,
            automation_id=f"{self.app_name}.{tab_title}.{group_title}",
            description=description or f"{group_title} group on the {tab_title} tab",
        )
        panel.add_child(group)
        return group

    def select_tab(self, title: str) -> None:
        self.tabs[title].select()

    def selected_tab_title(self) -> Optional[str]:
        tab = self.ribbon.selected_tab()
        return tab.name if tab is not None else None


# ----------------------------------------------------------------------
# drop-down / gallery builders
# ----------------------------------------------------------------------
def build_color_dropdown(
    name: str,
    on_choice: ChoiceCallback,
    automation_id: str = "",
    description: str = "",
    include_more_colors: bool = True,
    extra_items: Sequence[str] = (),
) -> SplitButton:
    """Build a colour drop-down (split button revealing colour galleries).

    Several of these are installed across the apps with *different callbacks*
    (font colour, outline colour, underline colour, fill colour...), creating
    the path-dependent merge-node situation discussed in the paper
    (Challenge #1).
    """
    dropdown = SplitButton(
        name,
        automation_id=automation_id or name.replace(" ", ""),
        description=description or f"Choose a {name.lower()}",
    )
    theme = Gallery(
        name="Theme Colors",
        automation_id=f"{dropdown.automation_id}.ThemeColors",
        choices=THEME_COLORS,
        on_choice=on_choice,
    )
    standard = Gallery(
        name="Standard Colors",
        automation_id=f"{dropdown.automation_id}.StandardColors",
        choices=STANDARD_COLORS,
        on_choice=on_choice,
    )
    dropdown.add_child(theme)
    dropdown.add_child(standard)
    for extra in extra_items:
        dropdown.add_child(Button(extra, on_click=lambda value=extra: on_choice(value),
                                  automation_id=f"{dropdown.automation_id}.{extra.replace(' ', '')}"))
    if include_more_colors:
        dropdown.add_child(
            Button(
                "More Colors...",
                automation_id=f"{dropdown.automation_id}.MoreColors",
                description="Open the custom colors dialog",
                on_click=lambda: on_choice("Custom"),
            )
        )
    return dropdown


def build_menu_button(name: str, items: Dict[str, Callable[[], None]],
                      automation_id: str = "", description: str = "") -> SplitButton:
    """A drop-down button whose menu items invoke callbacks."""
    dropdown = SplitButton(
        name,
        automation_id=automation_id or name.replace(" ", ""),
        description=description,
    )
    menu = Menu(name=f"{name} menu", automation_id=f"{dropdown.automation_id}.Menu")
    dropdown.add_child(menu)
    for label, callback in items.items():
        menu.add_child(
            MenuItem(label, on_click=callback,
                     automation_id=f"{dropdown.automation_id}.{label.replace(' ', '')}")
        )
    return dropdown


def build_gallery_button(name: str, choices: Sequence[str], on_choice: ChoiceCallback,
                         automation_id: str = "", description: str = "") -> SplitButton:
    """A drop-down button revealing a gallery of named choices."""
    dropdown = SplitButton(
        name,
        automation_id=automation_id or name.replace(" ", ""),
        description=description,
    )
    gallery = Gallery(
        name=f"{name} gallery",
        automation_id=f"{dropdown.automation_id}.Gallery",
        choices=choices,
        on_choice=on_choice,
    )
    dropdown.add_child(gallery)
    return dropdown


def build_font_controls(prefix: str, on_font: ChoiceCallback, on_size: ChoiceCallback) -> List:
    """The Font-name and Font-size combo boxes shared by all three apps."""
    font_box = ComboBox(
        "Font",
        automation_id=f"{prefix}.FontName",
        description="Set the font family of the selection",
        choices=FONT_FAMILIES,
        value="Calibri",
        on_change=on_font,
    )
    size_box = ComboBox(
        "Font Size",
        automation_id=f"{prefix}.FontSize",
        description="Set the font size of the selection",
        choices=FONT_SIZES,
        value="11",
        on_change=on_size,
    )
    return [font_box, size_box]


# ----------------------------------------------------------------------
# dialog builders
# ----------------------------------------------------------------------
class DialogBuilder:
    """Helper for building modal dialogs with tabs, fields and radio groups."""

    def __init__(self, title: str, on_ok: Optional[Callable[[], None]] = None,
                 on_cancel: Optional[Callable[[], None]] = None) -> None:
        self.dialog = Dialog(title, on_ok=on_ok, on_cancel=on_cancel)
        self._tabs: Optional[TabControl] = None

    def add_tab(self, title: str) -> Pane:
        """Add a nested tab to the dialog and return its panel."""
        if self._tabs is None:
            self._tabs = TabControl(name=f"{self.dialog.name} tabs",
                                    automation_id=f"{self.dialog.name}.Tabs")
            self.dialog.add_child(self._tabs)
        panel = Pane(name=f"{title} page", automation_id=f"{self.dialog.name}.{title}.Page")
        tab = TabItem(name=title, automation_id=f"{self.dialog.name}.Tab.{title}", panel=panel)
        self._tabs.add_tab(tab)
        self.dialog.add_child(panel)
        return panel

    def add_edit(self, parent, label: str, value: str = "",
                 on_commit: Optional[Callable[[str], None]] = None,
                 requires_enter: bool = False) -> Edit:
        edit = Edit(
            label,
            automation_id=f"{self.dialog.name}.{label.replace(' ', '')}",
            value=value,
            on_commit=on_commit,
            requires_enter_to_commit=requires_enter,
        )
        parent.add_child(edit)
        return edit

    def add_checkbox(self, parent, label: str, checked: bool = False,
                     on_change: Optional[Callable[[bool], None]] = None) -> CheckBox:
        box = CheckBox(label, checked=checked, on_change=on_change,
                       automation_id=f"{self.dialog.name}.{label.replace(' ', '')}")
        parent.add_child(box)
        return box

    def add_radio_group(self, parent, group_label: str, options: Sequence[str],
                        on_select: ChoiceCallback) -> Group:
        group = Group(name=group_label,
                      automation_id=f"{self.dialog.name}.{group_label.replace(' ', '')}")
        parent.add_child(group)
        for option in options:
            group.add_child(
                RadioButton(option,
                            automation_id=f"{group.automation_id}.{option.replace(' ', '')}",
                            on_select=lambda sel, value=option: on_select(value) if sel else None)
            )
        return group

    def add_spinner(self, parent, label: str, value: float = 0.0, minimum: float = 0.0,
                    maximum: float = 100.0,
                    on_change: Optional[Callable[[float], None]] = None) -> Spinner:
        spinner = Spinner(label, value=value, minimum=minimum, maximum=maximum,
                          on_change=on_change,
                          automation_id=f"{self.dialog.name}.{label.replace(' ', '')}")
        parent.add_child(spinner)
        return spinner

    def add_button(self, parent, label: str, on_click: Callable[[], None]) -> Button:
        button = Button(label, on_click=on_click,
                        automation_id=f"{self.dialog.name}.{label.replace(' ', '')}")
        parent.add_child(button)
        return button

    def add_combo(self, parent, label: str, choices: Sequence[str], value: str = "",
                  on_change: Optional[ChoiceCallback] = None) -> ComboBox:
        combo = ComboBox(label, choices=choices, value=value, on_change=on_change,
                         automation_id=f"{self.dialog.name}.{label.replace(' ', '')}")
        parent.add_child(combo)
        return combo

    def build(self) -> Dialog:
        return self.dialog
