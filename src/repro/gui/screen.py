"""Screen layout and hit-testing.

The simulated desktop needs *some* geometry so that imperative, coordinate-
based interaction (``click_on_coordinates``, ``drag_on_coordinates``) and the
LLM grounding-error model ("clicked a nearby control instead") have meaning.
A pixel-accurate layout engine is unnecessary for the paper's claims; what
matters is that

* every visible element gets a deterministic, non-overlapping rectangle,
* containers enclose their children,
* densely packed sibling controls are *close together* so a grounding error
  can plausibly land on a neighbour.

``ScreenLayout`` therefore performs a simple recursive tiling: each
container's visible children share its rectangle, split along the dominant
axis in document order.
"""

from __future__ import annotations

from typing import List, Optional

from repro.uia.element import BoundingRect, UIElement

#: Minimum size a leaf control is given, in pixels.
MIN_LEAF_WIDTH = 24.0
MIN_LEAF_HEIGHT = 16.0


class ScreenLayout:
    """Assigns bounding rectangles to visible elements of open windows."""

    def __init__(self, width: int = 1920, height: int = 1080) -> None:
        self.width = width
        self.height = height

    # ------------------------------------------------------------------
    def layout_windows(self, windows: List[UIElement]) -> None:
        """Lay out each open window; later windows are centred and smaller,
        mimicking dialogs stacked over the main window."""
        for index, window in enumerate(windows):
            if index == 0:
                rect = BoundingRect(0.0, 0.0, float(self.width), float(self.height))
            else:
                # Stack dialogs centred with a cascading offset.
                shrink = 0.55
                offset = 24.0 * index
                width = self.width * shrink
                height = self.height * shrink
                left = (self.width - width) / 2.0 + offset
                top = (self.height - height) / 2.0 + offset
                rect = BoundingRect(left, top, width, height)
            self.layout_element(window, rect)

    def layout_element(self, element: UIElement, rect: BoundingRect, depth: int = 0) -> None:
        """Recursively assign ``rect`` to ``element`` and tile its children."""
        element.rect = rect
        visible_children = [c for c in element.children if c.visible]
        if not visible_children:
            return
        horizontal = self._split_horizontally(rect, depth)
        count = len(visible_children)
        if horizontal:
            slot = max(rect.width / count, MIN_LEAF_WIDTH)
            for i, child in enumerate(visible_children):
                child_rect = BoundingRect(
                    rect.left + i * slot, rect.top, slot, max(rect.height, MIN_LEAF_HEIGHT)
                )
                self.layout_element(child, child_rect, depth + 1)
        else:
            slot = max(rect.height / count, MIN_LEAF_HEIGHT)
            for i, child in enumerate(visible_children):
                child_rect = BoundingRect(
                    rect.left, rect.top + i * slot, max(rect.width, MIN_LEAF_WIDTH), slot
                )
                self.layout_element(child, child_rect, depth + 1)

    @staticmethod
    def _split_horizontally(rect: BoundingRect, depth: int) -> bool:
        # Alternate split direction with depth, preferring the longer axis.
        if rect.width >= rect.height * 1.5:
            return True
        if rect.height >= rect.width * 1.5:
            return False
        return depth % 2 == 0

    # ------------------------------------------------------------------
    def hit_test(self, root: UIElement, x: float, y: float) -> Optional[UIElement]:
        """Deepest visible element of ``root``'s subtree containing (x, y)."""
        return hit_test(root, x, y)


def hit_test(root: UIElement, x: float, y: float) -> Optional[UIElement]:
    """Return the deepest visible descendant of ``root`` containing the point."""
    if not root.visible or not root.rect.contains(x, y):
        return None
    best: Optional[UIElement] = root
    # Walk down greedily: prefer the last child containing the point (later
    # siblings are drawn on top in document order).
    current = root
    while True:
        next_child = None
        for child in current.children:
            if child.visible and child.rect.contains(x, y):
                next_child = child
        if next_child is None:
            return best
        best = next_child
        current = next_child


def neighbours_of(element: UIElement, radius: float = 120.0) -> List[UIElement]:
    """Visible elements whose centres lie within ``radius`` pixels of ``element``.

    Used by the LLM grounding-error model to pick a plausible wrong target.
    """
    cx, cy = element.rect.center
    root = element.root()
    result = []
    stack = [root]
    while stack:
        node = stack.pop()
        if not node.visible:
            continue
        if node is not element and node.children == []:
            nx, ny = node.rect.center
            if abs(nx - cx) <= radius and abs(ny - cy) <= radius:
                result.append(node)
        stack.extend(node.children)
    return result
