"""A simulated desktop GUI runtime.

This package provides the widget toolkit, window manager, layout/hit-testing
and input simulation used by the Office-like applications in
:mod:`repro.apps`.  Everything here is exposed to the rest of the system
through the accessibility surface of :mod:`repro.uia`; nothing above the GUI
runtime (ripper, DMI, agents) touches widget internals directly.
"""

from repro.gui.widgets import (
    Button,
    CheckBox,
    ComboBox,
    DataGrid,
    DataItem,
    Dialog,
    DocumentControl,
    Edit,
    Gallery,
    Group,
    Hyperlink,
    ListBox,
    ListItemControl,
    Menu,
    MenuItem,
    Pane,
    RadioButton,
    ScrollBarControl,
    Slider,
    Spinner,
    SplitButton,
    StatusBar,
    TabControl,
    TabItem,
    TextLabel,
    ToolBar,
    TreeControl,
    TreeItemControl,
    Window,
)
from repro.gui.changes import UIChange, UIChangeBatch, UIChangeLog
from repro.gui.desktop import Desktop
from repro.gui.input import InputSimulator, Shortcut
from repro.gui.screen import ScreenLayout, hit_test

__all__ = [
    "Button",
    "CheckBox",
    "ComboBox",
    "DataGrid",
    "DataItem",
    "Desktop",
    "Dialog",
    "DocumentControl",
    "Edit",
    "Gallery",
    "Group",
    "Hyperlink",
    "InputSimulator",
    "ListBox",
    "ListItemControl",
    "Menu",
    "MenuItem",
    "Pane",
    "RadioButton",
    "ScreenLayout",
    "ScrollBarControl",
    "Shortcut",
    "Slider",
    "Spinner",
    "SplitButton",
    "StatusBar",
    "TabControl",
    "TabItem",
    "TextLabel",
    "ToolBar",
    "TreeControl",
    "TreeItemControl",
    "UIChange",
    "UIChangeBatch",
    "UIChangeLog",
    "Window",
    "hit_test",
]
