"""The UI-change event bus behind incremental ripping.

Real accessibility stacks do not re-walk an application's widget tree to
find out what changed — they subscribe to change events (UIA property /
structure-changed events; NVDA's PowerPoint module hooks the application's
``EApplication`` sink the same way).  This module is the reproduction's
equivalent: a bounded, monotonic log of *scoped* change notifications that
the incremental ripper consumes to decide which windows are dirty.

Contract
--------
* Every structural or behavioural UI mutation publishes a :class:`UIChange`
  carrying the *kind* of change, the title of the owning *window* (the dirt
  scope the ripper re-explores), and the mutated control's primary id.
* Each publish bumps a monotonic ``revision``; the application exposes it as
  ``Application.ui_revision``.
* ``drain()`` atomically hands the accumulated batch to the caller and
  resets the log.  A batch knows the revision range it covers
  (``from_revision`` .. ``to_revision``), so a consumer holding a trace
  stamped with an older revision can detect that events were lost to an
  intervening drain and fall back to a full rip.
* The log is bounded (``capacity``).  Overflow never drops the *flag*: the
  batch is marked ``overflowed`` and consumers must treat the whole UI as
  dirty (i.e. full-rip fallback).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

#: Default bound on buffered changes between drains.  Mutation bursts larger
#: than this overflow the log, which simply downgrades the next incremental
#: rip to a full rip — correctness never depends on the bound.
DEFAULT_CAPACITY = 256


@dataclass(frozen=True)
class UIChange:
    """One scoped change notification."""

    #: What happened: ``widget_added``, ``widget_removed``, ``tab_activated``,
    #: ``property_changed``, ``window_opened``, ``window_closed``, or an
    #: application-defined kind.
    kind: str
    #: Title of the window the change is scoped to ("" if unknown — treated
    #: as global by consumers).
    window: str
    #: Primary id of the mutated control (may be empty).
    identifier: str
    #: The log revision this change was published at.
    revision: int


@dataclass(frozen=True)
class UIChangeBatch:
    """Everything published between two drains.

    Covers revisions ``from_revision`` (exclusive) to ``to_revision``
    (inclusive).  ``overflowed`` means changes beyond ``capacity`` were
    discarded and only the revision counter is trustworthy.
    """

    changes: Tuple[UIChange, ...]
    overflowed: bool
    from_revision: int
    to_revision: int

    def dirty_windows(self) -> Tuple[str, ...]:
        """Distinct window titles touched by this batch, in publish order."""
        seen: List[str] = []
        for change in self.changes:
            if change.window not in seen:
                seen.append(change.window)
        return tuple(seen)


class UIChangeLog:
    """Bounded monotonic log of UI changes for one application."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._changes: List[UIChange] = []
        self._revision = 0
        self._drained_revision = 0
        self._overflowed = False

    @property
    def revision(self) -> int:
        """Monotonic count of changes ever published."""
        return self._revision

    def pending(self) -> int:
        """Number of changes buffered since the last drain."""
        return len(self._changes)

    def publish(self, kind: str, window: str = "", identifier: str = "") -> UIChange:
        """Record one change and return it (revision already assigned)."""
        self._revision += 1
        change = UIChange(kind=kind, window=window, identifier=identifier,
                          revision=self._revision)
        if len(self._changes) >= self.capacity:
            # Keep memory bounded; the revision counter still advances, so
            # the next drain reports the loss via ``overflowed``.
            self._overflowed = True
        else:
            self._changes.append(change)
        return change

    def drain(self) -> UIChangeBatch:
        """Hand over everything buffered since the last drain and reset."""
        batch = UIChangeBatch(
            changes=tuple(self._changes),
            overflowed=self._overflowed,
            from_revision=self._drained_revision,
            to_revision=self._revision,
        )
        self._changes = []
        self._overflowed = False
        self._drained_revision = self._revision
        return batch
