"""The Word-like document model.

A :class:`Document` is a list of :class:`Paragraph` objects, each carrying a
:class:`TextFormat`.  The model keeps a *selection* (a contiguous range of
paragraphs or lines) that formatting commands apply to, mirroring how the
simulated Word application behaves: the LLM (or the DMI state declaration
``select_paragraphs`` / ``select_lines``) selects text, then a ribbon command
mutates the selected range.

The document also acts as the *text provider* behind the editor's
``TextPattern`` (see :class:`repro.gui.widgets.DocumentControl`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple


@dataclass
class TextFormat:
    """Character/paragraph formatting attributes."""

    font: str = "Calibri"
    size: float = 11.0
    bold: bool = False
    italic: bool = False
    underline: bool = False
    strikethrough: bool = False
    subscript: bool = False
    superscript: bool = False
    color: str = "Black"
    highlight: Optional[str] = None
    alignment: str = "left"          # left | center | right | justify
    line_spacing: float = 1.0
    style: str = "Normal"            # Normal | Heading 1 | Heading 2 | Title | Quote

    def copy(self) -> "TextFormat":
        return replace(self)


@dataclass
class Paragraph:
    """A paragraph of text with uniform formatting.

    Real Word tracks per-run formatting; uniform-per-paragraph formatting is
    enough for every task in the benchmark while keeping checkers simple.
    """

    text: str = ""
    format: TextFormat = field(default_factory=TextFormat)

    @property
    def words(self) -> List[str]:
        return self.text.split()

    def word_count(self) -> int:
        return len(self.words)


class Document:
    """An editable document: paragraphs, selection, find/replace, page setup."""

    def __init__(self, paragraphs: Optional[List[Paragraph]] = None, title: str = "Document1"):
        self.title = title
        self.paragraphs: List[Paragraph] = paragraphs if paragraphs is not None else []
        #: Selected paragraph range as an inclusive (start, end) tuple, or None.
        self.selection: Optional[Tuple[int, int]] = None
        self.page_orientation: str = "portrait"      # portrait | landscape
        self.page_size: str = "A4"
        self.margins: Dict[str, float] = {"top": 2.54, "bottom": 2.54, "left": 3.18, "right": 3.18}
        self.header_text: str = ""
        self.footer_text: str = ""
        self.zoom_percent: float = 100.0
        self.scroll_percent: float = 0.0
        self.tracked_changes: bool = False
        self.saved: bool = True
        self.save_count: int = 0
        self.file_format: str = "docx"

    # ------------------------------------------------------------------
    # content
    # ------------------------------------------------------------------
    def add_paragraph(self, text: str, fmt: Optional[TextFormat] = None) -> Paragraph:
        paragraph = Paragraph(text=text, format=fmt or TextFormat())
        self.paragraphs.append(paragraph)
        self.saved = False
        return paragraph

    def insert_paragraph(self, index: int, text: str, fmt: Optional[TextFormat] = None) -> Paragraph:
        paragraph = Paragraph(text=text, format=fmt or TextFormat())
        self.paragraphs.insert(index, paragraph)
        self.saved = False
        return paragraph

    def delete_paragraph(self, index: int) -> Paragraph:
        self.saved = False
        removed = self.paragraphs.pop(index)
        if self.selection is not None:
            self.selection = None
        return removed

    def paragraph_count(self) -> int:
        return len(self.paragraphs)

    def word_count(self) -> int:
        return sum(p.word_count() for p in self.paragraphs)

    def full_text(self) -> str:
        return "\n".join(p.text for p in self.paragraphs)

    # ------------------------------------------------------------------
    # text-provider protocol (consumed by TextPattern)
    # ------------------------------------------------------------------
    def get_text(self) -> str:
        return self.full_text()

    def get_lines(self) -> List[str]:
        # Lines and paragraphs coincide in the simplified model.
        return [p.text for p in self.paragraphs]

    def get_paragraphs(self) -> List[str]:
        return [p.text for p in self.paragraphs]

    def select_range(self, start: int, end: int, unit: str = "paragraph") -> None:
        self.select_paragraphs(start, end)

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def select_paragraphs(self, start: int, end: Optional[int] = None) -> Tuple[int, int]:
        end = start if end is None else end
        if start < 0 or end < start or end >= len(self.paragraphs):
            raise IndexError(
                f"invalid paragraph selection [{start}, {end}] in a document of "
                f"{len(self.paragraphs)} paragraphs"
            )
        self.selection = (start, end)
        return self.selection

    def select_all(self) -> Optional[Tuple[int, int]]:
        if not self.paragraphs:
            self.selection = None
        else:
            self.selection = (0, len(self.paragraphs) - 1)
        return self.selection

    def clear_selection(self) -> None:
        self.selection = None

    def selected_paragraphs(self) -> List[Paragraph]:
        if self.selection is None:
            return []
        start, end = self.selection
        return self.paragraphs[start:end + 1]

    def selected_text(self) -> str:
        return "\n".join(p.text for p in self.selected_paragraphs())

    # ------------------------------------------------------------------
    # formatting commands (apply to the selection; no-ops without one)
    # ------------------------------------------------------------------
    def apply_format(self, **attributes) -> int:
        """Set formatting attributes on the selected paragraphs.

        Returns the number of paragraphs affected; unknown attributes raise
        ``AttributeError`` so application wiring bugs surface in tests.
        """
        targets = self.selected_paragraphs()
        for paragraph in targets:
            for key, value in attributes.items():
                if not hasattr(paragraph.format, key):
                    raise AttributeError(f"unknown format attribute {key!r}")
                setattr(paragraph.format, key, value)
        if targets:
            self.saved = False
        return len(targets)

    def toggle_format_flag(self, flag: str) -> int:
        """Toggle a boolean flag (bold/italic/...) across the selection.

        Matches Word semantics: if any selected paragraph lacks the flag, the
        flag is turned on everywhere; otherwise it is turned off everywhere.
        """
        targets = self.selected_paragraphs()
        if not targets:
            return 0
        turn_on = not all(getattr(p.format, flag) for p in targets)
        for paragraph in targets:
            setattr(paragraph.format, flag, turn_on)
        self.saved = False
        return len(targets)

    # ------------------------------------------------------------------
    # find and replace
    # ------------------------------------------------------------------
    def find(self, needle: str, match_case: bool = False) -> List[Tuple[int, int]]:
        """Return (paragraph_index, char_offset) for every occurrence of needle."""
        if not needle:
            return []
        results = []
        for index, paragraph in enumerate(self.paragraphs):
            haystack = paragraph.text if match_case else paragraph.text.lower()
            target = needle if match_case else needle.lower()
            offset = haystack.find(target)
            while offset != -1:
                results.append((index, offset))
                offset = haystack.find(target, offset + 1)
        return results

    def replace_all(self, needle: str, replacement: str, match_case: bool = False) -> int:
        """Replace every occurrence; returns the number of replacements."""
        if not needle:
            return 0
        count = 0
        for paragraph in self.paragraphs:
            if match_case:
                occurrences = paragraph.text.count(needle)
                if occurrences:
                    paragraph.text = paragraph.text.replace(needle, replacement)
            else:
                occurrences, paragraph.text = _replace_case_insensitive(
                    paragraph.text, needle, replacement
                )
            count += occurrences
        if count:
            self.saved = False
        return count

    # ------------------------------------------------------------------
    # document-level operations
    # ------------------------------------------------------------------
    def set_orientation(self, orientation: str) -> None:
        if orientation not in {"portrait", "landscape"}:
            raise ValueError(f"unknown orientation {orientation!r}")
        self.page_orientation = orientation
        self.saved = False

    def set_margins(self, **edges: float) -> None:
        for edge, value in edges.items():
            if edge not in self.margins:
                raise ValueError(f"unknown margin edge {edge!r}")
            self.margins[edge] = float(value)
        self.saved = False

    def set_zoom(self, percent: float) -> None:
        self.zoom_percent = max(10.0, min(500.0, percent))

    def scroll_to(self, percent: float) -> None:
        self.scroll_percent = max(0.0, min(100.0, percent))

    def save(self, file_format: Optional[str] = None) -> None:
        if file_format is not None:
            self.file_format = file_format
        self.saved = True
        self.save_count += 1

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """A checker-friendly snapshot of document state."""
        return {
            "title": self.title,
            "paragraphs": len(self.paragraphs),
            "words": self.word_count(),
            "orientation": self.page_orientation,
            "saved": self.saved,
            "file_format": self.file_format,
        }


def _replace_case_insensitive(text: str, needle: str, replacement: str) -> Tuple[int, str]:
    """Case-insensitive replace preserving unmatched text; returns (count, new_text)."""
    result = []
    count = 0
    lower_text = text.lower()
    lower_needle = needle.lower()
    i = 0
    while i < len(text):
        j = lower_text.find(lower_needle, i)
        if j == -1:
            result.append(text[i:])
            break
        result.append(text[i:j])
        result.append(replacement)
        count += 1
        i = j + len(needle)
    else:
        pass
    return count, "".join(result) if count else text


def sample_document() -> Document:
    """A small document used by examples and tests."""
    doc = Document(title="Quarterly Report")
    doc.add_paragraph("Quarterly Report", TextFormat(style="Title", size=28, bold=True))
    doc.add_paragraph("Executive Summary", TextFormat(style="Heading 1", size=16, bold=True))
    doc.add_paragraph(
        "Revenue grew by 14% quarter over quarter, driven primarily by the cloud segment."
    )
    doc.add_paragraph("Key Risks", TextFormat(style="Heading 1", size=16, bold=True))
    doc.add_paragraph(
        "Supply chain volatility remains the principal risk to the hardware roadmap."
    )
    doc.add_paragraph(
        "Mitigation plans include dual sourcing and increased buffer inventory."
    )
    doc.add_paragraph("Outlook", TextFormat(style="Heading 1", size=16, bold=True))
    doc.add_paragraph(
        "We expect continued growth next quarter with improving gross margins."
    )
    return doc
