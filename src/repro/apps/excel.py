"""The Excel-like application.

``ExcelApp`` exposes a spreadsheet grid (a :class:`repro.gui.widgets.DataGrid`
of ``DataItem`` cells), a Name Box and formula bar, and a ribbon with the
Home, Insert, Page Layout, Formulas, Data and View tabs plus a File menu,
all wired to the :class:`repro.apps.workbook.Workbook` model.

The structural features relevant to the paper are present: the Name Box's
"press ENTER to commit" behaviour (called out in the paper's Lessons
Learned), large drop-down galleries, a shared Format Cells dialog reachable
from several ribbon paths (merge node), and DataItem cells whose content the
DMI observation declaration surfaces without pixel parsing.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.base import Application
from repro.apps.workbook import (
    ConditionalFormatRule,
    Workbook,
    column_index_to_letter,
    parse_range,
    sample_sales_workbook,
    to_a1,
)
from repro.gui.ribbon import (
    DialogBuilder,
    RibbonBuilder,
    build_color_dropdown,
    build_font_controls,
    build_gallery_button,
    build_menu_button,
)
from repro.gui.widgets import (
    Button,
    CheckBox,
    DataGrid,
    DataItem,
    Edit,
    Pane,
    ScrollBarControl,
    StatusBar,
    TextLabel,
)

#: Number formats offered by the Number group combo box.
NUMBER_FORMATS = ("General", "Number", "Currency", "Accounting", "Percentage",
                  "Date", "Time", "Text", "Scientific", "Fraction")

CHART_TYPES = ("Clustered Column", "Stacked Column", "Line", "Pie", "Bar", "Area",
               "Scatter", "Histogram")

#: Size of the visible grid in the UI (the workbook model itself is larger).
GRID_ROWS = 15
GRID_COLUMNS = 8


class ExcelApp(Application):
    """The simulated spreadsheet application."""

    APP_NAME = "Excel"

    def __init__(self, desktop=None, workbook: Optional[Workbook] = None) -> None:
        self.workbook = workbook if workbook is not None else sample_sales_workbook()
        super().__init__(desktop=desktop)

    # ------------------------------------------------------------------
    def document_title(self) -> str:
        return self.workbook.name

    @property
    def state(self) -> Workbook:
        return self.workbook

    @property
    def sheet(self):
        return self.workbook.active_sheet

    # ------------------------------------------------------------------
    def build_ui(self) -> None:
        self.ribbon = RibbonBuilder(self.window, self.APP_NAME)
        self._build_file_menu()
        self._build_home_tab()
        self._build_insert_tab()
        self._build_page_layout_tab()
        self._build_formulas_tab()
        self._build_data_tab()
        self._build_view_tab()
        self._build_grid_area()
        self._build_status_bar()
        self._register_shortcuts()
        self.ribbon.select_tab("Home")

    # ------------------------------------------------------------------
    # File menu
    # ------------------------------------------------------------------
    def _build_file_menu(self) -> None:
        self.ribbon.add_tab("File", description="File operations (Backstage view)")
        group = self.ribbon.add_group("File", "Backstage")
        group.add_child(Button("Save", automation_id="Excel.File.Save",
                               description="Save the workbook",
                               on_click=lambda: self.workbook.save()))
        group.add_child(Button("Save As", automation_id="Excel.File.SaveAs",
                               description="Save the workbook under a new name or format",
                               on_click=self._open_save_as_dialog))
        group.add_child(Button("Export as CSV", automation_id="Excel.File.ExportCSV",
                               on_click=lambda: self.workbook.save(file_format="csv")))
        group.add_child(Button("Print", automation_id="Excel.File.Print"))

    # ------------------------------------------------------------------
    # Home tab
    # ------------------------------------------------------------------
    def _build_home_tab(self) -> None:
        self.ribbon.add_tab("Home", description="Common spreadsheet commands")

        clipboard = self.ribbon.add_group("Home", "Clipboard")
        clipboard.add_child(Button("Paste", automation_id="Excel.Home.Paste"))
        clipboard.add_child(Button("Cut", automation_id="Excel.Home.Cut"))
        clipboard.add_child(Button("Copy", automation_id="Excel.Home.Copy"))

        font_group = self.ribbon.add_group("Home", "Font")
        for combo in build_font_controls(
            "Excel.Home",
            on_font=lambda value: self._apply_selection_format(font=value),
            on_size=lambda value: self._apply_selection_format(size=float(value)),
        ):
            font_group.add_child(combo)
        font_group.add_child(Button("Bold", automation_id="Excel.Home.Bold",
                                    description="Make the selected cells bold",
                                    on_click=lambda: self._apply_selection_format(bold=True)))
        font_group.add_child(Button("Italic", automation_id="Excel.Home.Italic",
                                    on_click=lambda: self._apply_selection_format(italic=True)))
        font_group.add_child(build_color_dropdown(
            "Fill Color",
            automation_id="Excel.Home.FillColor",
            description="Color the background of the selected cells",
            on_choice=lambda color: self._apply_selection_format(fill_color=color),
        ))
        font_group.add_child(build_color_dropdown(
            "Font Color",
            automation_id="Excel.Home.FontColor",
            description="Change the text color of the selected cells",
            on_choice=lambda color: self._apply_selection_format(font_color=color),
        ))
        font_group.add_child(Button("Borders", automation_id="Excel.Home.Borders",
                                    on_click=lambda: self._apply_selection_format(border=True)))
        font_group.add_child(Button("Format Cells Dialog Launcher",
                                    automation_id="Excel.Home.FormatCellsLauncher",
                                    description="Open the Format Cells dialog",
                                    on_click=self._open_format_cells_dialog))

        alignment = self.ribbon.add_group("Home", "Alignment")
        for name, value in (("Align Left", "left"), ("Center", "center"), ("Align Right", "right")):
            alignment.add_child(Button(name, automation_id=f"Excel.Home.{name.replace(' ', '')}",
                                       on_click=lambda v=value: self._apply_selection_format(alignment=v)))
        alignment.add_child(Button("Wrap Text", automation_id="Excel.Home.WrapText",
                                   description="Wrap long text inside the selected cells",
                                   on_click=lambda: self._apply_selection_format(wrap_text=True)))
        alignment.add_child(Button("Merge & Center", automation_id="Excel.Home.MergeCenter"))

        number = self.ribbon.add_group("Home", "Number")
        number.add_child(build_gallery_button(
            "Number Format", NUMBER_FORMATS,
            automation_id="Excel.Home.NumberFormat",
            description="Choose how values are displayed",
            on_choice=lambda fmt: self._apply_selection_format(number_format=fmt),
        ))
        number.add_child(Button("Percent Style", automation_id="Excel.Home.PercentStyle",
                                description="Display the selection as a percentage",
                                on_click=lambda: self._apply_selection_format(number_format="Percentage")))
        number.add_child(Button("Comma Style", automation_id="Excel.Home.CommaStyle",
                                on_click=lambda: self._apply_selection_format(number_format="Number")))
        number.add_child(Button("Increase Decimal", automation_id="Excel.Home.IncreaseDecimal",
                                on_click=lambda: self._change_decimals(+1)))
        number.add_child(Button("Decrease Decimal", automation_id="Excel.Home.DecreaseDecimal",
                                on_click=lambda: self._change_decimals(-1)))
        number.add_child(Button("Number Format Dialog Launcher",
                                automation_id="Excel.Home.NumberDialogLauncher",
                                description="Open the Format Cells dialog on the Number page",
                                on_click=self._open_format_cells_dialog))

        styles = self.ribbon.add_group("Home", "Styles")
        styles.add_child(build_menu_button(
            "Conditional Formatting", {
                "Greater Than...": lambda: self._open_conditional_format_dialog("greater_than"),
                "Less Than...": lambda: self._open_conditional_format_dialog("less_than"),
                "Equal To...": lambda: self._open_conditional_format_dialog("equal_to"),
                "Between...": lambda: self._open_conditional_format_dialog("between"),
                "Clear Rules": self._clear_conditional_formats,
            },
            automation_id="Excel.Home.ConditionalFormatting",
            description="Highlight cells that match a condition",
        ))
        styles.add_child(build_gallery_button(
            "Format as Table", tuple(f"Table Style {i}" for i in range(1, 13)),
            automation_id="Excel.Home.FormatAsTable",
            on_choice=lambda _s: None,
        ))
        styles.add_child(build_gallery_button(
            "Cell Styles", ("Normal", "Good", "Bad", "Neutral", "Input", "Output",
                            "Heading 1", "Heading 2", "Total"),
            automation_id="Excel.Home.CellStyles",
            on_choice=lambda _s: None,
        ))

        cells = self.ribbon.add_group("Home", "Cells")
        cells.add_child(build_menu_button(
            "Insert", {
                "Insert Cells": lambda: None,
                "Insert Sheet Rows": lambda: None,
                "Insert Sheet Columns": lambda: None,
                "Insert Sheet": self._insert_sheet,
            },
            automation_id="Excel.Home.InsertCells",
        ))
        cells.add_child(build_menu_button(
            "Delete", {
                "Delete Cells": lambda: None,
                "Delete Sheet Rows": lambda: None,
                "Delete Sheet Columns": lambda: None,
            },
            automation_id="Excel.Home.DeleteCells",
        ))
        cells.add_child(build_menu_button(
            "Format", {
                "Row Height...": self._open_row_height_dialog,
                "Column Width...": self._open_column_width_dialog,
                "Hide Columns": self._hide_selected_columns,
                "Format Cells...": self._open_format_cells_dialog,
            },
            automation_id="Excel.Home.FormatMenu",
            description="Change row height, column width or cell formatting",
        ))

        editing = self.ribbon.add_group("Home", "Editing")
        editing.add_child(build_menu_button(
            "AutoSum", {
                "Sum": lambda: self._insert_aggregate("SUM"),
                "Average": lambda: self._insert_aggregate("AVERAGE"),
                "Count Numbers": lambda: self._insert_aggregate("COUNT"),
                "Max": lambda: self._insert_aggregate("MAX"),
                "Min": lambda: self._insert_aggregate("MIN"),
            },
            automation_id="Excel.Home.AutoSum",
            description="Insert an aggregate formula below the selection",
        ))
        editing.add_child(build_menu_button(
            "Sort & Filter", {
                "Sort A to Z": lambda: self._sort_selection(ascending=True),
                "Sort Z to A": lambda: self._sort_selection(ascending=False),
                "Custom Sort...": self._open_sort_dialog,
                "Filter": lambda: self.sheet.set_filter(0, "enabled"),
            },
            automation_id="Excel.Home.SortFilter",
            description="Sort or filter the selected range",
        ))
        editing.add_child(build_menu_button(
            "Find & Select", {
                "Find...": lambda: None,
                "Replace...": lambda: None,
                "Go To...": lambda: None,
            },
            automation_id="Excel.Home.FindSelect",
        ))

    # ------------------------------------------------------------------
    # Insert tab
    # ------------------------------------------------------------------
    def _build_insert_tab(self) -> None:
        self.ribbon.add_tab("Insert", description="Insert tables, charts and objects")
        tables = self.ribbon.add_group("Insert", "Tables")
        tables.add_child(Button("PivotTable", automation_id="Excel.Insert.PivotTable"))
        tables.add_child(Button("Table", automation_id="Excel.Insert.Table"))
        charts = self.ribbon.add_group("Insert", "Charts")
        charts.add_child(build_gallery_button(
            "Insert Column Chart", ("Clustered Column", "Stacked Column", "100% Stacked Column"),
            automation_id="Excel.Insert.ColumnChart",
            description="Insert a column chart from the selected data",
            on_choice=lambda kind: self._insert_chart(kind),
        ))
        charts.add_child(build_gallery_button(
            "Insert Line Chart", ("Line", "Stacked Line", "Line with Markers"),
            automation_id="Excel.Insert.LineChart",
            on_choice=lambda kind: self._insert_chart(kind),
        ))
        charts.add_child(build_gallery_button(
            "Insert Pie Chart", ("Pie", "Doughnut", "3-D Pie"),
            automation_id="Excel.Insert.PieChart",
            on_choice=lambda kind: self._insert_chart(kind),
        ))
        charts.add_child(build_gallery_button(
            "Recommended Charts", CHART_TYPES,
            automation_id="Excel.Insert.RecommendedCharts",
            on_choice=lambda kind: self._insert_chart(kind),
        ))
        sparklines = self.ribbon.add_group("Insert", "Sparklines")
        sparklines.add_child(Button("Line Sparkline", automation_id="Excel.Insert.SparkLine"))
        sparklines.add_child(Button("Column Sparkline", automation_id="Excel.Insert.SparkColumn"))
        text_group = self.ribbon.add_group("Insert", "Text")
        text_group.add_child(Button("Text Box", automation_id="Excel.Insert.TextBox"))
        text_group.add_child(Button("Header & Footer", automation_id="Excel.Insert.HeaderFooter"))

    # ------------------------------------------------------------------
    # Page Layout tab
    # ------------------------------------------------------------------
    def _build_page_layout_tab(self) -> None:
        self.ribbon.add_tab("Page Layout", description="Themes and page setup")
        themes = self.ribbon.add_group("Page Layout", "Themes")
        themes.add_child(build_gallery_button(
            "Themes", ("Office", "Facet", "Integral", "Ion", "Organic"),
            automation_id="Excel.PageLayout.Themes",
            on_choice=lambda _t: None,
        ))
        setup = self.ribbon.add_group("Page Layout", "Page Setup")
        setup.add_child(build_menu_button(
            "Orientation", {
                "Portrait": lambda: None,
                "Landscape": lambda: None,
            },
            automation_id="Excel.PageLayout.Orientation",
        ))
        setup.add_child(build_gallery_button(
            "Margins", ("Normal", "Wide", "Narrow"),
            automation_id="Excel.PageLayout.Margins",
            on_choice=lambda _m: None,
        ))
        setup.add_child(Button("Print Area", automation_id="Excel.PageLayout.PrintArea"))

    # ------------------------------------------------------------------
    # Formulas tab
    # ------------------------------------------------------------------
    def _build_formulas_tab(self) -> None:
        self.ribbon.add_tab("Formulas", description="Function library and calculation")
        library = self.ribbon.add_group("Formulas", "Function Library")
        library.add_child(build_menu_button(
            "AutoSum (Formulas)", {
                "Sum": lambda: self._insert_aggregate("SUM"),
                "Average": lambda: self._insert_aggregate("AVERAGE"),
            },
            automation_id="Excel.Formulas.AutoSum",
        ))
        library.add_child(Button("Insert Function", automation_id="Excel.Formulas.InsertFunction",
                                 on_click=self._open_insert_function_dialog))
        library.add_child(build_gallery_button(
            "Math & Trig", ("SUM", "ROUND", "ABS", "SQRT", "POWER"),
            automation_id="Excel.Formulas.MathTrig",
            on_choice=lambda fn: self._insert_aggregate(fn if fn in ("SUM",) else "SUM"),
        ))
        calculation = self.ribbon.add_group("Formulas", "Calculation")
        calculation.add_child(Button("Calculate Now", automation_id="Excel.Formulas.CalculateNow",
                                     description="Recalculate the entire workbook",
                                     on_click=self._recalculate))

    # ------------------------------------------------------------------
    # Data tab
    # ------------------------------------------------------------------
    def _build_data_tab(self) -> None:
        self.ribbon.add_tab("Data", description="Sort, filter and data tools")
        sort_filter = self.ribbon.add_group("Data", "Sort & Filter")
        sort_filter.add_child(Button("Sort A to Z (Data)", automation_id="Excel.Data.SortAsc",
                                     description="Sort the selection ascending",
                                     on_click=lambda: self._sort_selection(ascending=True)))
        sort_filter.add_child(Button("Sort Z to A (Data)", automation_id="Excel.Data.SortDesc",
                                     on_click=lambda: self._sort_selection(ascending=False)))
        sort_filter.add_child(Button("Sort (Custom)", automation_id="Excel.Data.CustomSort",
                                     description="Open the Sort dialog",
                                     on_click=self._open_sort_dialog))
        sort_filter.add_child(Button("Filter (Data)", automation_id="Excel.Data.Filter",
                                     on_click=lambda: self.sheet.set_filter(0, "enabled")))
        tools = self.ribbon.add_group("Data", "Data Tools")
        tools.add_child(Button("Text to Columns", automation_id="Excel.Data.TextToColumns"))
        tools.add_child(Button("Remove Duplicates", automation_id="Excel.Data.RemoveDuplicates"))
        tools.add_child(Button("Data Validation", automation_id="Excel.Data.DataValidation"))

    # ------------------------------------------------------------------
    # View tab
    # ------------------------------------------------------------------
    def _build_view_tab(self) -> None:
        self.ribbon.add_tab("View", description="Workbook views, freeze panes and zoom")
        show = self.ribbon.add_group("View", "Show")
        show.add_child(CheckBox("Gridlines", checked=True, automation_id="Excel.View.Gridlines"))
        show.add_child(CheckBox("Formula Bar", checked=True, automation_id="Excel.View.FormulaBar"))
        show.add_child(CheckBox("Headings", checked=True, automation_id="Excel.View.Headings"))
        zoom = self.ribbon.add_group("View", "Zoom")
        zoom.add_child(Button("Zoom", automation_id="Excel.View.Zoom"))
        zoom.add_child(Button("100%", automation_id="Excel.View.Zoom100"))
        window_group = self.ribbon.add_group("View", "Window")
        window_group.add_child(build_menu_button(
            "Freeze Panes", {
                "Freeze Panes": lambda: self.sheet.freeze_panes(1, 1),
                "Freeze Top Row": lambda: self.sheet.freeze_panes(1, 0),
                "Freeze First Column": lambda: self.sheet.freeze_panes(0, 1),
                "Unfreeze Panes": lambda: self.sheet.freeze_panes(0, 0),
            },
            automation_id="Excel.View.FreezePanes",
            description="Keep rows and columns visible while the rest scrolls",
        ))
        window_group.add_child(Button("New Window", automation_id="Excel.View.NewWindow"))
        window_group.add_child(Button("Split", automation_id="Excel.View.Split"))

    # ------------------------------------------------------------------
    # grid area
    # ------------------------------------------------------------------
    def _build_grid_area(self) -> None:
        area = Pane(name="Workbook Area", automation_id="Excel.WorkbookArea")
        self.window.add_child(area)

        bar = Pane(name="Formula Bar Area", automation_id="Excel.FormulaBarArea")
        area.add_child(bar)
        self.name_box = Edit(
            "Name Box",
            automation_id="Excel.NameBox",
            description="Type a cell reference and press Enter to select it",
            value="A1",
            on_commit=self._select_reference,
            requires_enter_to_commit=True,
        )
        bar.add_child(self.name_box)
        self.formula_bar = Edit(
            "Formula Bar",
            automation_id="Excel.FormulaBar",
            description="Type a value or formula for the active cell",
            on_commit=self._commit_formula_bar,
            requires_enter_to_commit=True,
        )
        bar.add_child(self.formula_bar)

        self.grid = DataGrid("Sheet Grid", rows=GRID_ROWS, columns=GRID_COLUMNS,
                             automation_id="Excel.Grid",
                             cell_factory=self._make_grid_cell)
        area.add_child(self.grid)
        self._refresh_grid()

        self.scrollbar = ScrollBarControl("Vertical Scroll Bar",
                                          automation_id="Excel.VScroll",
                                          orientation="vertical",
                                          on_scroll=lambda p: setattr(self.sheet, "scroll_percent", p))
        area.add_child(self.scrollbar)

        sheet_tabs = Pane(name="Sheet Tabs", automation_id="Excel.SheetTabs")
        area.add_child(sheet_tabs)
        for sheet in self.workbook.sheets:
            sheet_tabs.add_child(Button(sheet.name,
                                        automation_id=f"Excel.SheetTab.{sheet.name}",
                                        on_click=lambda name=sheet.name: self._activate_sheet(name)))

    def _make_grid_cell(self, row: int, column: int) -> DataItem:
        reference = to_a1(row, column)
        cell = DataItem(name=reference, row=row, column=column,
                        automation_id=f"Excel.Cell.{reference}",
                        on_change=lambda value, ref=reference: self._cell_edited(ref, value),
                        on_select=lambda sel, ref=reference: self._grid_cell_selected(ref, sel))
        return cell

    def _grid_cell_selected(self, reference: str, selected: bool) -> None:
        """Clicking a grid cell selects the corresponding worksheet cell."""
        if selected:
            self.sheet.select_range(reference)
            if hasattr(self, "name_box"):
                self.name_box.set_text(reference)

    def _build_status_bar(self) -> None:
        status = StatusBar(name="Status Bar", automation_id="Excel.StatusBar")
        self.window.add_child(status)
        status.add_child(TextLabel("Ready", automation_id="Excel.Status.Mode"))
        status.add_child(TextLabel(f"Sheet: {self.sheet.name}", automation_id="Excel.Status.Sheet"))

    def _register_shortcuts(self) -> None:
        self.register_shortcut("ctrl+s", self.workbook.save)
        self.register_shortcut("ctrl+b", lambda: self._apply_selection_format(bold=True))
        self.register_shortcut("ctrl+i", lambda: self._apply_selection_format(italic=True))
        self.register_shortcut("f9", self._recalculate)

    # ------------------------------------------------------------------
    # command handlers
    # ------------------------------------------------------------------
    def _apply_selection_format(self, **attributes) -> None:
        self.sheet.apply_format_to_selection(**attributes)
        self.workbook.mark_dirty()

    def _change_decimals(self, delta: int) -> None:
        for cell in self.sheet.selected_cells():
            cell.format.decimal_places = max(0, cell.format.decimal_places + delta)

    def _select_reference(self, reference: str) -> None:
        """Name Box commit: select the typed cell or range."""
        reference = reference.strip()
        if not reference:
            return
        self.sheet.select_range(reference)
        self._sync_grid_selection()

    def _commit_formula_bar(self, text: str) -> None:
        """Write the formula-bar content into the first selected cell."""
        if not self.sheet.selection:
            return
        row, column = self.sheet.selection[0]
        self.sheet.set_value(to_a1(row, column), text)
        self.sheet.recalculate()
        self.workbook.mark_dirty()
        self._refresh_grid()

    def _cell_edited(self, reference: str, value: str) -> None:
        self.sheet.set_value(reference, value)
        self.sheet.recalculate()
        self.workbook.mark_dirty()
        self._refresh_grid()

    def _sort_selection(self, ascending: bool) -> None:
        reference = self._selection_reference()
        if reference is None:
            return
        self.sheet.sort_range(reference, key_column=0, ascending=ascending)
        self.workbook.mark_dirty()
        self._refresh_grid()

    def _insert_aggregate(self, function: str) -> None:
        """Insert =FUNCTION(selection) into the cell below the selection."""
        reference = self._selection_reference()
        if reference is None:
            return
        cells = parse_range(reference)
        last_row = max(r for r, _ in cells)
        first_col = min(c for _, c in cells)
        target = to_a1(last_row + 1, first_col)
        self.sheet.set_value(target, f"={function}({reference})")
        self.workbook.mark_dirty()
        self._refresh_grid()

    def _insert_chart(self, chart_type: str) -> None:
        reference = self._selection_reference() or self.sheet.used_range() or "A1:A1"
        self.sheet.insert_chart(chart_type, reference)
        self.workbook.mark_dirty()

    def _insert_sheet(self) -> None:
        index = len(self.workbook.sheets) + 1
        self.workbook.add_sheet(f"Sheet{index}")

    def _activate_sheet(self, name: str) -> None:
        self.workbook.activate_sheet(name)
        self._refresh_grid()

    def _recalculate(self) -> None:
        for sheet in self.workbook.sheets:
            sheet.recalculate()
        self._refresh_grid()

    def _hide_selected_columns(self) -> None:
        for _row, column in self.sheet.selection:
            self.sheet.hidden_columns.add(column)

    def _clear_conditional_formats(self) -> None:
        self.sheet.conditional_formats.clear()

    def _selection_reference(self) -> Optional[str]:
        if not self.sheet.selection:
            return None
        rows = [r for r, _ in self.sheet.selection]
        cols = [c for _, c in self.sheet.selection]
        return f"{to_a1(min(rows), min(cols))}:{to_a1(max(rows), max(cols))}"

    # ------------------------------------------------------------------
    # grid synchronisation
    # ------------------------------------------------------------------
    def _refresh_grid(self) -> None:
        """Mirror the active worksheet's values into the visible DataItems."""
        if not hasattr(self, "grid"):
            return
        for cell in self.grid.all_cells():
            value = self.sheet.cell_at(cell.row, cell.column).display_value()
            cell.set_display_value(value)

    def _sync_grid_selection(self) -> None:
        selected = set(self.sheet.selection)
        for cell in self.grid.all_cells():
            cell.set_selected_display((cell.row, cell.column) in selected)

    # ------------------------------------------------------------------
    # dialogs
    # ------------------------------------------------------------------
    def _open_format_cells_dialog(self) -> None:
        """The shared Format Cells dialog (merge node in the UNG)."""
        builder = DialogBuilder("Format Cells")
        dialog = builder.build()
        number_page = builder.add_tab("Number")
        builder.add_combo(number_page, "Category", choices=NUMBER_FORMATS, value="General",
                          on_change=lambda fmt: self._apply_selection_format(number_format=fmt))
        builder.add_spinner(number_page, "Decimal places", value=2, maximum=10,
                            on_change=lambda v: self._apply_selection_format(decimal_places=int(v)))
        alignment_page = builder.add_tab("Alignment")
        builder.add_combo(alignment_page, "Horizontal", choices=("General", "Left", "Center", "Right"),
                          value="General",
                          on_change=lambda v: self._apply_selection_format(alignment=v.lower()))
        builder.add_checkbox(alignment_page, "Wrap text",
                             on_change=lambda v: self._apply_selection_format(wrap_text=v))
        font_page = builder.add_tab("Font (Format Cells)")
        builder.add_combo(font_page, "Font (dialog)", choices=("Calibri", "Arial", "Consolas"),
                          value="Calibri",
                          on_change=lambda v: self._apply_selection_format(font=v))
        builder.add_checkbox(font_page, "Bold (dialog)",
                             on_change=lambda v: self._apply_selection_format(bold=v))
        fill_page = builder.add_tab("Fill")
        fill_page.add_child(build_color_dropdown(
            "Background Color",
            automation_id="FormatCells.BackgroundColor",
            on_choice=lambda color: self._apply_selection_format(fill_color=color),
        ))
        self.open_dialog(dialog)

    def _open_conditional_format_dialog(self, operator: str) -> None:
        pending = {"threshold": 0.0, "upper": 0.0, "color": "Light Red"}
        reference = self._selection_reference() or self.sheet.used_range() or "A1:A1"

        def commit() -> None:
            rule = ConditionalFormatRule(
                range_ref=reference,
                operator=operator,
                threshold=pending["threshold"],
                threshold_upper=pending["upper"],
                fill_color=pending["color"],
            )
            self.sheet.add_conditional_format(rule)
            self.workbook.mark_dirty()

        titles = {"greater_than": "Greater Than", "less_than": "Less Than",
                  "equal_to": "Equal To", "between": "Between"}
        builder = DialogBuilder(titles[operator], on_ok=commit)
        dialog = builder.build()
        builder.add_edit(dialog, "Format cells that are", value="0",
                         on_commit=lambda v: pending.update(threshold=float(v or 0)))
        if operator == "between":
            builder.add_edit(dialog, "And", value="0",
                             on_commit=lambda v: pending.update(upper=float(v or 0)))
        builder.add_combo(dialog, "With",
                          choices=("Light Red", "Yellow", "Green", "Custom Format..."),
                          value="Light Red",
                          on_change=lambda v: pending.update(color=v))
        self.open_dialog(dialog)

    def _open_sort_dialog(self) -> None:
        pending = {"column": 0, "ascending": True, "has_header": True}
        reference = self._selection_reference() or self.sheet.used_range() or "A1:A1"

        def commit() -> None:
            self.sheet.sort_range(reference, key_column=pending["column"],
                                  ascending=pending["ascending"],
                                  has_header=pending["has_header"])
            self.workbook.mark_dirty()
            self._refresh_grid()

        builder = DialogBuilder("Sort", on_ok=commit)
        dialog = builder.build()
        column_names = [column_index_to_letter(i) for i in range(GRID_COLUMNS)]
        builder.add_combo(dialog, "Sort by", choices=column_names, value="A",
                          on_change=lambda v: pending.update(
                              column=column_names.index(v)))
        builder.add_combo(dialog, "Order", choices=("A to Z", "Z to A"), value="A to Z",
                          on_change=lambda v: pending.update(ascending=(v == "A to Z")))
        builder.add_checkbox(dialog, "My data has headers", checked=True,
                             on_change=lambda v: pending.update(has_header=v))
        self.open_dialog(dialog)

    def _open_row_height_dialog(self) -> None:
        builder = DialogBuilder("Row Height")
        dialog = builder.build()
        builder.add_spinner(dialog, "Row height", value=15.0, maximum=400.0,
                            on_change=lambda v: self._set_selected_row_heights(v))
        self.open_dialog(dialog)

    def _set_selected_row_heights(self, height: float) -> None:
        for row, _col in self.sheet.selection:
            self.sheet.set_row_height(row, height)

    def _open_column_width_dialog(self) -> None:
        builder = DialogBuilder("Column Width")
        dialog = builder.build()
        builder.add_spinner(dialog, "Column width", value=8.43, maximum=255.0,
                            on_change=lambda v: self._set_selected_column_widths(v))
        self.open_dialog(dialog)

    def _set_selected_column_widths(self, width: float) -> None:
        for _row, column in self.sheet.selection:
            self.sheet.column_widths[column] = width

    def _open_insert_function_dialog(self) -> None:
        builder = DialogBuilder("Insert Function")
        dialog = builder.build()
        builder.add_combo(dialog, "Select a function",
                          choices=("SUM", "AVERAGE", "COUNT", "MAX", "MIN", "IF", "VLOOKUP"),
                          value="SUM",
                          on_change=lambda fn: self._insert_aggregate(fn)
                          if fn in ("SUM", "AVERAGE", "COUNT", "MAX", "MIN") else None)
        self.open_dialog(dialog)

    def _open_save_as_dialog(self) -> None:
        chosen = {"name": self.workbook.name, "format": self.workbook.file_format}

        def commit() -> None:
            self.workbook.name = chosen["name"]
            self.workbook.save(file_format=chosen["format"])

        builder = DialogBuilder("Save As", on_ok=commit)
        dialog = builder.build()
        builder.add_edit(dialog, "File name", value=self.workbook.name,
                         on_commit=lambda v: chosen.update(name=v))
        builder.add_combo(dialog, "Save as type", choices=("xlsx", "xls", "csv", "pdf"),
                          value=self.workbook.file_format,
                          on_change=lambda v: chosen.update(format=v))
        self.open_dialog(dialog)
