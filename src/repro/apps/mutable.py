"""A synthetic application with scripted UI mutations.

The incremental-ripping benchmark and tests need an application whose UI can
be changed *between* rips in controlled, scoped ways — something the four
Office-like apps deliberately avoid (their trees are fixed per build).
:class:`MutableDemoApp` provides:

* a deliberately wide main window (two colour drop-downs, a quick-action
  button strip, a two-tab section) so a full rip visits on the order of a
  hundred nodes, and
* a small ``Settings`` dialog built fresh on every open from a persistent
  spec list, so dialog-scoped mutations are cheap to express and cheap to
  re-explore — the paper's "one dialog changed, don't re-rip the world"
  scenario.

Every mutation helper publishes a scoped change on ``app.ui_changes`` —
either automatically (widget add/remove and property edits route through the
instrumented widget layer) or explicitly (dialog-spec edits are model-side
changes the widget layer cannot see, so :meth:`mutate_dialog_spec` publishes
a ``dialog_spec_changed`` event against the ``Settings`` window itself).

The app is intentionally *not* registered in ``APP_FACTORIES``: it models no
benchmark tasks.  It exists for the ripper's sake.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.apps.base import Application
from repro.gui.ribbon import DialogBuilder, build_color_dropdown
from repro.gui.widgets import Button, Edit, Group, Pane, TabControl, TabItem

#: The dialog window title; mutation events against the dialog spec are
#: scoped to this name.
SETTINGS_WINDOW = "Settings"


class MutableDemoApp(Application):
    """A wide-surface demo app whose UI mutates on request."""

    APP_NAME = "MutableDemo"
    APP_VERSION = "1.0"

    def __init__(self, desktop=None):
        self.state_log: List[Tuple] = []
        self.font_color = "Black"
        self.fill_color = "White"
        self.status_text = ""
        # (kind, label) rows the Settings dialog is rebuilt from on every
        # open; mutating this list changes the *next* dialog's contents.
        self._dialog_spec: List[Tuple[str, str]] = [
            ("checkbox", "Autosave"),
            ("checkbox", "Spell check"),
            ("edit", "Author"),
            ("spinner", "Zoom"),
            ("combo", "Theme"),
        ]
        self._quick_group: Group
        self._tabs: TabControl
        super().__init__(desktop=desktop)

    def document_title(self) -> str:
        return "Mutable Document"

    @property
    def state(self):
        return self

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build_ui(self) -> None:
        window = self.window
        ribbon = Group(name="Demo Ribbon", automation_id="Mutable.Ribbon")
        window.add_child(ribbon)
        ribbon.add_child(build_color_dropdown(
            "Font Color", automation_id="Mutable.FontColor",
            on_choice=lambda c: setattr(self, "font_color", c)))
        ribbon.add_child(build_color_dropdown(
            "Fill Color", automation_id="Mutable.FillColor",
            on_choice=lambda c: setattr(self, "fill_color", c)))
        ribbon.add_child(Button(
            "Open Settings", automation_id="Mutable.OpenSettings",
            description="Open the settings dialog",
            on_click=self._open_settings))

        self._quick_group = Group(name="Quick Actions",
                                  automation_id="Mutable.Quick")
        window.add_child(self._quick_group)
        for label in ("Cut", "Copy", "Paste", "Undo", "Redo"):
            self._add_quick_button_widget(label)
        self._quick_group.add_child(Edit(
            "Status Line", automation_id="Mutable.StatusLine",
            on_commit=lambda v: setattr(self, "status_text", v)))

        self._tabs = TabControl(name="Demo Tabs", automation_id="Mutable.Tabs")
        window.add_child(self._tabs)
        for title, actions in (("Layout", ("Align Left", "Align Center",
                                           "Align Right", "Justify")),
                               ("View", ("Zoom In", "Zoom Out",
                                         "Full Screen", "Ruler"))):
            panel = Pane(name=f"{title} panel",
                         automation_id=f"Mutable.{title}.Panel")
            for action in actions:
                panel.add_child(Button(
                    action,
                    automation_id=f"Mutable.{title}.{action.replace(' ', '')}",
                    on_click=lambda a=action: self.state_log.append(("action", a))))
            tab = TabItem(name=title, automation_id=f"Mutable.Tab.{title}",
                          panel=panel)
            self._tabs.add_tab(tab)
            window.add_child(panel)
        self._tabs.tabs()[0].select()

    def _open_settings(self) -> None:
        builder = DialogBuilder(SETTINGS_WINDOW)
        dialog = builder.dialog
        for kind, label in self._dialog_spec:
            if kind == "checkbox":
                builder.add_checkbox(
                    dialog, label,
                    on_change=lambda v, l=label: self.state_log.append((l, v)))
            elif kind == "edit":
                builder.add_edit(
                    dialog, label,
                    on_commit=lambda v, l=label: self.state_log.append((l, v)))
            elif kind == "spinner":
                builder.add_spinner(
                    dialog, label, value=100.0, minimum=10.0, maximum=400.0,
                    on_change=lambda v, l=label: self.state_log.append((l, v)))
            elif kind == "combo":
                builder.add_combo(
                    dialog, label, choices=("Light", "Dark", "Contrast"),
                    on_change=lambda v, l=label: self.state_log.append((l, v)))
            else:
                raise ValueError(f"unknown dialog spec kind {kind!r}")
        self.open_dialog(builder.build())

    # ------------------------------------------------------------------
    # scripted mutations (each publishes a scoped UI change)
    # ------------------------------------------------------------------
    def _add_quick_button_widget(self, label: str) -> Button:
        return self._quick_group.add_child(Button(
            label, automation_id=f"Mutable.Quick.{label.replace(' ', '')}",
            on_click=lambda: self.state_log.append(("quick", label))))

    def add_quick_button(self, label: str) -> Button:
        """Add a button to the main window's quick strip (widget_added)."""
        button = self._add_quick_button_widget(label)
        self.desktop.relayout()
        return button

    def remove_quick_button(self, label: str) -> None:
        """Remove a quick-strip button by name (widget_removed)."""
        for child in list(self._quick_group.children):
            if child.name == label:
                self._quick_group.remove_child(child)
                self.desktop.relayout()
                return
        raise KeyError(f"no quick button named {label!r}")

    def set_status_line(self, text: str) -> None:
        """Change the status edit's text (property_changed)."""
        for child in self._quick_group.children:
            if isinstance(child, Edit) and child.name == "Status Line":
                child.set_text(text)
                return
        raise KeyError("no Status Line edit")

    def toggle_tab(self) -> None:
        """Activate the currently unselected tab (tab_activated)."""
        tabs = self._tabs.tabs()
        current = self._tabs.selected_tab()
        for tab in tabs:
            if tab is not current:
                tab.select()
                return

    def mutate_dialog_spec(self, kind: str, label: str) -> None:
        """Append a row to the Settings dialog spec.

        The spec lives in the model, not the widget tree, so the widget
        layer cannot observe this change — it is published explicitly,
        scoped to the dialog window it will materialize in.
        """
        self._dialog_spec.append((kind, label))
        self.ui_changes.publish("dialog_spec_changed",
                                window=SETTINGS_WINDOW,
                                identifier=f"{kind}:{label}")

    def drop_dialog_spec_row(self, label: str) -> None:
        """Remove a Settings dialog spec row by label (scoped publish)."""
        before = len(self._dialog_spec)
        self._dialog_spec = [(kind, l) for kind, l in self._dialog_spec
                             if l != label]
        if len(self._dialog_spec) == before:
            raise KeyError(f"no dialog spec row labeled {label!r}")
        self.ui_changes.publish("dialog_spec_changed",
                                window=SETTINGS_WINDOW,
                                identifier=f"drop:{label}")
