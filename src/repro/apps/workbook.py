"""The Excel-like workbook model.

A :class:`Workbook` holds :class:`Worksheet` objects; each worksheet is a
sparse grid of :class:`Cell` objects addressed by A1-style references.  The
model supports the features exercised by the benchmark tasks: cell values and
formulas (a small evaluator for ``SUM``/``AVERAGE``/arithmetic), number and
fill formatting, conditional formatting rules, sorting, filtering, freeze
panes and chart insertion.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

_A1_RE = re.compile(r"^([A-Za-z]+)([0-9]+)$")


def column_letter_to_index(letters: str) -> int:
    """Convert a column letter ('A', 'Z', 'AA') to a zero-based index."""
    letters = letters.upper()
    value = 0
    for ch in letters:
        if not ("A" <= ch <= "Z"):
            raise ValueError(f"invalid column letters {letters!r}")
        value = value * 26 + (ord(ch) - ord("A") + 1)
    return value - 1


def column_index_to_letter(index: int) -> str:
    """Convert a zero-based column index to letters."""
    if index < 0:
        raise ValueError("column index must be non-negative")
    letters = []
    index += 1
    while index:
        index, remainder = divmod(index - 1, 26)
        letters.append(chr(ord("A") + remainder))
    return "".join(reversed(letters))


def parse_a1(reference: str) -> Tuple[int, int]:
    """Parse an A1-style reference into (row, column) zero-based indices."""
    match = _A1_RE.match(reference.strip())
    if not match:
        raise ValueError(f"invalid cell reference {reference!r}")
    letters, digits = match.groups()
    return int(digits) - 1, column_letter_to_index(letters)


def to_a1(row: int, column: int) -> str:
    """Convert zero-based (row, column) to an A1 reference."""
    return f"{column_index_to_letter(column)}{row + 1}"


def parse_range(reference: str) -> List[Tuple[int, int]]:
    """Expand 'A1:B3' (or a single cell) into a list of (row, column) pairs."""
    reference = reference.strip()
    if ":" not in reference:
        return [parse_a1(reference)]
    start_ref, end_ref = reference.split(":", 1)
    r1, c1 = parse_a1(start_ref)
    r2, c2 = parse_a1(end_ref)
    rows = range(min(r1, r2), max(r1, r2) + 1)
    cols = range(min(c1, c2), max(c1, c2) + 1)
    return [(r, c) for r in rows for c in cols]


@dataclass
class CellFormat:
    """Visual/numeric formatting of a cell."""

    number_format: str = "General"   # General | Number | Currency | Percentage | Date | Text
    decimal_places: int = 2
    bold: bool = False
    italic: bool = False
    font: str = "Calibri"
    size: float = 11.0
    fill_color: Optional[str] = None
    font_color: str = "Black"
    border: bool = False
    wrap_text: bool = False
    alignment: str = "general"


@dataclass
class Cell:
    """A single spreadsheet cell."""

    value: object = None
    formula: Optional[str] = None
    format: CellFormat = field(default_factory=CellFormat)

    def display_value(self) -> str:
        if self.value is None:
            return ""
        if isinstance(self.value, float):
            if self.format.number_format == "Percentage":
                return f"{self.value * 100:.{self.format.decimal_places}f}%"
            if self.format.number_format == "Currency":
                return f"${self.value:,.{self.format.decimal_places}f}"
            if self.value == int(self.value) and self.format.number_format == "General":
                return str(int(self.value))
            return f"{self.value:.{self.format.decimal_places}f}"
        return str(self.value)


@dataclass
class ConditionalFormatRule:
    """A conditional-formatting rule over a range."""

    range_ref: str
    operator: str          # greater_than | less_than | equal_to | between | duplicate
    threshold: float = 0.0
    threshold_upper: float = 0.0
    fill_color: str = "Light Red"

    def matches(self, value: object) -> bool:
        if value is None or not isinstance(value, (int, float)):
            # Paper failure-analysis note: rules apply to all cells in the
            # selected region including blanks; blanks only match equality
            # with zero for the "equal_to" operator when threshold == 0.
            return self.operator == "equal_to" and self.threshold == 0 and value is None
        if self.operator == "greater_than":
            return value > self.threshold
        if self.operator == "less_than":
            return value < self.threshold
        if self.operator == "equal_to":
            return value == self.threshold
        if self.operator == "between":
            low, high = sorted((self.threshold, self.threshold_upper))
            return low <= value <= high
        raise ValueError(f"unknown conditional-format operator {self.operator!r}")


@dataclass
class Chart:
    """A chart inserted into a worksheet."""

    chart_type: str
    data_range: str
    title: str = ""


class Worksheet:
    """A sparse grid of cells plus sheet-level settings."""

    def __init__(self, name: str, rows: int = 100, columns: int = 26):
        self.name = name
        self.rows = rows
        self.columns = columns
        self._cells: Dict[Tuple[int, int], Cell] = {}
        self.selection: List[Tuple[int, int]] = []
        self.conditional_formats: List[ConditionalFormatRule] = []
        self.charts: List[Chart] = []
        self.frozen_rows: int = 0
        self.frozen_columns: int = 0
        self.filters: Dict[int, str] = {}
        self.row_heights: Dict[int, float] = {}
        self.column_widths: Dict[int, float] = {}
        self.hidden_columns: set = set()
        self.hidden_rows: set = set()
        self.scroll_percent: float = 0.0

    # ------------------------------------------------------------------
    # cell access
    # ------------------------------------------------------------------
    def cell(self, reference: str) -> Cell:
        """Return the cell at an A1 reference, creating it if necessary."""
        row, column = parse_a1(reference)
        return self.cell_at(row, column)

    def cell_at(self, row: int, column: int) -> Cell:
        if row < 0 or row >= self.rows or column < 0 or column >= self.columns:
            raise IndexError(f"cell ({row}, {column}) outside sheet bounds")
        key = (row, column)
        if key not in self._cells:
            self._cells[key] = Cell()
        return self._cells[key]

    def set_value(self, reference: str, value: object) -> Cell:
        """Set a literal value or a formula (strings starting with '=')."""
        cell = self.cell(reference)
        if isinstance(value, str) and value.startswith("="):
            cell.formula = value
            cell.value = self.evaluate_formula(value)
        else:
            cell.formula = None
            cell.value = _coerce(value)
        return cell

    def get_value(self, reference: str) -> object:
        row, column = parse_a1(reference)
        cell = self._cells.get((row, column))
        return cell.value if cell is not None else None

    def used_cells(self) -> Dict[Tuple[int, int], Cell]:
        return dict(self._cells)

    def used_range(self) -> Optional[str]:
        if not self._cells:
            return None
        rows = [r for r, _ in self._cells]
        cols = [c for _, c in self._cells]
        return f"{to_a1(min(rows), min(cols))}:{to_a1(max(rows), max(cols))}"

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def select_range(self, reference: str) -> List[Tuple[int, int]]:
        self.selection = parse_range(reference)
        return self.selection

    def selected_cells(self) -> List[Cell]:
        return [self.cell_at(r, c) for r, c in self.selection]

    def selected_references(self) -> List[str]:
        return [to_a1(r, c) for r, c in self.selection]

    # ------------------------------------------------------------------
    # formulas
    # ------------------------------------------------------------------
    def evaluate_formula(self, formula: str) -> object:
        """Evaluate a small formula language: =SUM(range), =AVERAGE(range),
        =MIN/MAX/COUNT(range), cell references and + - * / arithmetic."""
        body = formula[1:] if formula.startswith("=") else formula
        body = body.strip()
        func_match = re.match(r"^(SUM|AVERAGE|MIN|MAX|COUNT)\((.+)\)$", body, re.IGNORECASE)
        if func_match:
            func, arg = func_match.group(1).upper(), func_match.group(2)
            values = [v for v in self._range_values(arg) if isinstance(v, (int, float))]
            if func == "SUM":
                return float(sum(values))
            if func == "AVERAGE":
                return float(sum(values) / len(values)) if values else 0.0
            if func == "MIN":
                return float(min(values)) if values else 0.0
            if func == "MAX":
                return float(max(values)) if values else 0.0
            if func == "COUNT":
                return float(len(values))
        return self._evaluate_arithmetic(body)

    def _range_values(self, reference: str) -> List[object]:
        return [self.cell_at(r, c).value for r, c in parse_range(reference)]

    def _evaluate_arithmetic(self, expression: str) -> object:
        """Replace cell references with their numeric values and evaluate."""
        def substitute(match: "re.Match") -> str:
            value = self.get_value(match.group(0))
            if value is None:
                return "0"
            if isinstance(value, (int, float)):
                return repr(float(value))
            raise ValueError(f"cell {match.group(0)} does not hold a number")

        substituted = re.sub(r"[A-Za-z]+[0-9]+", substitute, expression)
        if not re.match(r"^[-+*/(). 0-9eE]+$", substituted):
            raise ValueError(f"unsupported formula expression {expression!r}")
        try:
            return float(eval(substituted, {"__builtins__": {}}, {}))  # noqa: S307 - sanitized
        except ZeroDivisionError:
            return float("nan")

    def recalculate(self) -> None:
        """Re-evaluate every formula cell (single pass; no dependency graph)."""
        for cell in self._cells.values():
            if cell.formula:
                cell.value = self.evaluate_formula(cell.formula)

    # ------------------------------------------------------------------
    # formatting / structure commands
    # ------------------------------------------------------------------
    def apply_format_to_selection(self, **attributes) -> int:
        count = 0
        for cell in self.selected_cells():
            for key, value in attributes.items():
                if not hasattr(cell.format, key):
                    raise AttributeError(f"unknown cell format attribute {key!r}")
                setattr(cell.format, key, value)
            count += 1
        return count

    def add_conditional_format(self, rule: ConditionalFormatRule) -> None:
        self.conditional_formats.append(rule)

    def conditional_fill_for(self, reference: str) -> Optional[str]:
        """Resolve the fill colour a cell gets from conditional formatting."""
        row, column = parse_a1(reference)
        value = self.cell_at(row, column).value
        for rule in self.conditional_formats:
            if (row, column) in parse_range(rule.range_ref) and rule.matches(value):
                return rule.fill_color
        return None

    def sort_range(self, reference: str, key_column: int = 0, ascending: bool = True,
                   has_header: bool = False) -> None:
        """Sort the rows of a rectangular range by one of its columns."""
        cells = parse_range(reference)
        rows = sorted({r for r, _ in cells})
        cols = sorted({c for _, c in cells})
        if has_header and rows:
            rows = rows[1:]
        table = [[self.cell_at(r, c).value for c in cols] for r in rows]
        table.sort(key=lambda row: _sort_key(row[key_column]), reverse=not ascending)
        for r_index, row_values in zip(rows, table):
            for c_index, value in zip(cols, row_values):
                self.cell_at(r_index, c_index).value = value

    def set_filter(self, column: int, criterion: str) -> None:
        self.filters[column] = criterion

    def freeze_panes(self, rows: int, columns: int = 0) -> None:
        self.frozen_rows = rows
        self.frozen_columns = columns

    def insert_chart(self, chart_type: str, data_range: str, title: str = "") -> Chart:
        chart = Chart(chart_type=chart_type, data_range=data_range, title=title)
        self.charts.append(chart)
        return chart

    def hide_column(self, letters: str) -> None:
        self.hidden_columns.add(column_letter_to_index(letters))

    def set_column_width(self, letters: str, width: float) -> None:
        self.column_widths[column_letter_to_index(letters)] = width

    def set_row_height(self, row: int, height: float) -> None:
        self.row_heights[row] = height


class Workbook:
    """A collection of worksheets plus workbook-level state."""

    def __init__(self, name: str = "Book1", sheet_names: Iterable[str] = ("Sheet1",)):
        self.name = name
        self.sheets: List[Worksheet] = [Worksheet(n) for n in sheet_names]
        self.active_index: int = 0
        self.saved: bool = True
        self.save_count: int = 0
        self.file_format: str = "xlsx"

    @property
    def active_sheet(self) -> Worksheet:
        return self.sheets[self.active_index]

    def sheet(self, name: str) -> Worksheet:
        for sheet in self.sheets:
            if sheet.name == name:
                return sheet
        raise KeyError(f"no worksheet named {name!r}")

    def add_sheet(self, name: str) -> Worksheet:
        if any(s.name == name for s in self.sheets):
            raise ValueError(f"worksheet {name!r} already exists")
        sheet = Worksheet(name)
        self.sheets.append(sheet)
        self.saved = False
        return sheet

    def activate_sheet(self, name: str) -> Worksheet:
        for index, sheet in enumerate(self.sheets):
            if sheet.name == name:
                self.active_index = index
                return sheet
        raise KeyError(f"no worksheet named {name!r}")

    def save(self, file_format: Optional[str] = None) -> None:
        if file_format is not None:
            self.file_format = file_format
        self.saved = True
        self.save_count += 1

    def mark_dirty(self) -> None:
        self.saved = False


def _coerce(value: object) -> object:
    """Coerce user-typed text to a number where possible (as Excel does)."""
    if isinstance(value, str):
        stripped = value.strip()
        if stripped == "":
            return None
        try:
            return float(stripped) if "." in stripped or "e" in stripped.lower() else float(int(stripped))
        except ValueError:
            return value
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return float(value)
    return value


def _sort_key(value: object):
    """Numbers sort before text; None sorts last (Excel-like behaviour)."""
    if value is None:
        return (2, 0.0, "")
    if isinstance(value, (int, float)):
        return (0, float(value), "")
    return (1, 0.0, str(value).lower())


def sample_sales_workbook() -> Workbook:
    """A workbook with a small sales table used by examples and the benchmark."""
    workbook = Workbook(name="Sales")
    sheet = workbook.active_sheet
    headers = ["Region", "Product", "Units", "Unit Price", "Revenue"]
    rows = [
        ["North", "Laptop", 120, 950.0],
        ["North", "Monitor", 340, 180.0],
        ["South", "Laptop", 95, 950.0],
        ["South", "Keyboard", 410, 35.0],
        ["East", "Monitor", 150, 180.0],
        ["East", "Laptop", 210, 950.0],
        ["West", "Keyboard", 510, 35.0],
        ["West", "Monitor", 260, 180.0],
    ]
    for col, header in enumerate(headers):
        sheet.cell_at(0, col).value = header
    for r, row in enumerate(rows, start=1):
        for c, value in enumerate(row):
            sheet.cell_at(r, c).value = float(value) if isinstance(value, (int, float)) else value
        sheet.set_value(f"E{r + 1}", f"=C{r + 1}*D{r + 1}")
    return workbook
