"""The application base class.

An :class:`Application` owns a desktop session, a main window, an input
simulator, a keyboard-shortcut table and (in subclasses) the document-like
state model.  Subclasses build their UI in :meth:`build_ui` and register any
exploration contexts (paper §4.1, "Context-aware exploration") via
:meth:`register_context`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.gui.changes import UIChangeLog
from repro.gui.desktop import Desktop
from repro.gui.input import InputSimulator, Shortcut
from repro.gui.widgets import Dialog, Window
from repro.uia.element import UIElement


class Application:
    """Base class for the simulated Office-like applications."""

    #: Human-readable application name (used in window titles and ids).
    APP_NAME = "Application"
    #: Application build version.  Folded into the artifact-cache key so a
    #: rebuilt app (bump this on UI changes) never serves a stale cached
    #: navigation model.
    APP_VERSION = "1.0"

    def __init__(self, desktop: Optional[Desktop] = None) -> None:
        self.desktop = desktop or Desktop()
        self.process_id = self.desktop.register_process(self.APP_NAME)
        self.window = Window(f"{self.APP_NAME} - {self.document_title()}",
                             automation_id=f"{self.APP_NAME}.MainWindow")
        self.window.application = self
        self.window.properties["app_name"] = self.APP_NAME
        self.input = InputSimulator(self.desktop)
        self._shortcuts: Dict[str, Callable[[], None]] = {}
        self._contexts: Dict[str, Callable[[], None]] = {}
        self.desktop.open_window(self.window, process_id=self.process_id)
        self.build_ui()
        # The change log is created only after ``build_ui``: constructing the
        # initial widget tree is not a mutation of a live UI, so revision 0
        # means "exactly as built".
        self.ui_changes = UIChangeLog()
        self.desktop.add_window_listener(self._on_window_event)
        self.desktop.relayout()

    # ------------------------------------------------------------------
    # UI-change events (consumed by the incremental ripper)
    # ------------------------------------------------------------------
    @property
    def ui_revision(self) -> int:
        """Monotonic revision bumped by every published UI change."""
        log = getattr(self, "ui_changes", None)
        return log.revision if log is not None else 0

    def notify_ui_changed(self, kind: str, element: Optional[UIElement] = None) -> None:
        """Publish one scoped UI change.

        Safe to call at any time: during ``build_ui`` (before the log
        exists) it is a no-op.  The change is scoped to the element's window
        title — the granularity at which the incremental ripper re-explores.
        """
        log = getattr(self, "ui_changes", None)
        if log is None:
            return
        window = ""
        identifier = ""
        if element is not None:
            root = element.root()
            window = root.name or ""
            identifier = element.primary_id
        log.publish(kind, window=window, identifier=identifier)

    def _on_window_event(self, window: Window, event: str) -> None:
        if window.process_id == self.process_id:
            self.notify_ui_changed(f"window_{event}", window)

    # ------------------------------------------------------------------
    # to be provided by subclasses
    # ------------------------------------------------------------------
    def build_ui(self) -> None:
        """Construct the application's widget tree (subclass hook)."""
        raise NotImplementedError

    def document_title(self) -> str:
        """Title shown in the window caption (subclass hook)."""
        return "Untitled"

    @property
    def state(self):
        """The checkable application state model (subclass hook)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # dialogs
    # ------------------------------------------------------------------
    def open_dialog(self, dialog: Dialog) -> Dialog:
        """Open a modal dialog owned by this application."""
        dialog.application = self
        dialog.properties["app_name"] = self.APP_NAME
        self.desktop.open_window(dialog, process_id=self.process_id)
        return dialog

    def open_dialogs(self) -> List[Dialog]:
        return [w for w in self.desktop.open_windows(self.process_id)
                if isinstance(w, Dialog) and w.is_open]

    def close_all_dialogs(self) -> None:
        for dialog in self.open_dialogs():
            dialog.close()

    def top_window(self) -> Optional[Window]:
        return self.desktop.top_window(self.process_id)

    # ------------------------------------------------------------------
    # shortcuts
    # ------------------------------------------------------------------
    def register_shortcut(self, combination: str, callback: Callable[[], None]) -> None:
        self._shortcuts[str(Shortcut.parse(combination))] = callback

    def handle_shortcut(self, shortcut: Shortcut) -> bool:
        """Dispatch a keyboard shortcut; returns True if it was handled."""
        callback = self._shortcuts.get(str(shortcut))
        if callback is None:
            return False
        callback()
        return True

    # ------------------------------------------------------------------
    # exploration contexts (for the GUI ripper)
    # ------------------------------------------------------------------
    def register_context(self, name: str, setup: Callable[[], None]) -> None:
        """Register a ripping context, e.g. 'image selected' for PowerPoint."""
        self._contexts[name] = setup

    def exploration_contexts(self) -> Dict[str, Callable[[], None]]:
        """Contexts the ripper should explore in addition to the default one."""
        return dict(self._contexts)

    def enter_context(self, name: str) -> None:
        self._contexts[name]()

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Diagnostic summary used in logs and the offline-modeling bench."""
        control_count = sum(1 for _ in self.window.iter_subtree())
        return {
            "app": self.APP_NAME,
            "controls_in_main_window": control_count,
            "open_dialogs": len(self.open_dialogs()),
        }
