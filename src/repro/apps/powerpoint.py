"""The PowerPoint-like application.

``PowerPointApp`` provides a slide-thumbnail pane, a slide editing surface
with selectable shapes, contextual ribbon tabs (Picture Format / Shape
Format, only visible while a matching shape is selected — the paper's
"context-aware exploration" case), a Format Background pane (the paper's
Task 1), slide transitions, and the usual File/Home/Insert/Design/View tabs,
wired to the :class:`repro.apps.presentation.Presentation` model.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.base import Application
from repro.apps.presentation import Presentation, Shape, sample_presentation
from repro.gui.ribbon import (
    DialogBuilder,
    RibbonBuilder,
    build_color_dropdown,
    build_font_controls,
    build_gallery_button,
    build_menu_button,
)
from repro.gui.widgets import (
    Button,
    CheckBox,
    Dialog,
    Edit,
    Group,
    ListBox,
    ListItemControl,
    Pane,
    RadioButton,
    ScrollBarControl,
    Spinner,
    StatusBar,
    TextLabel,
)

SLIDE_LAYOUTS = ("Title Slide", "Title and Content", "Section Header", "Two Content",
                 "Comparison", "Title Only", "Blank", "Content with Caption",
                 "Picture with Caption")

TRANSITIONS = ("None", "Morph", "Fade", "Push", "Wipe", "Split", "Reveal", "Cut",
               "Random Bars", "Shape", "Uncover", "Cover", "Flash")

THEMES = ("Office Theme", "Facet", "Gallery", "Integral", "Ion", "Ion Boardroom",
          "Organic", "Retrospect", "Slice", "Wisp")


class PowerPointApp(Application):
    """The simulated presentation application."""

    APP_NAME = "PowerPoint"

    def __init__(self, desktop=None, presentation: Optional[Presentation] = None) -> None:
        self.presentation = presentation if presentation is not None else sample_presentation()
        super().__init__(desktop=desktop)

    # ------------------------------------------------------------------
    def document_title(self) -> str:
        return self.presentation.name

    @property
    def state(self) -> Presentation:
        return self.presentation

    # ------------------------------------------------------------------
    def build_ui(self) -> None:
        self.ribbon = RibbonBuilder(self.window, self.APP_NAME)
        self._build_file_menu()
        self._build_home_tab()
        self._build_insert_tab()
        self._build_design_tab()
        self._build_transitions_tab()
        self._build_slideshow_tab()
        self._build_view_tab()
        self._build_contextual_tabs()
        self._build_slide_area()
        self._build_status_bar()
        self._register_shortcuts()
        self.ribbon.select_tab("Home")
        self.register_context("image_selected", self._context_select_picture)
        self.register_context("text_box_selected", self._context_select_text_box)

    # ------------------------------------------------------------------
    # File menu
    # ------------------------------------------------------------------
    def _build_file_menu(self) -> None:
        self.ribbon.add_tab("File", description="File operations (Backstage view)")
        group = self.ribbon.add_group("File", "Backstage")
        group.add_child(Button("Save", automation_id="PowerPoint.File.Save",
                               description="Save the presentation",
                               on_click=lambda: self.presentation.save()))
        group.add_child(Button("Save As", automation_id="PowerPoint.File.SaveAs",
                               on_click=self._open_save_as_dialog))
        group.add_child(Button("Export as PDF", automation_id="PowerPoint.File.ExportPDF",
                               on_click=lambda: self.presentation.save(file_format="pdf")))
        group.add_child(Button("Print", automation_id="PowerPoint.File.Print"))

    # ------------------------------------------------------------------
    # Home tab
    # ------------------------------------------------------------------
    def _build_home_tab(self) -> None:
        self.ribbon.add_tab("Home", description="Slides, fonts and paragraph commands")

        clipboard = self.ribbon.add_group("Home", "Clipboard")
        clipboard.add_child(Button("Paste", automation_id="PowerPoint.Home.Paste"))
        clipboard.add_child(Button("Cut", automation_id="PowerPoint.Home.Cut"))
        clipboard.add_child(Button("Copy", automation_id="PowerPoint.Home.Copy"))

        slides = self.ribbon.add_group("Home", "Slides")
        slides.add_child(build_gallery_button(
            "New Slide", SLIDE_LAYOUTS,
            automation_id="PowerPoint.Home.NewSlide",
            description="Add a slide with the chosen layout",
            on_choice=self._new_slide,
        ))
        slides.add_child(build_gallery_button(
            "Layout", SLIDE_LAYOUTS,
            automation_id="PowerPoint.Home.Layout",
            description="Change the layout of the current slide",
            on_choice=lambda layout: setattr(self.presentation.active_slide, "layout", layout),
        ))
        slides.add_child(Button("Duplicate Slide", automation_id="PowerPoint.Home.DuplicateSlide",
                                on_click=lambda: self._duplicate_active_slide()))
        slides.add_child(Button("Delete Slide", automation_id="PowerPoint.Home.DeleteSlide",
                                description="Delete the current slide",
                                on_click=self._delete_active_slide))

        font_group = self.ribbon.add_group("Home", "Font")
        for combo in build_font_controls(
            "PowerPoint.Home",
            on_font=lambda value: self.presentation.apply_format_to_selection(font=value),
            on_size=lambda value: self.presentation.apply_format_to_selection(font_size=float(value)),
        ):
            font_group.add_child(combo)
        font_group.add_child(Button("Bold", automation_id="PowerPoint.Home.Bold",
                                    on_click=lambda: self.presentation.apply_format_to_selection(bold=True)))
        font_group.add_child(Button("Italic", automation_id="PowerPoint.Home.Italic",
                                    on_click=lambda: self.presentation.apply_format_to_selection(italic=True)))
        font_group.add_child(build_color_dropdown(
            "Font Color",
            automation_id="PowerPoint.Home.FontColor",
            description="Change the color of the selected text",
            on_choice=lambda color: self.presentation.apply_format_to_selection(font_color=color),
        ))

        paragraph = self.ribbon.add_group("Home", "Paragraph")
        for name, value in (("Align Left", "left"), ("Center", "center"), ("Align Right", "right")):
            paragraph.add_child(Button(
                name, automation_id=f"PowerPoint.Home.{name.replace(' ', '')}",
                on_click=lambda v=value: self.presentation.apply_format_to_selection(alignment=v)))
        paragraph.add_child(Button("Bullets", automation_id="PowerPoint.Home.Bullets"))
        paragraph.add_child(Button("Numbering", automation_id="PowerPoint.Home.Numbering"))

        drawing = self.ribbon.add_group("Home", "Drawing")
        drawing.add_child(build_gallery_button(
            "Shapes", ("Rectangle", "Oval", "Arrow", "Line", "Star", "Callout"),
            automation_id="PowerPoint.Home.Shapes",
            on_choice=self._insert_shape,
        ))
        drawing.add_child(build_color_dropdown(
            "Shape Fill",
            automation_id="PowerPoint.Home.ShapeFill",
            description="Fill the selected shape with a color",
            on_choice=lambda color: self.presentation.apply_format_to_selection(fill_color=color),
        ))
        drawing.add_child(build_color_dropdown(
            "Shape Outline",
            automation_id="PowerPoint.Home.ShapeOutline",
            description="Color the outline of the selected shape",
            on_choice=lambda color: self.presentation.apply_format_to_selection(outline_color=color),
        ))
        drawing.add_child(build_menu_button(
            "Arrange", {
                "Bring to Front": lambda: None,
                "Send to Back": lambda: None,
                "Align Center": lambda: None,
            },
            automation_id="PowerPoint.Home.Arrange",
        ))

        editing = self.ribbon.add_group("Home", "Editing")
        editing.add_child(Button("Find", automation_id="PowerPoint.Home.Find"))
        editing.add_child(Button("Replace", automation_id="PowerPoint.Home.Replace"))
        editing.add_child(build_menu_button(
            "Select", {
                "Select All": lambda: None,
                "Selection Pane": lambda: None,
            },
            automation_id="PowerPoint.Home.Select",
        ))

    # ------------------------------------------------------------------
    # Insert tab
    # ------------------------------------------------------------------
    def _build_insert_tab(self) -> None:
        self.ribbon.add_tab("Insert", description="Insert slides, pictures, text and media")
        slides = self.ribbon.add_group("Insert", "Slides")
        slides.add_child(build_gallery_button(
            "New Slide (Insert)", SLIDE_LAYOUTS,
            automation_id="PowerPoint.Insert.NewSlide",
            on_choice=self._new_slide,
        ))
        images = self.ribbon.add_group("Insert", "Images")
        images.add_child(Button("Pictures", automation_id="PowerPoint.Insert.Pictures",
                                description="Insert a picture onto the current slide",
                                on_click=self._insert_picture))
        images.add_child(Button("Screenshot", automation_id="PowerPoint.Insert.Screenshot"))
        images.add_child(Button("Photo Album", automation_id="PowerPoint.Insert.PhotoAlbum"))
        illustrations = self.ribbon.add_group("Insert", "Illustrations")
        illustrations.add_child(build_gallery_button(
            "Shapes (Insert)", ("Rectangle", "Oval", "Arrow", "Line", "Star"),
            automation_id="PowerPoint.Insert.Shapes",
            on_choice=self._insert_shape,
        ))
        illustrations.add_child(Button("Icons", automation_id="PowerPoint.Insert.Icons"))
        illustrations.add_child(Button("Chart", automation_id="PowerPoint.Insert.Chart",
                                       on_click=lambda: self._insert_shape("chart")))
        text_group = self.ribbon.add_group("Insert", "Text")
        text_group.add_child(Button("Text Box", automation_id="PowerPoint.Insert.TextBox",
                                    description="Insert a text box onto the current slide",
                                    on_click=self._insert_text_box))
        text_group.add_child(Button("Header & Footer", automation_id="PowerPoint.Insert.HeaderFooter",
                                    on_click=self._open_header_footer_dialog))
        text_group.add_child(build_gallery_button(
            "WordArt", tuple(f"WordArt Style {i}" for i in range(1, 9)),
            automation_id="PowerPoint.Insert.WordArt",
            on_choice=lambda _s: self._insert_text_box(),
        ))
        media = self.ribbon.add_group("Insert", "Media")
        media.add_child(Button("Video", automation_id="PowerPoint.Insert.Video"))
        media.add_child(Button("Audio", automation_id="PowerPoint.Insert.Audio"))

    # ------------------------------------------------------------------
    # Design tab (Format Background lives here — paper Task 1)
    # ------------------------------------------------------------------
    def _build_design_tab(self) -> None:
        self.ribbon.add_tab("Design", description="Themes, variants and slide background")
        themes = self.ribbon.add_group("Design", "Themes")
        themes.add_child(build_gallery_button(
            "Themes", THEMES,
            automation_id="PowerPoint.Design.Themes",
            description="Apply a presentation theme",
            on_choice=lambda _t: None,
        ))
        variants = self.ribbon.add_group("Design", "Variants")
        variants.add_child(build_gallery_button(
            "Variants", ("Variant 1", "Variant 2", "Variant 3", "Variant 4"),
            automation_id="PowerPoint.Design.Variants",
            on_choice=lambda _v: None,
        ))
        customize = self.ribbon.add_group("Design", "Customize")
        customize.add_child(build_menu_button(
            "Slide Size", {
                "Standard (4:3)": lambda: setattr(self.presentation, "slide_size", "4:3"),
                "Widescreen (16:9)": lambda: setattr(self.presentation, "slide_size", "16:9"),
            },
            automation_id="PowerPoint.Design.SlideSize",
            description="Change the slide size",
        ))
        customize.add_child(Button("Format Background",
                                   automation_id="PowerPoint.Design.FormatBackground",
                                   description="Open the Format Background pane",
                                   on_click=self._open_format_background))

    # ------------------------------------------------------------------
    # Transitions tab
    # ------------------------------------------------------------------
    def _build_transitions_tab(self) -> None:
        self.ribbon.add_tab("Transitions", description="Slide transition effects")
        transition_group = self.ribbon.add_group("Transitions", "Transition to This Slide")
        transition_group.add_child(build_gallery_button(
            "Transition Effects", TRANSITIONS,
            automation_id="PowerPoint.Transitions.Effects",
            description="Choose the transition for the current slide",
            on_choice=lambda effect: self.presentation.set_transition(effect),
        ))
        timing = self.ribbon.add_group("Transitions", "Timing")
        self._duration_spinner = Spinner(
            "Duration", value=1.0, minimum=0.1, maximum=60.0,
            automation_id="PowerPoint.Transitions.Duration",
            on_change=lambda v: setattr(self.presentation.active_slide.transition,
                                        "duration_seconds", v))
        timing.add_child(self._duration_spinner)
        timing.add_child(Button("Apply To All", automation_id="PowerPoint.Transitions.ApplyToAll",
                                description="Apply the current transition to every slide",
                                on_click=self._apply_transition_to_all))
        timing.add_child(CheckBox("On Mouse Click", checked=True,
                                  automation_id="PowerPoint.Transitions.OnClick"))

    # ------------------------------------------------------------------
    # Slide Show tab
    # ------------------------------------------------------------------
    def _build_slideshow_tab(self) -> None:
        self.ribbon.add_tab("Slide Show", description="Start and configure the slide show")
        start = self.ribbon.add_group("Slide Show", "Start Slide Show")
        start.add_child(Button("From Beginning", automation_id="PowerPoint.SlideShow.FromBeginning",
                               description="Start the slide show from the first slide",
                               on_click=lambda: self.presentation.start_slideshow(True)))
        start.add_child(Button("From Current Slide", automation_id="PowerPoint.SlideShow.FromCurrent",
                               on_click=lambda: self.presentation.start_slideshow(False)))
        setup = self.ribbon.add_group("Slide Show", "Set Up")
        setup.add_child(Button("Set Up Slide Show", automation_id="PowerPoint.SlideShow.SetUp"))
        setup.add_child(Button("Hide Slide", automation_id="PowerPoint.SlideShow.HideSlide",
                               on_click=lambda: setattr(self.presentation.active_slide,
                                                        "hidden", True)))
        setup.add_child(Button("Rehearse Timings", automation_id="PowerPoint.SlideShow.Rehearse"))

    # ------------------------------------------------------------------
    # View tab
    # ------------------------------------------------------------------
    def _build_view_tab(self) -> None:
        self.ribbon.add_tab("View", description="Presentation views and zoom")
        views = self.ribbon.add_group("View", "Presentation Views")
        for mode in ("Normal", "Outline View", "Slide Sorter", "Notes Page", "Reading View"):
            views.add_child(Button(mode, automation_id=f"PowerPoint.View.{mode.replace(' ', '')}"))
        show = self.ribbon.add_group("View", "Show")
        show.add_child(CheckBox("Ruler", automation_id="PowerPoint.View.Ruler"))
        show.add_child(CheckBox("Gridlines", automation_id="PowerPoint.View.Gridlines"))
        show.add_child(CheckBox("Notes", automation_id="PowerPoint.View.Notes",
                                on_change=lambda _v: None))
        zoom = self.ribbon.add_group("View", "Zoom")
        zoom.add_child(Button("Zoom", automation_id="PowerPoint.View.Zoom"))
        zoom.add_child(Button("Fit to Window", automation_id="PowerPoint.View.FitToWindow"))

    # ------------------------------------------------------------------
    # contextual tabs (visible only when a matching shape is selected)
    # ------------------------------------------------------------------
    def _build_contextual_tabs(self) -> None:
        self.ribbon.add_tab("Picture Format", visible=False,
                            description="Tools for the selected picture")
        adjust = self.ribbon.add_group("Picture Format", "Adjust")
        adjust.add_child(Button("Corrections", automation_id="PowerPoint.PictureFormat.Corrections"))
        adjust.add_child(Button("Color", automation_id="PowerPoint.PictureFormat.Color"))
        adjust.add_child(Button("Compress Pictures",
                                automation_id="PowerPoint.PictureFormat.Compress"))
        styles = self.ribbon.add_group("Picture Format", "Picture Styles")
        styles.add_child(build_gallery_button(
            "Picture Styles", tuple(f"Picture Style {i}" for i in range(1, 9)),
            automation_id="PowerPoint.PictureFormat.Styles",
            on_choice=lambda _s: None,
        ))
        styles.add_child(build_color_dropdown(
            "Picture Border",
            automation_id="PowerPoint.PictureFormat.Border",
            on_choice=lambda color: self.presentation.apply_format_to_selection(outline_color=color),
        ))
        size = self.ribbon.add_group("Picture Format", "Size")
        size.add_child(Spinner("Picture Height", value=200.0, maximum=2000.0,
                               automation_id="PowerPoint.PictureFormat.Height",
                               on_change=lambda v: self._resize_selected(height=v)))
        size.add_child(Spinner("Picture Width", value=300.0, maximum=2000.0,
                               automation_id="PowerPoint.PictureFormat.Width",
                               on_change=lambda v: self._resize_selected(width=v)))
        size.add_child(Button("Crop", automation_id="PowerPoint.PictureFormat.Crop"))

        self.ribbon.add_tab("Shape Format", visible=False,
                            description="Tools for the selected shape or text box")
        shape_styles = self.ribbon.add_group("Shape Format", "Shape Styles")
        shape_styles.add_child(build_color_dropdown(
            "Shape Fill (Format)",
            automation_id="PowerPoint.ShapeFormat.Fill",
            on_choice=lambda color: self.presentation.apply_format_to_selection(fill_color=color),
        ))
        shape_styles.add_child(build_color_dropdown(
            "Shape Outline (Format)",
            automation_id="PowerPoint.ShapeFormat.Outline",
            on_choice=lambda color: self.presentation.apply_format_to_selection(outline_color=color),
        ))
        wordart = self.ribbon.add_group("Shape Format", "WordArt Styles")
        wordart.add_child(build_color_dropdown(
            "Text Fill",
            automation_id="PowerPoint.ShapeFormat.TextFill",
            on_choice=lambda color: self.presentation.apply_format_to_selection(font_color=color),
        ))
        shape_size = self.ribbon.add_group("Shape Format", "Size")
        shape_size.add_child(Spinner("Shape Height", value=100.0, maximum=2000.0,
                                     automation_id="PowerPoint.ShapeFormat.Height",
                                     on_change=lambda v: self._resize_selected(height=v)))
        shape_size.add_child(Spinner("Shape Width", value=200.0, maximum=2000.0,
                                     automation_id="PowerPoint.ShapeFormat.Width",
                                     on_change=lambda v: self._resize_selected(width=v)))

    # ------------------------------------------------------------------
    # slide area
    # ------------------------------------------------------------------
    def _build_slide_area(self) -> None:
        area = Pane(name="Presentation Area", automation_id="PowerPoint.PresentationArea")
        self.window.add_child(area)

        self.thumbnail_list = ListBox(name="Slide Thumbnails",
                                      automation_id="PowerPoint.Thumbnails")
        area.add_child(self.thumbnail_list)

        self.slide_pane = Pane(name="Slide", automation_id="PowerPoint.Slide",
                               description="The slide editing surface")
        area.add_child(self.slide_pane)

        self.notes_edit = Edit("Notes", automation_id="PowerPoint.NotesPane",
                               description="Speaker notes for the current slide",
                               on_change=lambda text: self.presentation.set_notes(text))
        area.add_child(self.notes_edit)

        self.scrollbar = ScrollBarControl("Vertical Scroll Bar",
                                          automation_id="PowerPoint.VScroll",
                                          orientation="vertical",
                                          on_scroll=self._scrolled)
        area.add_child(self.scrollbar)

        self._rebuild_slide_views()

    def _rebuild_slide_views(self) -> None:
        """Rebuild the thumbnail list and shape controls for the active slide."""
        self.thumbnail_list.clear_children()
        for index, slide in enumerate(self.presentation.slides):
            label = f"Slide {index + 1}"
            self.thumbnail_list.add_item(ListItemControl(
                label,
                automation_id=f"PowerPoint.Thumbnail.{index + 1}",
                on_select=lambda i=index: self._activate_slide(i),
            ))
        self.slide_pane.clear_children()
        for shape in self.presentation.active_slide.shapes:
            shape_control = ListItemControl(
                shape.name,
                automation_id=f"PowerPoint.Shape.{shape.name.replace(' ', '')}",
                description=f"{shape.shape_type} shape on the current slide",
                on_select=lambda s=shape: self._select_shape(s),
            )
            shape_control.text = shape.text
            shape_control.properties["shape_type"] = shape.shape_type
            self.slide_pane.add_child(shape_control)
        self.desktop.relayout()

    def _build_status_bar(self) -> None:
        status = StatusBar(name="Status Bar", automation_id="PowerPoint.StatusBar")
        self.window.add_child(status)
        status.add_child(TextLabel(
            f"Slide {self.presentation.active_index + 1} of {self.presentation.slide_count()}",
            automation_id="PowerPoint.Status.Slide"))

    def _register_shortcuts(self) -> None:
        self.register_shortcut("ctrl+s", self.presentation.save)
        self.register_shortcut("ctrl+m", lambda: self._new_slide("Title and Content"))
        self.register_shortcut("f5", lambda: self.presentation.start_slideshow(True))

    # ------------------------------------------------------------------
    # command handlers
    # ------------------------------------------------------------------
    def _new_slide(self, layout: str) -> None:
        self.presentation.add_slide(layout=layout, title="")
        self._rebuild_slide_views()

    def _duplicate_active_slide(self) -> None:
        self.presentation.duplicate_slide(self.presentation.active_index)
        self._rebuild_slide_views()

    def _delete_active_slide(self) -> None:
        if self.presentation.slide_count() > 1:
            self.presentation.delete_slide(self.presentation.active_index)
            self._rebuild_slide_views()

    def _activate_slide(self, index: int) -> None:
        self.presentation.goto_slide(index)
        self._rebuild_slide_views()

    def _insert_text_box(self) -> None:
        shape = self.presentation.active_slide.add_text_box("New text box")
        self.presentation.select_shape(shape)
        self._rebuild_slide_views()

    def _insert_picture(self) -> None:
        shape = self.presentation.active_slide.add_picture("inserted_image.png")
        self.presentation.select_shape(shape)
        self._rebuild_slide_views()
        self._update_contextual_tabs()

    def _insert_shape(self, kind: str) -> None:
        shape = Shape(shape_type=kind.lower().replace(" ", "_"))
        self.presentation.active_slide.add_shape(shape)
        self.presentation.select_shape(shape)
        self._rebuild_slide_views()

    def _select_shape(self, shape: Shape) -> None:
        self.presentation.select_shape(shape)
        self._update_contextual_tabs()

    def _update_contextual_tabs(self) -> None:
        """Show/hide the contextual ribbon tabs based on the selected shape."""
        shape = self.presentation.selected_shape
        picture_tab = self.ribbon.tabs["Picture Format"]
        shape_tab = self.ribbon.tabs["Shape Format"]
        picture_tab.visible = shape is not None and shape.shape_type == "picture"
        shape_tab.visible = shape is not None and shape.shape_type != "picture"
        self.desktop.relayout()

    def _resize_selected(self, width: Optional[float] = None, height: Optional[float] = None) -> None:
        shape = self.presentation.selected_shape
        if shape is None:
            return
        if width is not None:
            shape.width = width
        if height is not None:
            shape.height = height

    def _apply_transition_to_all(self) -> None:
        effect = self.presentation.active_slide.transition.effect
        duration = self.presentation.active_slide.transition.duration_seconds
        self.presentation.set_transition(effect, apply_to_all=True, duration_seconds=duration)

    def _scrolled(self, percent: float) -> None:
        self.presentation.scroll_to(percent)
        self._rebuild_slide_views()

    # ------------------------------------------------------------------
    # ripping contexts
    # ------------------------------------------------------------------
    def _context_select_picture(self) -> None:
        """Exploration context: ensure a picture exists and is selected."""
        slide = self.presentation.active_slide
        picture = next((s for s in slide.shapes if s.shape_type == "picture"), None)
        if picture is None:
            picture = slide.add_picture("context_image.png", name="Context Picture")
            self._rebuild_slide_views()
        self._select_shape(picture)

    def _context_select_text_box(self) -> None:
        """Exploration context: ensure a text box exists and is selected."""
        slide = self.presentation.active_slide
        box = next((s for s in slide.shapes if s.shape_type == "text_box"), None)
        if box is None:
            box = slide.add_text_box("Context text box", name="Context Text Box")
            self._rebuild_slide_views()
        self._select_shape(box)

    # ------------------------------------------------------------------
    # dialogs and panes
    # ------------------------------------------------------------------
    def _open_format_background(self) -> None:
        """The Format Background pane (paper Task 1's destination)."""
        pending = {"fill_type": self.presentation.active_slide.background.fill_type,
                   "color": self.presentation.active_slide.background.color}

        def apply_current() -> None:
            self.presentation.set_background(pending["color"], fill_type=pending["fill_type"],
                                             apply_to_all=False)

        def apply_to_all() -> None:
            self.presentation.set_background(pending["color"], fill_type=pending["fill_type"],
                                             apply_to_all=True)

        def choose_color(color: str) -> None:
            pending["color"] = color
            apply_current()

        dialog = Dialog("Format Background", with_buttons=True)
        fill_group = Group(name="Fill", automation_id="FormatBackground.Fill")
        dialog.add_child(fill_group)
        fill_group.add_child(RadioButton(
            "Solid fill", automation_id="FormatBackground.SolidFill",
            description="Fill the background with a single color",
            on_select=lambda sel: pending.update(fill_type="solid") if sel else None))
        fill_group.add_child(RadioButton(
            "Gradient fill", automation_id="FormatBackground.GradientFill",
            on_select=lambda sel: pending.update(fill_type="gradient") if sel else None))
        fill_group.add_child(RadioButton(
            "Picture or texture fill", automation_id="FormatBackground.PictureFill",
            on_select=lambda sel: pending.update(fill_type="picture") if sel else None))
        fill_group.add_child(RadioButton(
            "Pattern fill", automation_id="FormatBackground.PatternFill",
            on_select=lambda sel: pending.update(fill_type="pattern") if sel else None))
        fill_group.add_child(build_color_dropdown(
            "Fill Color",
            automation_id="FormatBackground.FillColor",
            description="Choose the background fill color",
            on_choice=choose_color,
        ))
        transparency = Spinner("Transparency", value=0.0, maximum=100.0,
                               automation_id="FormatBackground.Transparency")
        fill_group.add_child(transparency)
        actions = Group(name="Background actions", automation_id="FormatBackground.Actions")
        dialog.add_child(actions)
        actions.add_child(Button("Apply to All", automation_id="FormatBackground.ApplyToAll",
                                 description="Apply the background to every slide",
                                 on_click=apply_to_all))
        actions.add_child(Button("Reset Background", automation_id="FormatBackground.Reset",
                                 on_click=lambda: self.presentation.set_background("White")))
        self.open_dialog(dialog)

    def _open_header_footer_dialog(self) -> None:
        builder = DialogBuilder("Header and Footer")
        dialog = builder.build()
        slide_page = builder.add_tab("Slide")
        builder.add_checkbox(slide_page, "Date and time")
        builder.add_checkbox(slide_page, "Slide number")
        builder.add_checkbox(slide_page, "Footer")
        builder.add_edit(slide_page, "Footer text",
                         on_commit=lambda text: None)
        notes_page = builder.add_tab("Notes and Handouts")
        builder.add_checkbox(notes_page, "Page number", checked=True)
        self.open_dialog(dialog)

    def _open_save_as_dialog(self) -> None:
        chosen = {"name": self.presentation.name, "format": self.presentation.file_format}

        def commit() -> None:
            self.presentation.name = chosen["name"]
            self.presentation.save(file_format=chosen["format"])

        builder = DialogBuilder("Save As", on_ok=commit)
        dialog = builder.build()
        builder.add_edit(dialog, "File name", value=self.presentation.name,
                         on_commit=lambda v: chosen.update(name=v))
        builder.add_combo(dialog, "Save as type", choices=("pptx", "ppt", "pdf", "potx"),
                          value=self.presentation.file_format,
                          on_change=lambda v: chosen.update(format=v))
        self.open_dialog(dialog)
