"""The Word-like application.

``WordApp`` wires a ribbon UI (Home, Insert, Layout, Design, Review, View and
a File menu), nested modal dialogs (Find and Replace, Font, Paragraph, Page
Setup, Word Count, Colors, Save As) and a document surface to the
:class:`repro.apps.document.Document` model.

The UI deliberately reproduces the structural properties the paper leans on:

* deep navigation (tab -> group -> split button -> gallery cell, depth > 6);
* a *shared* Colors dialog reachable from Font Color, Page Color and Shading
  (a merge node whose semantics depend on the path used to reach it);
* the Find and Replace dialog's ``More >>`` / ``<< Less`` buttons, which form
  a cycle in the UI Navigation Graph;
* large enumerations (font families) that the core topology prunes.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.apps.base import Application
from repro.apps.document import Document, sample_document
from repro.gui.ribbon import (
    DialogBuilder,
    RibbonBuilder,
    build_color_dropdown,
    build_font_controls,
    build_gallery_button,
    build_menu_button,
)
from repro.gui.widgets import (
    Button,
    CheckBox,
    DocumentControl,
    Edit,
    Group,
    Menu,
    MenuItem,
    Pane,
    ScrollBarControl,
    SplitButton,
    StatusBar,
    TextLabel,
)

#: Paragraph styles offered by the style gallery.
PARAGRAPH_STYLES = (
    "Normal", "No Spacing", "Heading 1", "Heading 2", "Heading 3", "Title",
    "Subtitle", "Subtle Emphasis", "Emphasis", "Intense Emphasis", "Strong",
    "Quote", "Intense Quote", "List Paragraph",
)

#: Margin presets exposed by Layout > Margins.
MARGIN_PRESETS = {
    "Normal": {"top": 2.54, "bottom": 2.54, "left": 3.18, "right": 3.18},
    "Narrow": {"top": 1.27, "bottom": 1.27, "left": 1.27, "right": 1.27},
    "Moderate": {"top": 2.54, "bottom": 2.54, "left": 1.91, "right": 1.91},
    "Wide": {"top": 2.54, "bottom": 2.54, "left": 5.08, "right": 5.08},
}

LINE_SPACINGS = ("1.0", "1.15", "1.5", "2.0", "2.5", "3.0")

THEMES = ("Office", "Facet", "Integral", "Ion", "Retrospect", "Slice", "Wisp", "Banded")


class WordApp(Application):
    """The simulated word processor."""

    APP_NAME = "Word"

    def __init__(self, desktop=None, document: Optional[Document] = None) -> None:
        self.document = document if document is not None else sample_document()
        super().__init__(desktop=desktop)

    # ------------------------------------------------------------------
    def document_title(self) -> str:
        return self.document.title

    @property
    def state(self) -> Document:
        return self.document

    # ------------------------------------------------------------------
    def build_ui(self) -> None:
        self.ribbon = RibbonBuilder(self.window, self.APP_NAME)
        self._build_file_menu()
        self._build_home_tab()
        self._build_insert_tab()
        self._build_layout_tab()
        self._build_design_tab()
        self._build_review_tab()
        self._build_view_tab()
        self._build_document_area()
        self._build_status_bar()
        self._register_shortcuts()
        self.ribbon.select_tab("Home")

    # ------------------------------------------------------------------
    # File menu
    # ------------------------------------------------------------------
    def _build_file_menu(self) -> None:
        panel = self.ribbon.add_tab("File", description="File operations (Backstage view)")
        group = self.ribbon.add_group("File", "Backstage")
        group.add_child(Button("Save", automation_id="Word.File.Save",
                               description="Save the document",
                               on_click=lambda: self.document.save()))
        group.add_child(Button("Save As", automation_id="Word.File.SaveAs",
                               description="Save the document under a new name or format",
                               on_click=self._open_save_as_dialog))
        group.add_child(Button("Export as PDF", automation_id="Word.File.ExportPDF",
                               description="Export the document as a PDF file",
                               on_click=lambda: self.document.save(file_format="pdf")))
        group.add_child(Button("Print", automation_id="Word.File.Print",
                               description="Print the document",
                               on_click=lambda: None))
        group.add_child(Button("Close Document", automation_id="Word.File.Close",
                               description="Close the current document",
                               on_click=lambda: None))
        info = Group(name="Info", automation_id="Word.File.Info",
                     description="Document properties")
        panel.add_child(info)
        info.add_child(TextLabel("Document properties", automation_id="Word.File.Properties"))

    # ------------------------------------------------------------------
    # Home tab
    # ------------------------------------------------------------------
    def _build_home_tab(self) -> None:
        self.ribbon.add_tab("Home", description="Common formatting commands")

        clipboard = self.ribbon.add_group("Home", "Clipboard")
        clipboard.add_child(Button("Paste", automation_id="Word.Home.Paste",
                                   description="Paste the clipboard contents"))
        clipboard.add_child(Button("Cut", automation_id="Word.Home.Cut"))
        clipboard.add_child(Button("Copy", automation_id="Word.Home.Copy"))
        clipboard.add_child(Button("Format Painter", automation_id="Word.Home.FormatPainter"))

        font_group = self.ribbon.add_group("Home", "Font", description="Character formatting")
        for combo in build_font_controls(
            "Word.Home",
            on_font=lambda value: self.document.apply_format(font=value),
            on_size=lambda value: self.document.apply_format(size=float(value)),
        ):
            font_group.add_child(combo)
        font_group.add_child(Button("Bold", automation_id="Word.Home.Bold",
                                    description="Make the selected text bold",
                                    on_click=lambda: self.document.toggle_format_flag("bold")))
        font_group.add_child(Button("Italic", automation_id="Word.Home.Italic",
                                    description="Italicize the selected text",
                                    on_click=lambda: self.document.toggle_format_flag("italic")))
        underline = SplitButton("Underline", automation_id="Word.Home.Underline",
                                description="Underline the selected text",
                                on_click=lambda: self.document.toggle_format_flag("underline"))
        underline.add_child(build_color_dropdown(
            "Underline Color",
            automation_id="Word.Home.UnderlineColor",
            description="Choose the underline color",
            on_choice=lambda color: self.document.apply_format(underline=True, color=color),
        ))
        font_group.add_child(underline)
        font_group.add_child(Button("Strikethrough", automation_id="Word.Home.Strikethrough",
                                    on_click=lambda: self.document.toggle_format_flag("strikethrough")))
        font_group.add_child(Button("Subscript", automation_id="Word.Home.Subscript",
                                    description="Type very small letters below the text baseline",
                                    on_click=lambda: self.document.toggle_format_flag("subscript")))
        font_group.add_child(Button("Superscript", automation_id="Word.Home.Superscript",
                                    on_click=lambda: self.document.toggle_format_flag("superscript")))
        font_color = build_color_dropdown(
            "Font Color",
            automation_id="Word.Home.FontColor",
            description="Change the color of the selected text",
            on_choice=self._set_font_color,
        )
        font_group.add_child(font_color)
        highlight = build_color_dropdown(
            "Text Highlight Color",
            automation_id="Word.Home.Highlight",
            description="Highlight the selected text",
            include_more_colors=False,
            extra_items=("No Color",),
            on_choice=lambda color: self.document.apply_format(
                highlight=None if color == "No Color" else color),
        )
        font_group.add_child(highlight)
        font_group.add_child(Button("Clear All Formatting", automation_id="Word.Home.ClearFormat",
                                    on_click=self._clear_formatting))
        font_group.add_child(Button("Font Dialog Launcher", automation_id="Word.Home.FontDialog",
                                    description="Open the Font dialog",
                                    on_click=self._open_font_dialog))

        paragraph = self.ribbon.add_group("Home", "Paragraph", description="Paragraph layout")
        paragraph.add_child(Button("Align Left", automation_id="Word.Home.AlignLeft",
                                   on_click=lambda: self.document.apply_format(alignment="left")))
        paragraph.add_child(Button("Center", automation_id="Word.Home.Center",
                                   description="Center the selected text",
                                   on_click=lambda: self.document.apply_format(alignment="center")))
        paragraph.add_child(Button("Align Right", automation_id="Word.Home.AlignRight",
                                   on_click=lambda: self.document.apply_format(alignment="right")))
        paragraph.add_child(Button("Justify", automation_id="Word.Home.Justify",
                                   on_click=lambda: self.document.apply_format(alignment="justify")))
        paragraph.add_child(build_gallery_button(
            "Line and Paragraph Spacing", LINE_SPACINGS,
            automation_id="Word.Home.LineSpacing",
            description="Set the spacing between lines of the selection",
            on_choice=lambda value: self.document.apply_format(line_spacing=float(value)),
        ))
        paragraph.add_child(Button("Bullets", automation_id="Word.Home.Bullets"))
        paragraph.add_child(Button("Numbering", automation_id="Word.Home.Numbering"))
        paragraph.add_child(build_color_dropdown(
            "Shading",
            automation_id="Word.Home.Shading",
            description="Shade the background behind the selected text",
            on_choice=lambda color: self.document.apply_format(highlight=color),
        ))
        paragraph.add_child(Button("Paragraph Dialog Launcher",
                                   automation_id="Word.Home.ParagraphDialog",
                                   on_click=self._open_paragraph_dialog))

        styles = self.ribbon.add_group("Home", "Styles", description="Paragraph styles")
        styles.add_child(build_gallery_button(
            "Styles", PARAGRAPH_STYLES,
            automation_id="Word.Home.Styles",
            description="Apply a paragraph style to the selection",
            on_choice=lambda style: self.document.apply_format(style=style),
        ))

        editing = self.ribbon.add_group("Home", "Editing")
        editing.add_child(Button("Find", automation_id="Word.Home.Find",
                                 description="Find text in the document",
                                 on_click=lambda: self._open_find_replace(tab="Find")))
        editing.add_child(Button("Replace", automation_id="Word.Home.Replace",
                                 description="Find and replace text in the document",
                                 on_click=lambda: self._open_find_replace(tab="Replace")))
        editing.add_child(build_menu_button(
            "Select", {
                "Select All": self.document.select_all,
                "Selection Pane": lambda: None,
            },
            automation_id="Word.Home.Select",
            description="Select text or objects",
        ))

    # ------------------------------------------------------------------
    # Insert tab
    # ------------------------------------------------------------------
    def _build_insert_tab(self) -> None:
        self.ribbon.add_tab("Insert", description="Insert pages, tables, pictures and text")
        pages = self.ribbon.add_group("Insert", "Pages")
        pages.add_child(Button("Cover Page", automation_id="Word.Insert.CoverPage",
                               on_click=lambda: self.document.insert_paragraph(0, "Cover Page")))
        pages.add_child(Button("Blank Page", automation_id="Word.Insert.BlankPage",
                               on_click=lambda: self.document.add_paragraph("")))
        pages.add_child(Button("Page Break", automation_id="Word.Insert.PageBreak",
                               on_click=lambda: self.document.add_paragraph("[Page Break]")))

        tables = self.ribbon.add_group("Insert", "Tables")
        tables.add_child(build_gallery_button(
            "Table", tuple(f"{r}x{c} Table" for r in range(1, 5) for c in range(1, 5)),
            automation_id="Word.Insert.Table",
            description="Insert a table",
            on_choice=lambda size: self.document.add_paragraph(f"[Table {size}]"),
        ))

        illustrations = self.ribbon.add_group("Insert", "Illustrations")
        illustrations.add_child(Button("Pictures", automation_id="Word.Insert.Pictures",
                                       description="Insert a picture from this device",
                                       on_click=lambda: self.document.add_paragraph("[Picture]")))
        illustrations.add_child(build_gallery_button(
            "Shapes", ("Rectangle", "Oval", "Arrow", "Line", "Star"),
            automation_id="Word.Insert.Shapes",
            on_choice=lambda shape: self.document.add_paragraph(f"[Shape {shape}]"),
        ))
        illustrations.add_child(Button("Chart", automation_id="Word.Insert.Chart",
                                       on_click=lambda: self.document.add_paragraph("[Chart]")))

        header_footer = self.ribbon.add_group("Insert", "Header & Footer")
        header_footer.add_child(build_menu_button(
            "Header", {
                "Edit Header": lambda: self._open_header_footer_dialog("header"),
                "Remove Header": lambda: self._set_header(""),
            },
            automation_id="Word.Insert.Header",
            description="Edit the document header",
        ))
        header_footer.add_child(build_menu_button(
            "Footer", {
                "Edit Footer": lambda: self._open_header_footer_dialog("footer"),
                "Remove Footer": lambda: self._set_footer(""),
            },
            automation_id="Word.Insert.Footer",
            description="Edit the document footer",
        ))
        header_footer.add_child(build_gallery_button(
            "Page Number", ("Top of Page", "Bottom of Page", "Page Margins", "Remove Page Numbers"),
            automation_id="Word.Insert.PageNumber",
            on_choice=lambda where: self._set_footer("Page [n]" if where != "Remove Page Numbers" else ""),
        ))

        text_group = self.ribbon.add_group("Insert", "Text")
        text_group.add_child(Button("Text Box", automation_id="Word.Insert.TextBox",
                                    on_click=lambda: self.document.add_paragraph("[Text Box]")))
        text_group.add_child(build_gallery_button(
            "WordArt", tuple(f"WordArt Style {i}" for i in range(1, 13)),
            automation_id="Word.Insert.WordArt",
            on_choice=lambda style: self.document.add_paragraph(f"[WordArt {style}]"),
        ))
        text_group.add_child(Button("Date & Time", automation_id="Word.Insert.DateTime",
                                    on_click=lambda: self.document.add_paragraph("2026-06-16")))

    # ------------------------------------------------------------------
    # Layout tab
    # ------------------------------------------------------------------
    def _build_layout_tab(self) -> None:
        self.ribbon.add_tab("Layout", description="Page setup and arrangement")
        page_setup = self.ribbon.add_group("Layout", "Page Setup")
        page_setup.add_child(build_menu_button(
            "Margins", {
                **{name: (lambda preset=preset: self.document.set_margins(**preset))
                   for name, preset in MARGIN_PRESETS.items()},
                "Custom Margins...": self._open_page_setup_dialog,
            },
            automation_id="Word.Layout.Margins",
            description="Set the page margins",
        ))
        page_setup.add_child(build_menu_button(
            "Orientation", {
                "Portrait": lambda: self.document.set_orientation("portrait"),
                "Landscape": lambda: self.document.set_orientation("landscape"),
            },
            automation_id="Word.Layout.Orientation",
            description="Switch the page between portrait and landscape",
        ))
        page_setup.add_child(build_gallery_button(
            "Size", ("Letter", "Legal", "A3", "A4", "A5", "B5"),
            automation_id="Word.Layout.Size",
            description="Choose the paper size",
            on_choice=lambda size: setattr(self.document, "page_size", size),
        ))
        page_setup.add_child(build_gallery_button(
            "Columns", ("One", "Two", "Three", "Left", "Right"),
            automation_id="Word.Layout.Columns",
            on_choice=lambda _c: None,
        ))
        page_setup.add_child(Button("Page Setup Dialog Launcher",
                                    automation_id="Word.Layout.PageSetupDialog",
                                    description="Open the Page Setup dialog",
                                    on_click=self._open_page_setup_dialog))

        paragraph_group = self.ribbon.add_group("Layout", "Paragraph")
        paragraph_group.add_child(Button("Indent Left", automation_id="Word.Layout.IndentLeft"))
        paragraph_group.add_child(Button("Indent Right", automation_id="Word.Layout.IndentRight"))
        paragraph_group.add_child(Button("Spacing Before", automation_id="Word.Layout.SpacingBefore"))
        paragraph_group.add_child(Button("Spacing After", automation_id="Word.Layout.SpacingAfter"))

    # ------------------------------------------------------------------
    # Design tab
    # ------------------------------------------------------------------
    def _build_design_tab(self) -> None:
        self.ribbon.add_tab("Design", description="Document themes and page background")
        formatting = self.ribbon.add_group("Design", "Document Formatting")
        formatting.add_child(build_gallery_button(
            "Themes", THEMES,
            automation_id="Word.Design.Themes",
            description="Apply a document theme",
            on_choice=lambda _t: None,
        ))
        formatting.add_child(build_gallery_button(
            "Style Set", ("Default", "Basic", "Casual", "Centered", "Lines", "Shaded"),
            automation_id="Word.Design.StyleSet",
            on_choice=lambda _s: None,
        ))

        background = self.ribbon.add_group("Design", "Page Background")
        background.add_child(build_gallery_button(
            "Watermark", ("CONFIDENTIAL", "DO NOT COPY", "DRAFT", "SAMPLE", "Remove Watermark"),
            automation_id="Word.Design.Watermark",
            on_choice=lambda text: setattr(self.document, "header_text",
                                           "" if text == "Remove Watermark" else text),
        ))
        background.add_child(build_color_dropdown(
            "Page Color",
            automation_id="Word.Design.PageColor",
            description="Change the color of the page background",
            on_choice=self._set_page_color,
        ))
        background.add_child(Button("Page Borders", automation_id="Word.Design.PageBorders",
                                    description="Add or change the page border",
                                    on_click=self._open_page_borders_dialog))

    # ------------------------------------------------------------------
    # Review tab
    # ------------------------------------------------------------------
    def _build_review_tab(self) -> None:
        self.ribbon.add_tab("Review", description="Proofing, comments and tracking")
        proofing = self.ribbon.add_group("Review", "Proofing")
        proofing.add_child(Button("Spelling & Grammar", automation_id="Word.Review.Spelling"))
        proofing.add_child(Button("Word Count", automation_id="Word.Review.WordCount",
                                  description="Show document statistics",
                                  on_click=self._open_word_count_dialog))
        proofing.add_child(Button("Thesaurus", automation_id="Word.Review.Thesaurus"))

        tracking = self.ribbon.add_group("Review", "Tracking")
        tracking.add_child(Button("Track Changes", automation_id="Word.Review.TrackChanges",
                                  description="Keep track of changes made to the document",
                                  on_click=self._toggle_track_changes))
        tracking.add_child(Button("Accept All Changes", automation_id="Word.Review.AcceptAll"))

        comments = self.ribbon.add_group("Review", "Comments")
        comments.add_child(Button("New Comment", automation_id="Word.Review.NewComment"))
        comments.add_child(Button("Delete Comment", automation_id="Word.Review.DeleteComment"))

    # ------------------------------------------------------------------
    # View tab
    # ------------------------------------------------------------------
    def _build_view_tab(self) -> None:
        self.ribbon.add_tab("View", description="Document views and zoom")
        views = self.ribbon.add_group("View", "Views")
        for mode in ("Read Mode", "Print Layout", "Web Layout", "Outline", "Draft"):
            views.add_child(Button(mode, automation_id=f"Word.View.{mode.replace(' ', '')}"))
        show = self.ribbon.add_group("View", "Show")
        show.add_child(CheckBox("Ruler", automation_id="Word.View.Ruler"))
        show.add_child(CheckBox("Gridlines", automation_id="Word.View.Gridlines"))
        show.add_child(CheckBox("Navigation Pane", automation_id="Word.View.NavPane"))
        zoom = self.ribbon.add_group("View", "Zoom")
        zoom.add_child(Button("Zoom", automation_id="Word.View.Zoom",
                              description="Open the Zoom dialog",
                              on_click=self._open_zoom_dialog))
        zoom.add_child(Button("100%", automation_id="Word.View.Zoom100",
                              on_click=lambda: self.document.set_zoom(100.0)))
        zoom.add_child(Button("One Page", automation_id="Word.View.OnePage"))
        zoom.add_child(Button("Multiple Pages", automation_id="Word.View.MultiplePages"))

    # ------------------------------------------------------------------
    # document area and status bar
    # ------------------------------------------------------------------
    def _build_document_area(self) -> None:
        area = Pane(name="Document Area", automation_id="Word.DocumentArea")
        self.window.add_child(area)
        self.editor = DocumentControl("Document", automation_id="Word.Document",
                                      provider=self.document,
                                      description="The document editing surface")
        area.add_child(self.editor)
        self.scrollbar = ScrollBarControl("Vertical Scroll Bar",
                                          automation_id="Word.VScroll",
                                          orientation="vertical",
                                          on_scroll=self.document.scroll_to)
        area.add_child(self.scrollbar)

    def _build_status_bar(self) -> None:
        status = StatusBar(name="Status Bar", automation_id="Word.StatusBar")
        self.window.add_child(status)
        status.add_child(TextLabel(f"Words: {self.document.word_count()}",
                                   automation_id="Word.Status.Words"))
        status.add_child(TextLabel("Page 1 of 1", automation_id="Word.Status.Page"))

    def _register_shortcuts(self) -> None:
        self.register_shortcut("ctrl+s", self.document.save)
        self.register_shortcut("ctrl+a", self.document.select_all)
        self.register_shortcut("ctrl+b", lambda: self.document.toggle_format_flag("bold"))
        self.register_shortcut("ctrl+i", lambda: self.document.toggle_format_flag("italic"))
        self.register_shortcut("ctrl+u", lambda: self.document.toggle_format_flag("underline"))
        self.register_shortcut("ctrl+e", lambda: self.document.apply_format(alignment="center"))
        self.register_shortcut("ctrl+l", lambda: self.document.apply_format(alignment="left"))
        self.register_shortcut("ctrl+r", lambda: self.document.apply_format(alignment="right"))

    # ------------------------------------------------------------------
    # command handlers
    # ------------------------------------------------------------------
    def _set_font_color(self, color: str) -> None:
        if color == "Custom":
            self._open_colors_dialog(lambda chosen: self.document.apply_format(color=chosen))
        else:
            self.document.apply_format(color=color)

    def _set_page_color(self, color: str) -> None:
        if color == "Custom":
            self._open_colors_dialog(lambda chosen: setattr(self.document, "page_color", chosen))
        else:
            setattr(self.document, "page_color", color)

    def _clear_formatting(self) -> None:
        from repro.apps.document import TextFormat

        for paragraph in self.document.selected_paragraphs():
            paragraph.format = TextFormat()

    def _set_header(self, text: str) -> None:
        self.document.header_text = text

    def _set_footer(self, text: str) -> None:
        self.document.footer_text = text

    def _toggle_track_changes(self) -> None:
        self.document.tracked_changes = not self.document.tracked_changes

    # ------------------------------------------------------------------
    # dialogs
    # ------------------------------------------------------------------
    def _open_find_replace(self, tab: str = "Replace") -> None:
        """The Find and Replace dialog, including the More/Less cycle."""
        state = {"find": "", "replace": "", "match_case": False}

        def do_replace_all() -> None:
            self.document.replace_all(state["find"], state["replace"],
                                      match_case=state["match_case"])

        builder = DialogBuilder("Find and Replace")
        dialog = builder.build()
        find_page = builder.add_tab("Find")
        replace_page = builder.add_tab("Replace")
        goto_page = builder.add_tab("Go To")

        builder.add_edit(find_page, "Find what",
                         on_commit=lambda v: state.update(find=v))
        builder.add_edit(replace_page, "Find what (Replace)",
                         on_commit=lambda v: state.update(find=v))
        builder.add_edit(replace_page, "Replace with",
                         on_commit=lambda v: state.update(replace=v))
        builder.add_button(replace_page, "Replace All", do_replace_all)
        builder.add_button(replace_page, "Find Next", lambda: None)
        builder.add_edit(goto_page, "Enter page number",
                         on_commit=lambda v: None, requires_enter=True)

        # The "More >>" / "<< Less" pair forms a navigation cycle.
        advanced = Group(name="Search Options", automation_id="FindReplace.SearchOptions")
        advanced.visible = False
        dialog.add_child(advanced)
        advanced.add_child(CheckBox("Match case", automation_id="FindReplace.MatchCase",
                                    on_change=lambda v: state.update(match_case=v)))
        advanced.add_child(CheckBox("Find whole words only",
                                    automation_id="FindReplace.WholeWords"))
        advanced.add_child(CheckBox("Use wildcards", automation_id="FindReplace.Wildcards"))
        format_menu = build_menu_button(
            "Format", {
                "Font...": lambda: self._open_font_dialog(),
                "Paragraph...": lambda: self._open_paragraph_dialog(),
            },
            automation_id="FindReplace.Format",
            description="Restrict the search to specific formatting",
        )
        advanced.add_child(format_menu)

        more_button = Button("More >>", automation_id="FindReplace.More",
                             description="Show advanced search options")
        less_button = Button("<< Less", automation_id="FindReplace.Less",
                             description="Hide advanced search options")
        less_button.visible = False
        dialog.add_child(more_button)
        dialog.add_child(less_button)

        def show_more() -> None:
            advanced.visible = True
            less_button.visible = True
            more_button.visible = False

        def show_less() -> None:
            advanced.visible = False
            less_button.visible = False
            more_button.visible = True

        more_button.set_on_click(show_more)
        less_button.set_on_click(show_less)

        self.open_dialog(dialog)
        tabs = {"Find": 0, "Replace": 1, "Go To": 2}
        if tab in tabs:
            tab_control = dialog.find(name=tab, control_type="TabItem")
            if tab_control is not None:
                tab_control.select()

    def _open_font_dialog(self) -> None:
        builder = DialogBuilder("Font")
        dialog = builder.build()
        page = builder.add_tab("Font")
        advanced_page = builder.add_tab("Advanced")
        builder.add_combo(page, "Font name", choices=("Calibri", "Arial", "Times New Roman",
                                                      "Courier New", "Georgia", "Verdana"),
                          value="Calibri",
                          on_change=lambda v: self.document.apply_format(font=v))
        builder.add_combo(page, "Font style", choices=("Regular", "Italic", "Bold", "Bold Italic"),
                          value="Regular",
                          on_change=self._apply_font_style)
        builder.add_combo(page, "Size", choices=("8", "9", "10", "11", "12", "14", "16", "18"),
                          value="11", on_change=lambda v: self.document.apply_format(size=float(v)))
        builder.add_checkbox(page, "Strikethrough",
                             on_change=lambda v: self.document.apply_format(strikethrough=v))
        builder.add_checkbox(page, "Subscript",
                             on_change=lambda v: self.document.apply_format(subscript=v))
        builder.add_checkbox(page, "Superscript",
                             on_change=lambda v: self.document.apply_format(superscript=v))
        font_color = build_color_dropdown(
            "Font color (dialog)",
            automation_id="Font.FontColor",
            on_choice=lambda color: self.document.apply_format(color=color),
        )
        page.add_child(font_color)
        builder.add_combo(advanced_page, "Character spacing",
                          choices=("Normal", "Expanded", "Condensed"), value="Normal")
        builder.add_spinner(advanced_page, "Spacing by", value=0.0, minimum=0.0, maximum=100.0)
        self.open_dialog(dialog)

    def _apply_font_style(self, style: str) -> None:
        self.document.apply_format(bold="Bold" in style, italic="Italic" in style)

    def _open_paragraph_dialog(self) -> None:
        builder = DialogBuilder("Paragraph")
        dialog = builder.build()
        page = builder.add_tab("Indents and Spacing")
        builder.add_combo(page, "Alignment", choices=("Left", "Centered", "Right", "Justified"),
                          value="Left",
                          on_change=lambda v: self.document.apply_format(
                              alignment={"Left": "left", "Centered": "center",
                                         "Right": "right", "Justified": "justify"}[v]))
        builder.add_combo(page, "Line spacing", choices=LINE_SPACINGS, value="1.0",
                          on_change=lambda v: self.document.apply_format(line_spacing=float(v)))
        builder.add_spinner(page, "Spacing before", value=0.0, maximum=72.0)
        builder.add_spinner(page, "Spacing after", value=8.0, maximum=72.0)
        breaks_page = builder.add_tab("Line and Page Breaks")
        builder.add_checkbox(breaks_page, "Widow/Orphan control", checked=True)
        builder.add_checkbox(breaks_page, "Keep with next")
        self.open_dialog(dialog)

    def _open_page_setup_dialog(self) -> None:
        pending = dict(self.document.margins)

        def commit() -> None:
            self.document.set_margins(**pending)

        builder = DialogBuilder("Page Setup", on_ok=commit)
        dialog = builder.build()
        margins_page = builder.add_tab("Margins")
        for edge in ("top", "bottom", "left", "right"):
            builder.add_spinner(
                margins_page, f"{edge.title()} margin", value=self.document.margins[edge],
                maximum=10.0,
                on_change=lambda v, e=edge: pending.__setitem__(e, v),
            )
        builder.add_radio_group(margins_page, "Orientation (dialog)", ("Portrait", "Landscape"),
                                on_select=lambda v: self.document.set_orientation(v.lower()))
        paper_page = builder.add_tab("Paper")
        builder.add_combo(paper_page, "Paper size", choices=("Letter", "Legal", "A3", "A4", "A5"),
                          value=self.document.page_size,
                          on_change=lambda v: setattr(self.document, "page_size", v))
        layout_page = builder.add_tab("Layout (Page Setup)")
        builder.add_combo(layout_page, "Vertical alignment", choices=("Top", "Center", "Bottom"),
                          value="Top")
        self.open_dialog(dialog)

    def _open_page_borders_dialog(self) -> None:
        builder = DialogBuilder("Borders and Shading")
        dialog = builder.build()
        page = builder.add_tab("Page Border")
        builder.add_combo(page, "Border style", choices=("None", "Box", "Shadow", "3-D"),
                          value="None")
        page.add_child(build_color_dropdown(
            "Border Color", automation_id="Borders.BorderColor",
            on_choice=lambda _c: None,
        ))
        self.open_dialog(dialog)

    def _open_word_count_dialog(self) -> None:
        builder = DialogBuilder("Word Count")
        dialog = builder.build()
        body = Pane(name="Statistics", automation_id="WordCount.Statistics")
        dialog.add_child(body)
        body.add_child(TextLabel(f"Words: {self.document.word_count()}",
                                 automation_id="WordCount.Words"))
        body.add_child(TextLabel(f"Paragraphs: {self.document.paragraph_count()}",
                                 automation_id="WordCount.Paragraphs"))
        body.add_child(TextLabel(f"Characters: {len(self.document.full_text())}",
                                 automation_id="WordCount.Characters"))
        self.open_dialog(dialog)

    def _open_zoom_dialog(self) -> None:
        builder = DialogBuilder("Zoom")
        dialog = builder.build()
        page = Pane(name="Zoom options", automation_id="Zoom.Options")
        dialog.add_child(page)
        builder.add_radio_group(page, "Zoom to", ("200%", "100%", "75%", "Page width"),
                                on_select=lambda v: self.document.set_zoom(
                                    float(v.rstrip("%")) if v.endswith("%") else 100.0))
        builder.add_spinner(page, "Percent", value=self.document.zoom_percent,
                            minimum=10.0, maximum=500.0,
                            on_change=self.document.set_zoom)
        self.open_dialog(dialog)

    def _open_header_footer_dialog(self, which: str) -> None:
        setter = self._set_header if which == "header" else self._set_footer
        builder = DialogBuilder(f"Edit {which.title()}")
        dialog = builder.build()
        builder.add_edit(dialog, f"{which.title()} text",
                         value=getattr(self.document, f"{which}_text"),
                         on_commit=setter)
        self.open_dialog(dialog)

    def _open_save_as_dialog(self) -> None:
        chosen = {"name": self.document.title, "format": self.document.file_format}

        def commit() -> None:
            self.document.title = chosen["name"]
            self.document.save(file_format=chosen["format"])

        builder = DialogBuilder("Save As", on_ok=commit)
        dialog = builder.build()
        builder.add_edit(dialog, "File name", value=self.document.title,
                         on_commit=lambda v: chosen.update(name=v))
        builder.add_combo(dialog, "Save as type",
                          choices=("docx", "doc", "pdf", "rtf", "txt"),
                          value=self.document.file_format,
                          on_change=lambda v: chosen.update(format=v))
        self.open_dialog(dialog)

    def _open_colors_dialog(self, on_choice: Callable[[str], None]) -> None:
        """The shared Colors dialog (a merge node: same identifiers, many paths)."""
        builder = DialogBuilder("Colors")
        dialog = builder.build()
        standard_page = builder.add_tab("Standard")
        custom_page = builder.add_tab("Custom")
        standard_page.add_child(build_gallery_button(
            "Standard color hexagon", ("Crimson", "Coral", "Amber", "Lime", "Emerald",
                                       "Turquoise", "Azure", "Indigo", "Magenta"),
            automation_id="Colors.Hexagon",
            on_choice=on_choice,
        ))
        builder.add_spinner(custom_page, "Red", value=0, maximum=255)
        builder.add_spinner(custom_page, "Green", value=0, maximum=255)
        builder.add_spinner(custom_page, "Blue", value=0, maximum=255)
        self.open_dialog(dialog)
