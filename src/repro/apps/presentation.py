"""The PowerPoint-like presentation model.

A :class:`Presentation` is a list of :class:`Slide` objects; each slide has a
background, a layout, optional transition/notes, and a list of
:class:`Shape` objects (text boxes, pictures, geometric shapes).  The model
covers the slide-level operations the benchmark tasks exercise: background
fills (single slide vs "apply to all"), inserting/removing shapes and slides,
text editing inside shapes, slide show settings and saving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class ShapeFormat:
    """Visual formatting of a shape."""

    fill_color: Optional[str] = None
    outline_color: Optional[str] = None
    outline_width: float = 1.0
    font: str = "Calibri"
    font_size: float = 18.0
    font_color: str = "Black"
    bold: bool = False
    italic: bool = False
    alignment: str = "left"


@dataclass
class Shape:
    """A shape placed on a slide."""

    shape_type: str                    # text_box | picture | rectangle | oval | arrow | chart
    name: str = ""
    text: str = ""
    left: float = 0.0
    top: float = 0.0
    width: float = 200.0
    height: float = 100.0
    rotation: float = 0.0
    format: ShapeFormat = field(default_factory=ShapeFormat)
    image_path: Optional[str] = None   # for pictures
    z_order: int = 0

    def contains_text(self) -> bool:
        return bool(self.text.strip())


@dataclass
class Background:
    """Slide background fill."""

    fill_type: str = "solid"       # solid | gradient | picture | pattern
    color: str = "White"
    gradient_to: Optional[str] = None


@dataclass
class Transition:
    """Slide transition settings."""

    effect: str = "None"           # None | Fade | Push | Wipe | Morph
    duration_seconds: float = 1.0
    advance_on_click: bool = True
    advance_after_seconds: Optional[float] = None


class Slide:
    """A single slide."""

    _counter = 0

    def __init__(self, layout: str = "Title and Content", title: str = ""):
        Slide._counter += 1
        self.slide_id = Slide._counter
        self.layout = layout
        self.background = Background()
        self.transition = Transition()
        self.shapes: List[Shape] = []
        self.notes: str = ""
        self.hidden: bool = False
        if title:
            self.add_text_box(title, name="Title", top=20.0, font_size=40.0)

    # ------------------------------------------------------------------
    def add_shape(self, shape: Shape) -> Shape:
        shape.z_order = len(self.shapes)
        if not shape.name:
            shape.name = f"{shape.shape_type.title().replace('_', ' ')} {len(self.shapes) + 1}"
        self.shapes.append(shape)
        return shape

    def add_text_box(self, text: str, name: str = "", left: float = 50.0, top: float = 100.0,
                     width: float = 600.0, height: float = 80.0, font_size: float = 18.0) -> Shape:
        shape = Shape(shape_type="text_box", name=name or f"TextBox {len(self.shapes) + 1}",
                      text=text, left=left, top=top, width=width, height=height)
        shape.format.font_size = font_size
        return self.add_shape(shape)

    def add_picture(self, image_path: str, name: str = "", left: float = 100.0,
                    top: float = 150.0, width: float = 300.0, height: float = 200.0) -> Shape:
        shape = Shape(shape_type="picture", name=name or f"Picture {len(self.shapes) + 1}",
                      image_path=image_path, left=left, top=top, width=width, height=height)
        return self.add_shape(shape)

    def remove_shape(self, shape: Shape) -> None:
        self.shapes.remove(shape)

    def shape_named(self, name: str) -> Optional[Shape]:
        for shape in self.shapes:
            if shape.name == name:
                return shape
        return None

    def title_text(self) -> str:
        title = self.shape_named("Title")
        return title.text if title is not None else ""

    def text_content(self) -> str:
        return "\n".join(s.text for s in self.shapes if s.contains_text())

    def pictures(self) -> List[Shape]:
        return [s for s in self.shapes if s.shape_type == "picture"]


class Presentation:
    """A deck of slides plus presentation-level state."""

    def __init__(self, name: str = "Presentation1", slide_count: int = 1):
        self.name = name
        self.slides: List[Slide] = [Slide(title=f"Slide {i + 1}") for i in range(slide_count)]
        self.active_index: int = 0
        self.selected_shape: Optional[Shape] = None
        self.slide_size: str = "16:9"
        self.saved: bool = True
        self.save_count: int = 0
        self.file_format: str = "pptx"
        self.slideshow_from: Optional[int] = None
        self.scroll_percent: float = 0.0

    # ------------------------------------------------------------------
    @property
    def active_slide(self) -> Slide:
        return self.slides[self.active_index]

    def slide_count(self) -> int:
        return len(self.slides)

    def goto_slide(self, index: int) -> Slide:
        if index < 0 or index >= len(self.slides):
            raise IndexError(f"slide index {index} out of range")
        self.active_index = index
        return self.active_slide

    def add_slide(self, layout: str = "Title and Content", title: str = "",
                  index: Optional[int] = None) -> Slide:
        slide = Slide(layout=layout, title=title)
        if index is None:
            self.slides.append(slide)
        else:
            self.slides.insert(index, slide)
        self.saved = False
        return slide

    def delete_slide(self, index: int) -> Slide:
        removed = self.slides.pop(index)
        self.active_index = min(self.active_index, len(self.slides) - 1)
        self.saved = False
        return removed

    def duplicate_slide(self, index: int) -> Slide:
        original = self.slides[index]
        copy = Slide(layout=original.layout)
        copy.shapes = []
        for shape in original.shapes:
            copy.add_shape(Shape(
                shape_type=shape.shape_type, name=shape.name, text=shape.text,
                left=shape.left, top=shape.top, width=shape.width, height=shape.height,
                rotation=shape.rotation, image_path=shape.image_path,
                format=ShapeFormat(**vars(shape.format)),
            ))
        copy.background = Background(**vars(original.background))
        self.slides.insert(index + 1, copy)
        self.saved = False
        return copy

    # ------------------------------------------------------------------
    # background
    # ------------------------------------------------------------------
    def set_background(self, color: str, fill_type: str = "solid",
                       apply_to_all: bool = False) -> int:
        """Set the background fill of the active slide (or every slide)."""
        targets = self.slides if apply_to_all else [self.active_slide]
        for slide in targets:
            slide.background = Background(fill_type=fill_type, color=color)
        self.saved = False
        return len(targets)

    # ------------------------------------------------------------------
    # shapes and selection
    # ------------------------------------------------------------------
    def select_shape(self, shape: Optional[Shape]) -> None:
        self.selected_shape = shape

    def selected_shape_format(self) -> Optional[ShapeFormat]:
        return self.selected_shape.format if self.selected_shape is not None else None

    def apply_format_to_selection(self, **attributes) -> bool:
        if self.selected_shape is None:
            return False
        for key, value in attributes.items():
            if not hasattr(self.selected_shape.format, key):
                raise AttributeError(f"unknown shape format attribute {key!r}")
            setattr(self.selected_shape.format, key, value)
        self.saved = False
        return True

    # ------------------------------------------------------------------
    # transitions, notes, slideshow
    # ------------------------------------------------------------------
    def set_transition(self, effect: str, apply_to_all: bool = False,
                       duration_seconds: float = 1.0) -> int:
        targets = self.slides if apply_to_all else [self.active_slide]
        for slide in targets:
            slide.transition = Transition(effect=effect, duration_seconds=duration_seconds)
        self.saved = False
        return len(targets)

    def set_notes(self, text: str, index: Optional[int] = None) -> None:
        slide = self.active_slide if index is None else self.slides[index]
        slide.notes = text
        self.saved = False

    def start_slideshow(self, from_beginning: bool = True) -> None:
        self.slideshow_from = 0 if from_beginning else self.active_index

    def scroll_to(self, percent: float) -> None:
        self.scroll_percent = max(0.0, min(100.0, percent))
        if self.slides:
            self.active_index = min(
                len(self.slides) - 1, int(round(self.scroll_percent / 100.0 * (len(self.slides) - 1)))
            )

    def save(self, file_format: Optional[str] = None) -> None:
        if file_format is not None:
            self.file_format = file_format
        self.saved = True
        self.save_count += 1

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "slides": len(self.slides),
            "active_index": self.active_index,
            "backgrounds": [s.background.color for s in self.slides],
            "saved": self.saved,
        }


def sample_presentation() -> Presentation:
    """A small deck used by examples and the benchmark tasks."""
    deck = Presentation(name="Product Launch", slide_count=5)
    deck.slides[0].shapes[0].text = "Product Launch"
    deck.slides[0].add_text_box("FY26 flagship announcement", name="Subtitle", top=200.0)
    deck.slides[1].shapes[0].text = "Agenda"
    deck.slides[1].add_text_box("Market\nProduct\nPricing\nTimeline", name="Body")
    deck.slides[2].shapes[0].text = "Market Overview"
    deck.slides[2].add_picture("market_chart.png", name="Market Chart")
    deck.slides[3].shapes[0].text = "Product Details"
    deck.slides[3].add_text_box("Feature matrix", name="Body")
    deck.slides[4].shapes[0].text = "Timeline"
    deck.slides[4].add_text_box("Q1 beta, Q2 GA", name="Body")
    return deck
