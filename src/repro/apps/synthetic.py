"""Seeded synthetic application/task generator (scenario scale-out).

The hand-written Word/Excel/PowerPoint apps cap the evaluation grid at 27
tasks; the shard/broker/fleet stack is never stressed at realistic depth.
This module generates *families* of applications and task suites from a
compact, canonical spec token:

* :class:`SyntheticSpec` — the generator knobs (ribbon width/depth, dialog
  chain length, an in-dialog UI cycle, context-dependent tabs, gallery and
  widget counts, task count) plus the seed.  ``SyntheticSpec.parse`` accepts
  either the canonical token (``s7-t3-g2-c3-y6-m3-d2-cy1-x1-n30``) or
  friendly ``key=value`` pairs (``seed=7,tasks=100``).
* :func:`topology_for` — a pure-data topology (control names, structure)
  derived deterministically from the spec.  Both the live application and
  the task suite are built from it, and :func:`topology_digest` hashes it,
  so "same seed ⇒ byte-identical topology" is checkable without ripping.
* :class:`SyntheticApp` — a real :class:`repro.apps.base.Application`
  speaking the ordinary widget/ribbon vocabulary: ribbon tabs × groups of
  state-backed toggle buttons, drop-down galleries and menus, a chain of
  nested modal dialogs (each opened from its predecessor), an optional
  More/Fewer expander cycle inside the first dialog (the Word
  Find-and-Replace idiom that exercises decycle), and hidden contextual
  tabs registered as exploration contexts.  All state lives in
  :class:`SyntheticState` and is checkable after a trial.
* property-based task families (:func:`synthetic_suite`) — set/check pairs
  over the generated state: turn a toggle on, pick a gallery choice, pick
  a menu item, fill a dialog field.  Checkers are frozen dataclasses
  (:class:`SyntheticCheck`) that compare equal across regenerations, so
  the :class:`~repro.bench.engine.ParallelExecutor`'s registry-equality
  validation holds and workers regenerate identical tasks by id alone.

Naming contract: the app registers as ``synthetic:<token>`` and tasks as
``syn:<token>:NNNN`` — an id alone carries everything any process needs to
regenerate the exact task, which is what lets generated grids flow through
every execution path (serial, parallel, file shards, dir broker, object
store) unchanged.

Determinism contract: every random draw comes from ``random.Random``
seeded with a string derived from the canonical token (string seeding is
SHA-512 based and stable across processes and platforms), and generated
suites are memoized per token so repeated ``task_by_id`` lookups are O(1)
and return equal objects.
"""

from __future__ import annotations

import hashlib
import json
import random
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.apps.base import Application
from repro.gui.ribbon import (
    DialogBuilder,
    RibbonBuilder,
    build_gallery_button,
    build_menu_button,
)
from repro.gui.widgets import Button
from repro.spec import FailureCause, Intent, IntentKind, TaskSpec

#: App-name prefix the rest of the stack dispatches on (``app_factory``,
#: ``TaskSpec`` validation, the artifact cache).
APP_PREFIX = "synthetic:"
#: Task-id prefix ``task_by_id`` dispatches on.
TASK_PREFIX = "syn:"

# ----------------------------------------------------------------------
# the spec and its token
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"^s(?P<seed>\d+)-t(?P<tabs>\d+)-g(?P<groups>\d+)-c(?P<controls>\d+)"
    r"-y(?P<gallery>\d+)-m(?P<menu>\d+)-d(?P<dialogs>\d+)"
    r"-cy(?P<cycle>[01])-x(?P<contexts>\d+)-n(?P<tasks>\d+)$")

#: ``key=value`` spellings accepted by :meth:`SyntheticSpec.parse`.
_FIELDS = ("seed", "tabs", "groups", "controls", "gallery", "menu",
           "dialogs", "cycle", "contexts", "tasks")


@dataclass(frozen=True)
class SyntheticSpec:
    """Generator knobs; the frozen identity of one synthetic scenario."""

    #: Seed for every name/structure/task draw.
    seed: int = 7
    #: Visible ribbon tabs.
    tabs: int = 3
    #: Command groups per tab.
    groups: int = 2
    #: Toggle buttons per group.
    controls: int = 3
    #: Choices per drop-down gallery (0 = no galleries).
    gallery: int = 6
    #: Items per drop-down menu (0 = no menus).
    menu: int = 3
    #: Length of the nested modal dialog chain.
    dialogs: int = 2
    #: Build the More/Fewer expander cycle inside the first dialog.
    cycle: bool = True
    #: Hidden contextual tabs (each registered as an exploration context).
    contexts: int = 1
    #: Number of generated tasks.
    tasks: int = 30

    def __post_init__(self) -> None:
        bounds = (("seed", self.seed, 0), ("tabs", self.tabs, 1),
                  ("groups", self.groups, 1), ("controls", self.controls, 1),
                  ("gallery", self.gallery, 0), ("menu", self.menu, 0),
                  ("dialogs", self.dialogs, 1), ("contexts", self.contexts, 0),
                  ("tasks", self.tasks, 1))
        for label, value, minimum in bounds:
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < minimum:
                raise ValueError(
                    f"synthetic spec: {label} must be an integer >= "
                    f"{minimum}, got {value!r}")

    def token(self) -> str:
        """The canonical compact token (round-trips through :meth:`parse`)."""
        return (f"s{self.seed}-t{self.tabs}-g{self.groups}-c{self.controls}"
                f"-y{self.gallery}-m{self.menu}-d{self.dialogs}"
                f"-cy{int(self.cycle)}-x{self.contexts}-n{self.tasks}")

    @property
    def app_name(self) -> str:
        return APP_PREFIX + self.token()

    def task_id(self, ordinal: int) -> str:
        return f"{TASK_PREFIX}{self.token()}:{ordinal:04d}"

    def grid_tasks(self) -> int:
        return self.tasks

    @classmethod
    def parse(cls, spec: str) -> "SyntheticSpec":
        """Parse a canonical token or friendly ``key=value`` pairs.

        Accepts an optional ``synthetic:`` prefix so app names parse
        directly.  Raises :class:`ValueError` with a usage hint on
        malformed input.
        """
        if not isinstance(spec, str):
            raise ValueError(f"synthetic spec must be a string, got {spec!r}")
        text = spec.strip()
        if text.startswith(APP_PREFIX):
            text = text[len(APP_PREFIX):]
        match = _TOKEN_RE.match(text)
        if match:
            values = {name: int(value)
                      for name, value in match.groupdict().items()}
            values["cycle"] = bool(values["cycle"])
            return cls(**values)
        if "=" in text:
            values = {}
            for part in re.split(r"[\s,;]+", text):
                if not part:
                    continue
                key, separator, value = part.partition("=")
                if not separator or key not in _FIELDS:
                    raise ValueError(
                        f"synthetic spec: unknown field {part!r}; fields are "
                        f"{', '.join(_FIELDS)}")
                if key in values:
                    raise ValueError(
                        f"synthetic spec: field {key!r} given twice")
                try:
                    values[key] = int(value)
                except ValueError as error:
                    raise ValueError(
                        f"synthetic spec: field {key!r} needs an integer, "
                        f"got {value!r}") from error
            if "cycle" in values:
                values["cycle"] = bool(values["cycle"])
            return cls(**values)
        raise ValueError(
            f"cannot parse synthetic spec {spec!r}; use the canonical token "
            "(e.g. 's7-t3-g2-c3-y6-m3-d2-cy1-x1-n30') or key=value pairs "
            "(e.g. 'seed=7,tasks=100')")


def _coerce(spec: Union[str, SyntheticSpec]) -> SyntheticSpec:
    return spec if isinstance(spec, SyntheticSpec) else SyntheticSpec.parse(spec)


def is_synthetic_app(name: str) -> bool:
    return isinstance(name, str) and name.startswith(APP_PREFIX)


def is_synthetic_task(task_id: str) -> bool:
    return isinstance(task_id, str) and task_id.startswith(TASK_PREFIX)


# ----------------------------------------------------------------------
# deterministic naming
# ----------------------------------------------------------------------
_ADJECTIVES = (
    "Amber", "Basalt", "Cedar", "Delta", "Ember", "Fjord", "Garnet",
    "Harbor", "Indigo", "Juniper", "Krypton", "Lumen", "Mistral", "Nimbus",
    "Onyx", "Pylon", "Quartz", "Rustic", "Saffron", "Tundra", "Umber",
    "Vortex", "Willow", "Xenon", "Yonder", "Zephyr",
)
_NOUNS = (
    "Anchor", "Beacon", "Cipher", "Dynamo", "Ensign", "Fulcrum", "Gantry",
    "Helix", "Isobar", "Jetty", "Keel", "Lattice", "Module", "Nexus",
    "Orbit", "Prism", "Quill", "Rotor", "Sprocket", "Turbine", "Underlay",
    "Vane", "Warp", "Yoke", "Zenith",
)


class _NameForge:
    """Seeded generator of globally unique two-word control names.

    Global uniqueness matters twice over: the planner resolves controls by
    name against the ripped forest, and the ripper's node identity falls
    back to names when automation ids collide.
    """

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self._used = set()

    def name(self, suffix: str = "") -> str:
        base = f"{self.rng.choice(_ADJECTIVES)} {self.rng.choice(_NOUNS)}"
        if suffix:
            base = f"{base} {suffix}"
        candidate = base
        serial = 2
        while candidate in self._used:
            candidate = f"{base} {serial}"
            serial += 1
        self._used.add(candidate)
        return candidate


# ----------------------------------------------------------------------
# topology: pure data, derived once per token
# ----------------------------------------------------------------------
_TOPOLOGIES: Dict[str, Dict[str, object]] = {}


def topology_for(spec: Union[str, SyntheticSpec]) -> Dict[str, object]:
    """The generated app's structure as plain data (memoized per token).

    Everything downstream — :class:`SyntheticApp`, the task suite, the
    digest — derives from this one deterministic artifact, so structural
    equality between processes reduces to token equality.
    """
    spec = _coerce(spec)
    token = spec.token()
    cached = _TOPOLOGIES.get(token)
    if cached is not None:
        return cached
    forge = _NameForge(random.Random(f"{token}|topology"))
    tabs: List[Dict[str, object]] = []
    for tab_index in range(spec.tabs + spec.contexts):
        contextual = tab_index >= spec.tabs
        groups: List[Dict[str, object]] = []
        for _ in range(spec.groups):
            group: Dict[str, object] = {
                "title": forge.name(),
                "toggles": [forge.name() for _ in range(spec.controls)],
                "gallery": None,
                "menu": None,
            }
            if spec.gallery:
                group["gallery"] = {
                    "name": forge.name(),
                    "choices": [forge.name() for _ in range(spec.gallery)],
                }
            if spec.menu:
                group["menu"] = {
                    "name": forge.name(),
                    "items": [forge.name() for _ in range(spec.menu)],
                }
            groups.append(group)
        tabs.append({"title": forge.name(), "contextual": contextual,
                     "groups": groups})
    dialogs = [{"title": f"{forge.name()} Settings", "edit": forge.name(),
                "checkbox": forge.name()}
               for _ in range(spec.dialogs)]
    cycle = None
    if spec.cycle:
        subject = forge.name()
        cycle = {
            "expand": f"More {subject}",
            "collapse": f"Fewer {subject}",
            "extras": [forge.name() for _ in range(2)],
        }
    topology: Dict[str, object] = {
        "token": token,
        "tabs": tabs,
        "dialogs": dialogs,
        "cycle": cycle,
    }
    _TOPOLOGIES[token] = topology
    return topology


def topology_digest(spec: Union[str, SyntheticSpec]) -> str:
    """SHA-256 over the canonical topology JSON (the determinism oracle)."""
    payload = json.dumps(topology_for(spec), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# checkable state
# ----------------------------------------------------------------------
class SyntheticState:
    """The generated app's model: everything a checker can assert on."""

    def __init__(self, topology: Dict[str, object]) -> None:
        self.toggles: Dict[str, bool] = {}
        self.gallery: Dict[str, str] = {}
        self.menu: Dict[str, str] = {}
        self.fields: Dict[str, str] = {}
        self.checks: Dict[str, bool] = {}
        for tab in topology["tabs"]:
            for group in tab["groups"]:
                for toggle in group["toggles"]:
                    self.toggles[toggle] = False
                if group["gallery"]:
                    self.gallery[group["gallery"]["name"]] = ""
                if group["menu"]:
                    self.menu[group["menu"]["name"]] = ""
        for dialog in topology["dialogs"]:
            self.fields[dialog["edit"]] = ""
            self.checks[dialog["checkbox"]] = False
        if topology["cycle"]:
            for extra in topology["cycle"]["extras"]:
                self.toggles[extra] = False

    def snapshot(self) -> Dict[str, object]:
        """A JSON-comparable dump (used by determinism tests)."""
        return {"toggles": dict(self.toggles), "gallery": dict(self.gallery),
                "menu": dict(self.menu), "fields": dict(self.fields),
                "checks": dict(self.checks)}


@dataclass(frozen=True)
class SyntheticCheck:
    """A task checker that is *equal by parameters*, not by closure.

    :class:`~repro.bench.engine.ParallelExecutor` refuses specs whose
    parent-side task differs from the registry regeneration; dataclass
    equality over ``TaskSpec`` includes the checker, so checkers must
    compare equal across independent generator runs.
    """

    kind: str            # "toggle" | "gallery" | "menu" | "field"
    key: str
    expected: str = ""

    def __call__(self, app: "SyntheticApp") -> bool:
        state = app.state
        if self.kind == "toggle":
            return state.toggles.get(self.key) is True
        if self.kind == "gallery":
            return bool(self.expected) and state.gallery.get(self.key) == self.expected
        if self.kind == "menu":
            return bool(self.expected) and state.menu.get(self.key) == self.expected
        if self.kind == "field":
            return bool(self.expected) and state.fields.get(self.key) == self.expected
        raise ValueError(f"unknown synthetic check kind {self.kind!r}")


# ----------------------------------------------------------------------
# the application
# ----------------------------------------------------------------------
class SyntheticApp(Application):
    """A generated Office-shaped application with checkable state."""

    APP_VERSION = "1.0"

    def __init__(self, spec: Union[str, SyntheticSpec], desktop=None) -> None:
        spec = _coerce(spec)
        self.spec = spec
        self.topology = topology_for(spec)
        self._state = SyntheticState(self.topology)
        # Instance attribute shadows the class attribute so window titles
        # and automation ids identify the generated family.
        self.APP_NAME = f"Syn[{spec.token()}]"
        super().__init__(desktop=desktop)

    def document_title(self) -> str:
        return "Generated Scenario"

    @property
    def state(self) -> SyntheticState:
        return self._state

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build_ui(self) -> None:
        ribbon = RibbonBuilder(self.window, self.APP_NAME)
        self.ribbon = ribbon
        first_visible: Optional[str] = None
        for tab in self.topology["tabs"]:
            title = tab["title"]
            ribbon.add_tab(title, visible=not tab["contextual"],
                           description=f"{title} commands")
            if first_visible is None and not tab["contextual"]:
                first_visible = title
            for group_spec in tab["groups"]:
                group = ribbon.add_group(title, group_spec["title"])
                for toggle in group_spec["toggles"]:
                    group.add_child(Button(
                        toggle,
                        automation_id=self._automation_id(toggle),
                        description=f"Turn on the {toggle} option",
                        on_click=lambda n=toggle: self._turn_on(n)))
                gallery = group_spec["gallery"]
                if gallery:
                    group.add_child(build_gallery_button(
                        gallery["name"], tuple(gallery["choices"]),
                        automation_id=self._automation_id(gallery["name"]),
                        description=f"Pick a {gallery['name']} style",
                        on_choice=lambda c, n=gallery["name"]:
                            self._choose(n, c)))
                menu = group_spec["menu"]
                if menu:
                    group.add_child(build_menu_button(
                        menu["name"],
                        {item: (lambda i=item, n=menu["name"]:
                                self._pick(n, i))
                         for item in menu["items"]},
                        automation_id=self._automation_id(menu["name"]),
                        description=f"{menu['name']} actions"))
        dialogs = self.topology["dialogs"]
        if dialogs and first_visible is not None:
            opener = f"Open {dialogs[0]['title']}"
            ribbon.panels[first_visible].add_child(Button(
                opener,
                automation_id=self._automation_id(opener),
                description=f"Open the {dialogs[0]['title']} dialog",
                on_click=lambda: self._open_chain_dialog(0)))
        if first_visible is not None:
            ribbon.select_tab(first_visible)
        for tab in self.topology["tabs"]:
            if tab["contextual"]:
                self.register_context(f"{tab['title']} active",
                                      self._context_setup(tab["title"]))

    def _automation_id(self, name: str) -> str:
        return f"{self.APP_NAME}.{name.replace(' ', '')}"

    def _context_setup(self, tab_title: str) -> Callable[[], None]:
        def setup() -> None:
            # Visibility only: contextual setups must not perturb state or
            # structure, or incremental ripping falls back to full rips.
            self.ribbon.tabs[tab_title].visible = True
            self.desktop.relayout()
        return setup

    # ------------------------------------------------------------------
    # state mutations (wired to controls)
    # ------------------------------------------------------------------
    def _turn_on(self, name: str) -> None:
        self._state.toggles[name] = True

    def _choose(self, gallery: str, choice: str) -> None:
        self._state.gallery[gallery] = choice

    def _pick(self, menu: str, item: str) -> None:
        self._state.menu[menu] = item

    # ------------------------------------------------------------------
    # the dialog chain (built fresh per open; optional expander cycle)
    # ------------------------------------------------------------------
    def _open_chain_dialog(self, index: int) -> None:
        dialogs = self.topology["dialogs"]
        dialog_spec = dialogs[index]
        builder = DialogBuilder(dialog_spec["title"])
        dialog = builder.dialog
        builder.add_edit(
            dialog, dialog_spec["edit"],
            value=self._state.fields[dialog_spec["edit"]],
            on_commit=lambda v, l=dialog_spec["edit"]:
                self._state.fields.__setitem__(l, v))
        builder.add_checkbox(
            dialog, dialog_spec["checkbox"],
            checked=self._state.checks[dialog_spec["checkbox"]],
            on_change=lambda v, l=dialog_spec["checkbox"]:
                self._state.checks.__setitem__(l, v))
        if index + 1 < len(dialogs):
            next_title = dialogs[index + 1]["title"]
            builder.add_button(dialog, f"Open {next_title}",
                               on_click=lambda i=index + 1:
                                   self._open_chain_dialog(i))
        if index == 0 and self.topology["cycle"]:
            self._build_cycle(builder, dialog)
        self.open_dialog(builder.build())

    def _build_cycle(self, builder: DialogBuilder, dialog) -> None:
        """The More/Fewer expander pair: two buttons revealing each other.

        Clicking ``More X`` hides itself and shows ``Fewer X`` plus extra
        toggles; clicking ``Fewer X`` reverses it.  The ripper records
        More -> Fewer and Fewer -> More edges — a true UNG cycle for
        decycle to break, the Find-and-Replace ``More >>``/``<< Less``
        idiom at generated scale.
        """
        cycle = self.topology["cycle"]
        extras = [Button(extra,
                         automation_id=self._automation_id(extra),
                         description=f"Turn on the {extra} option",
                         on_click=lambda n=extra: self._turn_on(n))
                  for extra in cycle["extras"]]
        holder: Dict[str, Button] = {}

        def show_more() -> None:
            holder["expand"].visible = False
            holder["collapse"].visible = True
            for widget in extras:
                widget.visible = True
            self.desktop.relayout()

        def show_fewer() -> None:
            holder["collapse"].visible = False
            for widget in extras:
                widget.visible = False
            holder["expand"].visible = True
            self.desktop.relayout()

        holder["expand"] = builder.add_button(dialog, cycle["expand"],
                                              on_click=show_more)
        for widget in extras:
            widget.visible = False
            dialog.add_child(widget)
        holder["collapse"] = builder.add_button(dialog, cycle["collapse"],
                                                on_click=show_fewer)
        holder["collapse"].visible = False


class SyntheticAppFactory:
    """Zero-arg factory shaped like an ``APP_FACTORIES`` entry.

    Carries ``APP_VERSION`` as an attribute so the artifact cache's
    version probe works without instantiating (and ripping) the app.
    """

    APP_VERSION = SyntheticApp.APP_VERSION

    def __init__(self, spec: Union[str, SyntheticSpec]) -> None:
        self.spec = _coerce(spec)

    def __call__(self) -> SyntheticApp:
        return SyntheticApp(self.spec)


def synthetic_app_factory(name: Union[str, SyntheticSpec]) -> SyntheticAppFactory:
    """Factory for an app name (``synthetic:<token>``), token, or spec."""
    return SyntheticAppFactory(name if isinstance(name, SyntheticSpec)
                               else SyntheticSpec.parse(name))


# ----------------------------------------------------------------------
# property-based task families
# ----------------------------------------------------------------------
def _sample_others(rng: random.Random, pool: List[str], exclude: str,
                   count: int = 2) -> Tuple[str, ...]:
    candidates = [item for item in pool if item != exclude]
    rng.shuffle(candidates)
    return tuple(candidates[:count])


def _generate_tasks(spec: SyntheticSpec) -> List[TaskSpec]:
    topology = topology_for(spec)
    token = spec.token()
    rng = random.Random(f"{token}|tasks")
    toggles: List[Tuple[str, str, List[str]]] = []
    galleries: List[Tuple[str, List[str], str]] = []
    menus: List[Tuple[str, List[str], str]] = []
    for tab in topology["tabs"]:
        if tab["contextual"]:
            # Contextual content is reachable only inside its context;
            # tasks stay on the always-visible surface so outcomes do not
            # depend on exploration-context ordering.
            continue
        for group in tab["groups"]:
            for toggle in group["toggles"]:
                toggles.append((toggle, tab["title"], group["toggles"]))
            if group["gallery"]:
                galleries.append((group["gallery"]["name"],
                                  group["gallery"]["choices"], tab["title"]))
            if group["menu"]:
                menus.append((group["menu"]["name"],
                              group["menu"]["items"], tab["title"]))
    dialogs = topology["dialogs"]
    families = ["toggle"]
    if galleries:
        families.append("gallery")
    if menus:
        families.append("menu")
    if dialogs:
        families.append("field")

    tasks: List[TaskSpec] = []
    for ordinal in range(spec.tasks):
        family = families[ordinal % len(families)]
        difficulty = rng.choice((0.5, 0.8, 1.0, 1.2, 1.5))
        if family == "toggle":
            name, tab_title, siblings = rng.choice(toggles)
            instruction = f"Turn on the {name} option."
            intents = (Intent(IntentKind.ACCESS, target=name,
                              scope_hint=tab_title,
                              distractors=_sample_others(rng, siblings, name)),)
            checker: Callable = SyntheticCheck("toggle", name)
            cause = FailureCause.SUBTLE_SEMANTICS
        elif family == "gallery":
            name, choices, tab_title = rng.choice(galleries)
            choice = rng.choice(choices)
            instruction = f"Apply the {choice} style from the {name} gallery."
            intents = (Intent(IntentKind.ACCESS, target=choice,
                              scope_hint=name,
                              distractors=_sample_others(rng, choices, choice)),)
            checker = SyntheticCheck("gallery", name, choice)
            cause = FailureCause.CONTROL_SEMANTICS
        elif family == "menu":
            name, items, tab_title = rng.choice(menus)
            item = rng.choice(items)
            instruction = f"Choose {item} from the {name} menu."
            intents = (Intent(IntentKind.ACCESS, target=item,
                              scope_hint=name,
                              distractors=_sample_others(rng, items, item)),)
            checker = SyntheticCheck("menu", name, item)
            cause = FailureCause.CONTROL_SEMANTICS
        else:  # field
            dialog_index = rng.randrange(len(dialogs))
            dialog = dialogs[dialog_index]
            value = f"{rng.choice(_NOUNS).lower()}-{rng.randrange(100)}"
            instruction = (f"Set the {dialog['edit']} field in the "
                           f"{dialog['title']} dialog to '{value}'.")
            intents = (
                Intent(IntentKind.ACCESS_INPUT, target=dialog["edit"],
                       scope_hint=dialog["title"], text=value),
                Intent(IntentKind.ACCESS, target="OK",
                       scope_hint=dialog["title"], distractors=("Cancel",)),
            )
            checker = SyntheticCheck("field", dialog["edit"], value)
            cause = FailureCause.CONTROL_SEMANTICS
        tasks.append(TaskSpec(
            task_id=spec.task_id(ordinal),
            app=spec.app_name,
            instruction=instruction,
            intents=intents,
            checker=checker,
            semantic_difficulty=difficulty,
            policy_failure_cause=cause,
            tags=("synthetic", family),
        ))
    return tasks


_SUITES: Dict[str, Tuple[TaskSpec, ...]] = {}
_TASK_INDEX: Dict[str, TaskSpec] = {}


def synthetic_suite(spec: Union[str, SyntheticSpec]) -> List[TaskSpec]:
    """The generated task suite for ``spec`` (memoized per token).

    Memoization keeps ``task_by_id`` O(1) at 100–1000× grid scale and
    guarantees repeated lookups return identical objects within a process;
    across processes, regeneration from the token yields equal objects.
    """
    spec = _coerce(spec)
    token = spec.token()
    cached = _SUITES.get(token)
    if cached is None:
        cached = tuple(_generate_tasks(spec))
        _SUITES[token] = cached
        for task in cached:
            _TASK_INDEX[task.task_id] = task
    return list(cached)


def synthetic_task(task_id: str) -> TaskSpec:
    """Regenerate the task a ``syn:<token>:NNNN`` id denotes.

    Raises :class:`KeyError` (matching ``task_by_id``'s contract) for
    malformed ids, unparseable tokens and out-of-range ordinals.
    """
    task = _TASK_INDEX.get(task_id)
    if task is not None:
        return task
    body = task_id[len(TASK_PREFIX):] if task_id.startswith(TASK_PREFIX) else ""
    token, separator, ordinal_text = body.rpartition(":")
    if not separator or not token or not ordinal_text.isdigit():
        raise KeyError(f"unknown task id {task_id!r} (synthetic ids look "
                       f"like '{TASK_PREFIX}<spec-token>:0000')")
    try:
        spec = SyntheticSpec.parse(token)
    except ValueError as error:
        raise KeyError(f"unknown task id {task_id!r}: {error}") from error
    synthetic_suite(spec)
    task = _TASK_INDEX.get(spec.task_id(int(ordinal_text)))
    if task is None:
        raise KeyError(
            f"unknown task id {task_id!r}: spec {spec.token()!r} generates "
            f"only {spec.tasks} task(s)")
    return task
