"""Simulated Office-like applications.

Three feature-rich productivity applications analogous to the paper's case
studies (Microsoft Word, Excel and PowerPoint):

* :mod:`repro.apps.word` — a document editor over :mod:`repro.apps.document`;
* :mod:`repro.apps.excel` — a spreadsheet over :mod:`repro.apps.workbook`;
* :mod:`repro.apps.powerpoint` — a slide editor over
  :mod:`repro.apps.presentation`.

Each application exposes thousands of controls through a ribbon, nested
modal dialogs, context-dependent tabs and drop-down galleries, and maintains
*real, checkable state* (the document/workbook/presentation models) so the
benchmark can verify task completion on final state rather than on action
traces.
"""

from repro.apps.base import Application
from repro.apps.document import Document, Paragraph, TextFormat
from repro.apps.excel import ExcelApp
from repro.apps.mutable import MutableDemoApp
from repro.apps.powerpoint import PowerPointApp
from repro.apps.presentation import Presentation, Shape, Slide
from repro.apps.word import WordApp
from repro.apps.workbook import Cell, Workbook, Worksheet

__all__ = [
    "Application",
    "Cell",
    "Document",
    "ExcelApp",
    "MutableDemoApp",
    "Paragraph",
    "PowerPointApp",
    "Presentation",
    "Shape",
    "Slide",
    "TextFormat",
    "Workbook",
    "WordApp",
    "Worksheet",
]

#: Factory registry used by the benchmark runner to instantiate fresh
#: applications per trial.  Hand-written apps only; generated apps resolve
#: through :func:`app_factory`.
APP_FACTORIES = {
    "word": WordApp,
    "excel": ExcelApp,
    "powerpoint": PowerPointApp,
}


def app_factory(name: str):
    """Resolve an application name to a zero-arg factory.

    Hand-written apps come from :data:`APP_FACTORIES`; ``synthetic:<token>``
    names resolve to a generated-app factory (the token *is* the build
    recipe, so any process can reconstruct the same app from the name
    alone).  Raises :class:`KeyError` for unknown names.
    """
    factory = APP_FACTORIES.get(name)
    if factory is not None:
        return factory
    if name.startswith("synthetic:"):
        # Imported lazily: synthetic pulls in the GUI/ribbon stack, which
        # not every APP_FACTORIES consumer needs.
        from repro.apps.synthetic import synthetic_app_factory

        try:
            return synthetic_app_factory(name)
        except ValueError as error:
            raise KeyError(f"unknown application {name!r}: {error}") from error
    raise KeyError(f"unknown application {name!r}")
