"""GUI ripping: automatic construction of the UI Navigation Graph (UNG).

The offline phase of DMI (paper §3.2, §4.1).  The ripper drives an
application through depth-first exploration, taking differential captures of
the accessibility tree around each click to discover which controls a click
reveals.  The result is a :class:`repro.ripping.ung.NavigationGraph` whose
nodes are controls (keyed by their composite control identifier) and whose
edges denote click-induced reachability.
"""

from repro.ripping.blocklist import AccessBlocklist, default_blocklist_for
from repro.ripping.contexts import ExplorationContext, context_plan_for
from repro.ripping.ripper import (
    GuiRipper,
    ReplayMismatch,
    RipperConfig,
    RipReport,
    RipTrace,
    rip_application,
    rip_application_incremental,
)
from repro.ripping.ung import NavigationGraph, UNGNode

__all__ = [
    "AccessBlocklist",
    "ExplorationContext",
    "GuiRipper",
    "NavigationGraph",
    "ReplayMismatch",
    "RipReport",
    "RipTrace",
    "RipperConfig",
    "UNGNode",
    "context_plan_for",
    "default_blocklist_for",
    "rip_application",
    "rip_application_incremental",
]
