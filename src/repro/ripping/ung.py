"""The UI Navigation Graph (UNG).

``UNG = (V, E)`` where each node corresponds to a UI control exposed by the
accessibility API and each directed edge captures click-induced reachability
(paper §3.2).  Nodes are keyed by the composite control identifier
(:mod:`repro.uia.identifiers`) so that the *same* control reached through
different paths collapses onto a single node — which is precisely how merge
nodes arise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.uia.control_types import ControlType
from repro.uia.element import UIElement
from repro.uia.identifiers import identifier_string

#: Identifier of the synthetic single-source root node.
VIRTUAL_ROOT_ID = "[VirtualRoot]|Window|"


@dataclass
class UNGNode:
    """A node of the UI Navigation Graph."""

    node_id: str                      # composite control identifier string
    name: str
    control_type: ControlType
    automation_id: str = ""
    description: str = ""
    #: Contexts (paper §4.1) in which the control was observed, e.g.
    #: {"default", "image_selected"}.
    contexts: Set[str] = field(default_factory=set)
    #: Window title the control was captured under (main window or dialog).
    window: str = ""

    @property
    def is_virtual_root(self) -> bool:
        return self.node_id == VIRTUAL_ROOT_ID


class NavigationGraph:
    """A directed graph of controls with click-reachability edges."""

    def __init__(self, app_name: str = "") -> None:
        self.app_name = app_name
        self.nodes: Dict[str, UNGNode] = {}
        self._successors: Dict[str, List[str]] = {}
        self._predecessors: Dict[str, List[str]] = {}
        self.root_id: str = VIRTUAL_ROOT_ID
        self.add_node(UNGNode(node_id=VIRTUAL_ROOT_ID, name="[VirtualRoot]",
                              control_type=ControlType.WINDOW))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: UNGNode) -> UNGNode:
        """Add a node, merging metadata if it already exists."""
        existing = self.nodes.get(node.node_id)
        if existing is not None:
            existing.contexts.update(node.contexts)
            if not existing.description and node.description:
                existing.description = node.description
            return existing
        self.nodes[node.node_id] = node
        self._successors.setdefault(node.node_id, [])
        self._predecessors.setdefault(node.node_id, [])
        return node

    def add_element(self, element: UIElement, context: str = "default",
                    window: str = "") -> UNGNode:
        """Add (or merge) a node built from a live UI element."""
        node = UNGNode(
            node_id=identifier_string(element),
            name=element.name,
            control_type=element.control_type,
            automation_id=element.automation_id,
            description=element.description,
            contexts={context},
            window=window,
        )
        return self.add_node(node)

    def add_edge(self, source_id: str, target_id: str) -> bool:
        """Add a directed edge; returns False if it already existed."""
        if source_id not in self.nodes or target_id not in self.nodes:
            raise KeyError("both endpoints must be added before the edge")
        if target_id in self._successors[source_id]:
            return False
        self._successors[source_id].append(target_id)
        self._predecessors[target_id].append(source_id)
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def successors(self, node_id: str) -> List[str]:
        return list(self._successors.get(node_id, []))

    def predecessors(self, node_id: str) -> List[str]:
        return list(self._predecessors.get(node_id, []))

    def out_degree(self, node_id: str) -> int:
        return len(self._successors.get(node_id, []))

    def in_degree(self, node_id: str) -> int:
        return len(self._predecessors.get(node_id, []))

    def edges(self) -> Iterable[Tuple[str, str]]:
        for source, targets in self._successors.items():
            for target in targets:
                yield (source, target)

    def node_count(self) -> int:
        return len(self.nodes)

    def edge_count(self) -> int:
        return sum(len(t) for t in self._successors.values())

    def leaf_ids(self) -> List[str]:
        """Nodes with no outgoing edges: the functional controls."""
        return [nid for nid in self.nodes if self.out_degree(nid) == 0]

    def merge_node_ids(self) -> List[str]:
        """Nodes with more than one incoming edge."""
        return [nid for nid in self.nodes if self.in_degree(nid) > 1]

    def reachable_from_root(self) -> Set[str]:
        seen: Set[str] = set()
        stack = [self.root_id]
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            stack.extend(self._successors.get(nid, []))
        return seen

    def find_nodes_by_name(self, name: str, exact: bool = True) -> List[UNGNode]:
        wanted = name.lower()
        result = []
        for node in self.nodes.values():
            candidate = node.name.lower()
            if (exact and candidate == wanted) or (not exact and wanted in candidate):
                result.append(node)
        return result

    # ------------------------------------------------------------------
    # interop / diagnostics
    # ------------------------------------------------------------------
    def to_networkx(self) -> "nx.DiGraph":
        graph = nx.DiGraph()
        for node_id, node in self.nodes.items():
            graph.add_node(node_id, name=node.name, control_type=node.control_type.value)
        graph.add_edges_from(self.edges())
        return graph

    def has_cycle(self) -> bool:
        return not nx.is_directed_acyclic_graph(self.to_networkx())

    def stats(self) -> Dict[str, object]:
        reachable = self.reachable_from_root()
        return {
            "app": self.app_name,
            "nodes": self.node_count(),
            "edges": self.edge_count(),
            "leaves": len(self.leaf_ids()),
            "merge_nodes": len(self.merge_node_ids()),
            "reachable_from_root": len(reachable),
            "has_cycle": self.has_cycle(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"NavigationGraph(app={self.app_name!r}, nodes={self.node_count()}, "
                f"edges={self.edge_count()})")
