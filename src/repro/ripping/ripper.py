"""The GUI ripper: DFS exploration with differential capture (paper §4.1).

The ripper drives a live (simulated) application:

1. **Root node initialization** — a virtual root is introduced and the
   controls on the initial screen are attached to it.  If a tab strip has an
   active tab, controls that are only visible *because* that tab is active
   are attached to the tab's node instead of the root (detected
   differentially by briefly switching to a sibling tab).
2. **DFS exploration** — for every clickable, non-blocklisted control the
   ripper takes a visibility snapshot, clicks the control, takes a second
   snapshot, and records every newly revealed control as a successor.  New
   top-level/modal windows are detected through the desktop's window
   listeners.
3. **State restoration** — after exploring a branch the ripper restores the
   prior UI state (closes windows the click opened, collapses expansions,
   re-selects the previously selected tab) so sibling branches are explored
   from a consistent state.
4. **Context-aware exploration** — the whole procedure repeats for every
   exploration context the application registers (e.g. "image selected"),
   and the per-context results merge into a single UNG.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.apps.base import Application
from repro.gui.widgets import TabControl, TabItem, Window
from repro.ripping.blocklist import AccessBlocklist, default_blocklist_for
from repro.ripping.contexts import DEFAULT_CONTEXT, context_plan_for
from repro.ripping.ung import NavigationGraph, UNGNode, VIRTUAL_ROOT_ID
from repro.uia.control_types import (
    ControlType,
    NON_NAVIGATING_CONTROL_TYPES,
    is_clickable_type,
)
from repro.uia.element import UIElement
from repro.uia.identifiers import identifier_string
from repro.uia.patterns import ExpandCollapseState, PatternId


@dataclass
class RipperConfig:
    """Exploration budgets and switches."""

    #: Maximum number of activations during one rip.
    max_clicks: int = 50000
    #: Maximum DFS depth measured in activations from the root.
    max_depth: int = 14
    #: Whether to explore the application's registered contexts.
    explore_contexts: bool = True


@dataclass
class RipReport:
    """Statistics of one ripping run (paper §5.2, offline modeling cost)."""

    app_name: str = ""
    clicks: int = 0
    blocked: int = 0
    contexts: List[str] = field(default_factory=list)
    duration_seconds: float = 0.0
    nodes: int = 0
    edges: int = 0
    leaves: int = 0
    merge_nodes: int = 0
    cycles: bool = False

    def as_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


@dataclass
class _UIState:
    """Snapshot of the restorable UI state around an activation."""

    open_window_ids: Set[int]
    expanded_ids: Set[int]
    selected_tab_ids: Set[int]


class GuiRipper:
    """Builds the UI Navigation Graph for one application instance."""

    def __init__(self, app: Application, blocklist: Optional[AccessBlocklist] = None,
                 config: Optional[RipperConfig] = None) -> None:
        self.app = app
        self.blocklist = blocklist if blocklist is not None else default_blocklist_for(app.APP_NAME)
        self.config = config or RipperConfig()
        self.ung = NavigationGraph(app_name=app.APP_NAME)
        self.report = RipReport(app_name=app.APP_NAME)
        self._visited: Set[str] = set()
        self._clicks = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def rip(self) -> NavigationGraph:
        """Run the full exploration and return the UNG."""
        started = time.perf_counter()
        contexts = context_plan_for(self.app) if self.config.explore_contexts else \
            context_plan_for(self.app)[:1]
        for context in contexts:
            context.enter()
            self.app.desktop.relayout()
            self._rip_context(context.name)
            self.report.contexts.append(context.name)
        self.report.duration_seconds = time.perf_counter() - started
        stats = self.ung.stats()
        self.report.nodes = stats["nodes"]
        self.report.edges = stats["edges"]
        self.report.leaves = stats["leaves"]
        self.report.merge_nodes = stats["merge_nodes"]
        self.report.cycles = stats["has_cycle"]
        self.report.clicks = self._clicks
        return self.ung

    # ------------------------------------------------------------------
    # per-context exploration
    # ------------------------------------------------------------------
    def _rip_context(self, context: str) -> None:
        initial = self._visible_app_elements()
        scoped = self._active_tab_scoped_elements()

        frontier: List[Tuple[UIElement, str, int]] = []
        for element in initial:
            if element is self.app.window:
                continue
            node = self.ung.add_element(element, context=context,
                                        window=self._window_title(element))
            parent_id = VIRTUAL_ROOT_ID
            if element.runtime_id in scoped:
                parent_id = scoped[element.runtime_id]
                # The owning tab itself is part of ``initial`` and is attached
                # to the virtual root by its own iteration.
            if parent_id != node.node_id:
                self.ung.add_edge(parent_id, node.node_id)
            frontier.append((element, node.node_id, 1))

        for element, node_id, depth in frontier:
            self._explore(element, node_id, depth, context)

    def _active_tab_scoped_elements(self) -> Dict[int, str]:
        """Map runtime ids of controls scoped to the active tab -> tab node id.

        Implements the paper's root-initialization rule: controls that are
        only visible because the default tab is active are attached to that
        tab instead of the virtual root.  Detection is differential: briefly
        select a sibling tab, observe what disappears, then restore.
        """
        scoped: Dict[int, str] = {}
        for tab_control in self._find_tab_controls():
            selected = tab_control.selected_tab()
            others = [t for t in tab_control.tabs() if t is not selected and t.visible]
            if selected is None or not others:
                continue
            before = {e.runtime_id for e in self._visible_app_elements()}
            others[0].select()
            self.app.desktop.relayout()
            after = {e.runtime_id for e in self._visible_app_elements()}
            selected.select()
            self.app.desktop.relayout()
            disappeared = before - after - {selected.runtime_id}
            tab_node = self.ung.add_element(selected, window=self._window_title(selected))
            self.ung.add_edge(VIRTUAL_ROOT_ID, tab_node.node_id)
            for runtime_id in disappeared:
                scoped[runtime_id] = tab_node.node_id
        return scoped

    def _find_tab_controls(self) -> List[TabControl]:
        result = []
        for window in self.app.desktop.open_windows(self.app.process_id):
            for element in window.iter_subtree():
                if isinstance(element, TabControl):
                    result.append(element)
        return result

    # ------------------------------------------------------------------
    # DFS
    # ------------------------------------------------------------------
    def _explore(self, element: UIElement, node_id: str, depth: int, context: str) -> None:
        if node_id in self._visited:
            return
        self._visited.add(node_id)
        if depth > self.config.max_depth or self._clicks >= self.config.max_clicks:
            return
        if not self._should_activate(element):
            if self.blocklist.blocks(element):
                self.report.blocked += 1
            return
        if not element.is_on_screen():
            # A sibling's exploration hid this control (e.g. a collapsed
            # menu); skip rather than force visibility.
            return

        state_before = self._capture_state()
        revealed = self._activate_and_diff(element)
        registered: List[Tuple[UIElement, str]] = []
        for new_element in revealed:
            new_node = self.ung.add_element(new_element, context=context,
                                            window=self._window_title(new_element))
            if new_node.node_id != node_id:
                self.ung.add_edge(node_id, new_node.node_id)
                registered.append((new_element, new_node.node_id))
        for new_element, new_id in registered:
            # Exploring an earlier sibling may have rebuilt part of the UI
            # (detaching this element); re-registration keeps ids consistent
            # with what exploration will observe from here on.
            current_id = identifier_string(new_element)
            if current_id != new_id:
                refreshed = self.ung.add_element(new_element, context=context,
                                                 window=self._window_title(new_element))
                self.ung.add_edge(node_id, refreshed.node_id)
                new_id = refreshed.node_id
            self._explore(new_element, new_id, depth + 1, context)
        self._restore_state(state_before)

    def _should_activate(self, element: UIElement) -> bool:
        if self.blocklist.blocks(element):
            return False
        if not element.is_enabled:
            return False
        if element.control_type in NON_NAVIGATING_CONTROL_TYPES:
            return False
        if element.control_type == ControlType.WINDOW:
            return False
        if element.control_type == ControlType.DATA_ITEM:
            # Grid cells are functional leaves; activating each of the
            # hundreds of cells adds nothing to the topology.
            return False
        return is_clickable_type(element.control_type) or bool(element.patterns)

    def _activate_and_diff(self, element: UIElement) -> List[UIElement]:
        """Click ``element`` and return the controls that became visible.

        The differential capture is keyed on the composite control identifier
        rather than on object identity: an application that rebuilds part of
        its widget tree (fresh objects, same controls) does not produce
        spurious "new control" edges.
        """
        before = {identifier_string(e) for e in self._visible_app_elements()}
        self._clicks += 1
        try:
            self.app.input.click(element)
        except Exception:
            # Disabled controls, pattern errors and the like simply produce
            # no outgoing edges.
            return []
        after_elements = self._visible_app_elements()
        revealed = []
        seen_new = set()
        for candidate in after_elements:
            identifier = identifier_string(candidate)
            if identifier in before or identifier in seen_new:
                continue
            seen_new.add(identifier)
            revealed.append(candidate)
        return revealed

    # ------------------------------------------------------------------
    # state capture / restore
    # ------------------------------------------------------------------
    def _capture_state(self) -> _UIState:
        expanded = set()
        selected_tabs = set()
        for window in self.app.desktop.open_windows(self.app.process_id):
            for node in window.iter_subtree():
                pattern = node.get_pattern(PatternId.EXPAND_COLLAPSE)
                if pattern is not None and pattern.state == ExpandCollapseState.EXPANDED:
                    expanded.add(node.runtime_id)
                if isinstance(node, TabItem) and node.is_selected:
                    selected_tabs.add(node.runtime_id)
        return _UIState(
            open_window_ids={w.runtime_id
                             for w in self.app.desktop.open_windows(self.app.process_id)},
            expanded_ids=expanded,
            selected_tab_ids=selected_tabs,
        )

    def _restore_state(self, state: _UIState) -> None:
        # 1. Close windows opened by the explored branch (newest first).
        for window in reversed(self.app.desktop.open_windows(self.app.process_id)):
            if window.runtime_id not in state.open_window_ids:
                window.close()
        # 2. Collapse expansions introduced by the branch.
        for window in self.app.desktop.open_windows(self.app.process_id):
            for node in window.iter_subtree():
                pattern = node.get_pattern(PatternId.EXPAND_COLLAPSE)
                if (pattern is not None
                        and pattern.state == ExpandCollapseState.EXPANDED
                        and node.runtime_id not in state.expanded_ids):
                    try:
                        pattern.collapse()
                    except Exception:
                        pass
        # 3. Re-select tabs whose selection the branch changed.
        for tab_control in self._find_tab_controls():
            selected = tab_control.selected_tab()
            if selected is not None and selected.runtime_id in state.selected_tab_ids:
                continue
            for tab in tab_control.tabs():
                if tab.runtime_id in state.selected_tab_ids:
                    tab.select()
                    break
        self.app.desktop.relayout()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _visible_app_elements(self) -> List[UIElement]:
        result: List[UIElement] = []
        for window in self.app.desktop.open_windows(self.app.process_id):
            stack: List[UIElement] = [window]
            while stack:
                node = stack.pop()
                if not node.visible:
                    continue
                result.append(node)
                stack.extend(reversed(node.children))
        return result

    @staticmethod
    def _window_title(element: UIElement) -> str:
        root = element.root()
        return root.name if isinstance(root, Window) or root.name else ""


def rip_application(app: Application, blocklist: Optional[AccessBlocklist] = None,
                    config: Optional[RipperConfig] = None) -> Tuple[NavigationGraph, RipReport]:
    """Convenience helper: rip ``app`` and return (UNG, report)."""
    ripper = GuiRipper(app, blocklist=blocklist, config=config)
    ung = ripper.rip()
    return ung, ripper.report
