"""The GUI ripper: DFS exploration with differential capture (paper §4.1).

The ripper drives a live (simulated) application:

1. **Root node initialization** — a virtual root is introduced and the
   controls on the initial screen are attached to it.  If a tab strip has an
   active tab, controls that are only visible *because* that tab is active
   are attached to the tab's node instead of the root (detected
   differentially by briefly switching to a sibling tab).
2. **DFS exploration** — for every clickable, non-blocklisted control the
   ripper takes a visibility snapshot, clicks the control, takes a second
   snapshot, and records every newly revealed control as a successor.  New
   top-level/modal windows are detected through the desktop's window
   listeners.
3. **State restoration** — after exploring a branch the ripper restores the
   prior UI state (closes windows the click opened, collapses expansions,
   re-selects the previously selected tab) so sibling branches are explored
   from a consistent state.
4. **Context-aware exploration** — the whole procedure repeats for every
   exploration context the application registers (e.g. "image selected"),
   and the per-context results merge into a single UNG.

Incremental ripping
-------------------
Every rip also records a **trace**: per explored node, the outcome of its
activation check and the exact sequence of graph operations its exploration
produced (node/edge splices and descents into children).  Given a prior UNG,
its trace, and the application's pending :class:`~repro.gui.changes`
event batch, :meth:`GuiRipper.rip_incremental` re-explores only the *dirty*
subtrees — nodes whose window a change touched, plus everything upstream of
them (an ancestor's click may reveal different controls once its subtree
changed) — and **replays** every clean node's recorded operations instead of
clicking.  Replay preserves click-budget accounting (a replayed activation
still counts against ``max_clicks``), visit order, and merge semantics, so
the incremental UNG is byte-identical to what a full re-rip would produce.
Any divergence between record and reality (:class:`ReplayMismatch`), a
missing or overflowed event log, or an app/config version change downgrades
to a full rip — incremental ripping is a pure optimization, never a
correctness trade.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.apps.base import Application
from repro.gui.widgets import TabControl, TabItem, Window
from repro.ripping.blocklist import AccessBlocklist, default_blocklist_for
from repro.ripping.contexts import DEFAULT_CONTEXT, context_plan_for
from repro.ripping.ung import NavigationGraph, UNGNode, VIRTUAL_ROOT_ID
from repro.uia.control_types import (
    ControlType,
    NON_NAVIGATING_CONTROL_TYPES,
    is_clickable_type,
)
from repro.uia.element import UIElement
from repro.uia.identifiers import identifier_string
from repro.uia.patterns import ExpandCollapseState, PatternId

#: Lazily bound telemetry module (importing :mod:`repro.bench.telemetry` at
#: the top level would pull in the whole ``repro.bench`` package, which
#: imports the runner, which imports the DMI stack, which imports us).
_telemetry = None


def _events():
    global _telemetry
    if _telemetry is None:
        from repro.bench import telemetry
        _telemetry = telemetry
    return _telemetry


@dataclass
class RipperConfig:
    """Exploration budgets and switches."""

    #: Maximum number of activations during one rip.
    max_clicks: int = 50000
    #: Maximum DFS depth measured in activations from the root.
    max_depth: int = 14
    #: Whether to explore the application's registered contexts.
    explore_contexts: bool = True


@dataclass
class RipReport:
    """Statistics of one ripping run (paper §5.2, offline modeling cost)."""

    app_name: str = ""
    clicks: int = 0
    blocked: int = 0
    contexts: List[str] = field(default_factory=list)
    duration_seconds: float = 0.0
    nodes: int = 0
    edges: int = 0
    leaves: int = 0
    merge_nodes: int = 0
    cycles: bool = False
    #: "full" or "incremental".
    mode: str = "full"
    #: Live activations actually performed (== clicks for a full rip).
    nodes_visited: int = 0
    #: Activations replayed from a prior trace (incremental mode only).
    nodes_reused: int = 0
    #: Distinct nodes spliced in by live re-exploration (incremental only).
    nodes_patched: int = 0
    #: Why an intended incremental rip fell back to a full rip ("": none).
    fallback_reason: str = ""

    def as_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


class ReplayMismatch(Exception):
    """The recorded trace no longer matches what exploration would do."""


@dataclass
class NodeRecord:
    """One explored node's activation outcome and graph operations.

    ``ops`` entries are tuples:

    * ``("node", payload)`` — splice a node (payload mirrors the
      :meth:`~repro.ripping.ung.NavigationGraph.add_element` inputs);
    * ``("edge", source_id, target_id)`` — splice an edge;
    * ``("descend", child_id)`` — DFS descended into ``child_id`` at this
      point (the child's own operations live in *its* record).
    """

    node_id: str
    #: "activated", "budget", "blocked", "inert" or "offscreen".
    outcome: str
    ops: List[tuple] = field(default_factory=list)


@dataclass
class RipTrace:
    """Everything needed to replay a rip against an unchanged UI."""

    app_name: str
    app_version: str
    #: The application's UI revision when the rip finished (self-generated
    #: exploration traffic already drained).
    ui_revision: int
    #: Digest of the ripper configuration the trace was recorded under.
    config_digest: str
    records: Dict[str, NodeRecord] = field(default_factory=dict)


def _config_digest(config: RipperConfig) -> str:
    return (f"clicks={config.max_clicks},depth={config.max_depth},"
            f"contexts={config.explore_contexts}")


@dataclass
class _ReplayPlan:
    """Replay inputs for one incremental rip."""

    records: Dict[str, NodeRecord]
    tainted: Set[str]
    dirty: Set[str]


@dataclass
class _UIState:
    """Snapshot of the restorable UI state around an activation."""

    open_window_ids: Set[int]
    expanded_ids: Set[int]
    selected_tab_ids: Set[int]


class GuiRipper:
    """Builds the UI Navigation Graph for one application instance."""

    def __init__(self, app: Application, blocklist: Optional[AccessBlocklist] = None,
                 config: Optional[RipperConfig] = None, sink=None) -> None:
        self.app = app
        self.blocklist = blocklist if blocklist is not None else default_blocklist_for(app.APP_NAME)
        self.config = config or RipperConfig()
        self.sink = sink
        self.ung = NavigationGraph(app_name=app.APP_NAME)
        self.report = RipReport(app_name=app.APP_NAME)
        #: Trace of the last completed rip (full or incremental).
        self.trace: Optional[RipTrace] = None
        self._visited: Set[str] = set()
        self._clicks = 0
        self._records: Dict[str, NodeRecord] = {}
        self._frames: List[List[tuple]] = []
        self._replay: Optional[_ReplayPlan] = None
        self._live_activations = 0
        self._replayed_activations = 0
        self._patched_ids: Set[str] = set()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def rip(self) -> NavigationGraph:
        """Run the full exploration and return the UNG."""
        return self._run()

    def rip_incremental(self, prior_ung: NavigationGraph,
                        prior_trace: Optional[RipTrace]) -> NavigationGraph:
        """Re-rip, replaying the prior trace for everything untouched.

        Consumes the application's pending UI-change batch to compute the
        dirty window set; falls back to a full rip (recording the reason in
        ``report.fallback_reason`` and the ``rip_full`` telemetry event)
        whenever the trace cannot be trusted.
        """
        reason = self._incremental_blocker(prior_ung, prior_trace)
        dirty: Set[str] = set()
        if reason is None:
            batch = self.app.ui_changes.drain()
            if batch.overflowed:
                reason = "change log overflowed"
            elif batch.from_revision == 0 and batch.to_revision == 0:
                # A never-written change log: this instance is exactly
                # as built.  The trace was stamped with the *recording*
                # instance's revision (exploration publishes its own
                # traffic), so the numbers differ — but an as-built
                # same-version instance is a valid replay target.  This
                # is the model-transfer case: ship UNG + trace to
                # another machine and splice against a fresh instance.
                dirty = set()
            elif batch.from_revision != prior_trace.ui_revision:
                reason = (f"change log gap: trace at revision "
                          f"{prior_trace.ui_revision}, batch covers "
                          f"{batch.from_revision}..{batch.to_revision}")
            else:
                dirty = set(batch.dirty_windows())
                if "" in dirty:
                    reason = "change without a window scope"
        if reason is None:
            plan = _ReplayPlan(records=prior_trace.records,
                               tainted=self._tainted_nodes(prior_ung, dirty),
                               dirty=dirty)
            state_before = self._capture_state()
            try:
                result = self._run(replay=plan)
                if not plan.dirty:
                    # With nothing dirty, a pure replay must reproduce
                    # the prior graph bit for bit.  A divergence means
                    # the UI drifted outside the event log (e.g. an app
                    # whose exploration perturbs its own state), so the
                    # trace describes a state that no longer exists.
                    from repro.topology.persistence import ung_digest
                    if ung_digest(result) != ung_digest(prior_ung):
                        raise ReplayMismatch(
                            "replayed graph diverged from the prior "
                            "model with no pending changes (UI state "
                            "drifted outside the event log)")
                return result
            except ReplayMismatch as mismatch:
                self._restore_state(state_before)
                reason = f"replay mismatch: {mismatch}"
                self._reset()
        self.report.fallback_reason = reason
        return self._run()

    # ------------------------------------------------------------------
    # the shared rip loop
    # ------------------------------------------------------------------
    def _run(self, replay: Optional[_ReplayPlan] = None) -> NavigationGraph:
        started = time.perf_counter()
        self._replay = replay
        self._frames = [[]]        # root scratch frame; never stored
        contexts = context_plan_for(self.app) if self.config.explore_contexts else \
            context_plan_for(self.app)[:1]
        for context in contexts:
            context.enter()
            self.app.desktop.relayout()
            self._rip_context(context.name)
            self.report.contexts.append(context.name)
        self.report.duration_seconds = time.perf_counter() - started
        stats = self.ung.stats()
        self.report.nodes = stats["nodes"]
        self.report.edges = stats["edges"]
        self.report.leaves = stats["leaves"]
        self.report.merge_nodes = stats["merge_nodes"]
        self.report.cycles = stats["has_cycle"]
        self.report.clicks = self._clicks
        self.report.mode = "incremental" if replay is not None else "full"
        self.report.nodes_visited = self._live_activations
        self.report.nodes_reused = self._replayed_activations
        self.report.nodes_patched = len(self._patched_ids)
        self._finish_trace()
        self._emit_rip_event(replay)
        return self.ung

    def _reset(self) -> None:
        """Discard a partially built graph before the full-rip fallback."""
        self.ung = NavigationGraph(app_name=self.app.APP_NAME)
        self.report = RipReport(app_name=self.app.APP_NAME)
        self._visited = set()
        self._clicks = 0
        self._records = {}
        self._frames = []
        self._replay = None
        self._live_activations = 0
        self._replayed_activations = 0
        self._patched_ids = set()

    def _finish_trace(self) -> None:
        revision = 0
        log = getattr(self.app, "ui_changes", None)
        if log is not None:
            # Exploration itself publishes changes (dialogs open, tabs
            # switch); they describe state the rip already observed, so
            # drain and discard them — the trace is current as of now.
            revision = log.drain().to_revision
        self.trace = RipTrace(
            app_name=self.app.APP_NAME,
            app_version=getattr(self.app, "APP_VERSION", ""),
            ui_revision=revision,
            config_digest=_config_digest(self.config),
            records=self._records,
        )

    def _emit_rip_event(self, replay: Optional[_ReplayPlan]) -> None:
        sink = _events().resolve(self.sink)
        if not sink:
            return
        if replay is None:
            sink.emit(_events().RipFull(
                app=self.app.APP_NAME, nodes_visited=self._live_activations,
                nodes=self.report.nodes, seconds=self.report.duration_seconds,
                reason=self.report.fallback_reason))
        else:
            reused = self._replayed_activations
            visited = self._live_activations
            fraction = reused / (reused + visited) if reused + visited else 1.0
            sink.emit(_events().RipIncremental(
                app=self.app.APP_NAME, nodes_visited=visited,
                nodes_reused=reused, nodes_patched=len(self._patched_ids),
                reuse_fraction=fraction, dirty_windows=len(replay.dirty),
                seconds=self.report.duration_seconds))

    # ------------------------------------------------------------------
    # incremental-mode helpers
    # ------------------------------------------------------------------
    def _incremental_blocker(self, prior_ung: Optional[NavigationGraph],
                             prior_trace: Optional[RipTrace]) -> Optional[str]:
        if prior_trace is None:
            return "no prior trace"
        if prior_ung is None:
            return "no prior graph"
        if getattr(self.app, "ui_changes", None) is None:
            return "application publishes no UI changes"
        if prior_trace.app_name != self.app.APP_NAME:
            return (f"trace is for {prior_trace.app_name!r}, "
                    f"not {self.app.APP_NAME!r}")
        if prior_trace.app_version != getattr(self.app, "APP_VERSION", ""):
            return (f"application version changed "
                    f"({prior_trace.app_version!r} -> "
                    f"{getattr(self.app, 'APP_VERSION', '')!r})")
        if prior_trace.config_digest != _config_digest(self.config):
            return "ripper configuration changed"
        return None

    @staticmethod
    def _tainted_nodes(prior_ung: NavigationGraph,
                       dirty_windows: Set[str]) -> Set[str]:
        """Nodes that must be re-explored live: everything captured under a
        dirty window, plus the reverse-reachability closure over the prior
        UNG (a clean ancestor's click may reveal a changed subtree, so its
        recorded operations are stale too)."""
        tainted = {node_id for node_id, node in prior_ung.nodes.items()
                   if node.window in dirty_windows}
        stack = list(tainted)
        while stack:
            node_id = stack.pop()
            for predecessor in prior_ung.predecessors(node_id):
                if predecessor not in tainted:
                    tainted.add(predecessor)
                    stack.append(predecessor)
        return tainted

    def _descend(self, element: Optional[UIElement], node_id: str,
                 depth: int, context: str) -> None:
        """Dispatch one DFS step: replay the node if its record is clean,
        otherwise explore it live.  Live subtrees still replay their clean
        children (the element is only needed on the live path)."""
        replayable = (
            self._replay is not None
            and node_id not in self._replay.tainted
            # New controls (absent from the prior UNG, so absent from the
            # taint set) in a dirty window must also be explored live.
            and not (element is not None
                     and self._window_title(element) in self._replay.dirty))
        if replayable:
            record = self._replay.records.get(node_id)
            if record is not None:
                self._replay_node(record, depth)
                return
            if node_id not in self._visited:
                # A control the prior rip never saw appeared in a window no
                # change event touched: the event log missed a mutation.
                raise ReplayMismatch(f"clean node {node_id!r} has no record")
            return
        self._explore(element, node_id, depth, context)

    def _replay_node(self, record: NodeRecord, depth: int) -> None:
        """Mirror :meth:`_explore` from a record instead of a live element.

        Budget accounting is kept in lockstep with live exploration — a
        replayed activation consumes a (virtual) click — so a subsequent
        full rip and the incremental rip agree on where budgets bind.  Any
        disagreement raises :class:`ReplayMismatch`.
        """
        node_id = record.node_id
        if node_id in self._visited:
            return
        self._visited.add(node_id)
        new_record = NodeRecord(node_id=node_id, outcome=record.outcome,
                                ops=list(record.ops))
        self._records[node_id] = new_record
        over_budget = depth > self.config.max_depth \
            or self._clicks >= self.config.max_clicks
        if over_budget != (record.outcome == "budget"):
            raise ReplayMismatch(
                f"budget divergence at {node_id!r}: recorded outcome "
                f"{record.outcome!r} vs over_budget={over_budget}")
        if record.outcome == "budget":
            return
        if record.outcome == "blocked":
            self.report.blocked += 1
            return
        if record.outcome in ("inert", "offscreen"):
            return
        self._clicks += 1            # the virtual click keeps budget parity
        self._replayed_activations += 1
        for op in record.ops:
            kind = op[0]
            if kind == "node":
                payload = op[1]
                self.ung.add_node(UNGNode(
                    node_id=payload["node_id"], name=payload["name"],
                    control_type=ControlType(payload["control_type"]),
                    automation_id=payload["automation_id"],
                    description=payload["description"],
                    contexts={payload["context"]},
                    window=payload["window"]))
            elif kind == "edge":
                self.ung.add_edge(op[1], op[2])
            elif kind == "descend":
                child_id = op[1]
                if child_id in self._replay.tainted:
                    raise ReplayMismatch(
                        f"clean node {node_id!r} descends into tainted "
                        f"{child_id!r}")
                child = self._replay.records.get(child_id)
                if child is None:
                    if child_id in self._visited:
                        continue
                    raise ReplayMismatch(
                        f"descend target {child_id!r} has no record")
                self._replay_node(child, depth + 1)

    # ------------------------------------------------------------------
    # recorded graph operations
    # ------------------------------------------------------------------
    def _emit_element(self, element: UIElement, context: str,
                      window: Optional[str] = None) -> UNGNode:
        if window is None:
            window = self._window_title(element)
        node = self.ung.add_element(element, context=context, window=window)
        self._frames[-1].append(("node", {
            "node_id": node.node_id,
            "name": element.name,
            "control_type": element.control_type.value,
            "automation_id": element.automation_id,
            "description": element.description,
            "context": context,
            "window": window,
        }))
        if self._replay is not None and len(self._frames) > 1:
            self._patched_ids.add(node.node_id)
        return node

    def _emit_edge(self, source_id: str, target_id: str) -> None:
        self.ung.add_edge(source_id, target_id)
        self._frames[-1].append(("edge", source_id, target_id))

    # ------------------------------------------------------------------
    # per-context exploration
    # ------------------------------------------------------------------
    def _rip_context(self, context: str) -> None:
        initial = self._visible_app_elements()
        scoped = self._active_tab_scoped_elements()

        frontier: List[Tuple[UIElement, str, int]] = []
        for element in initial:
            if element is self.app.window:
                continue
            node = self._emit_element(element, context)
            parent_id = VIRTUAL_ROOT_ID
            if element.runtime_id in scoped:
                parent_id = scoped[element.runtime_id]
                # The owning tab itself is part of ``initial`` and is attached
                # to the virtual root by its own iteration.
            if parent_id != node.node_id:
                self._emit_edge(parent_id, node.node_id)
            frontier.append((element, node.node_id, 1))

        for element, node_id, depth in frontier:
            self._descend(element, node_id, depth, context)

    def _active_tab_scoped_elements(self) -> Dict[int, str]:
        """Map runtime ids of controls scoped to the active tab -> tab node id.

        Implements the paper's root-initialization rule: controls that are
        only visible because the default tab is active are attached to that
        tab instead of the virtual root.  Detection is differential: briefly
        select a sibling tab, observe what disappears, then restore.
        """
        scoped: Dict[int, str] = {}
        for tab_control in self._find_tab_controls():
            selected = tab_control.selected_tab()
            others = [t for t in tab_control.tabs() if t is not selected and t.visible]
            if selected is None or not others:
                continue
            before = {e.runtime_id for e in self._visible_app_elements()}
            others[0].select()
            self.app.desktop.relayout()
            after = {e.runtime_id for e in self._visible_app_elements()}
            selected.select()
            self.app.desktop.relayout()
            disappeared = before - after - {selected.runtime_id}
            tab_node = self._emit_element(selected, DEFAULT_CONTEXT)
            self._emit_edge(VIRTUAL_ROOT_ID, tab_node.node_id)
            for runtime_id in disappeared:
                scoped[runtime_id] = tab_node.node_id
        return scoped

    def _find_tab_controls(self) -> List[TabControl]:
        result = []
        for window in self.app.desktop.open_windows(self.app.process_id):
            for element in window.iter_subtree():
                if isinstance(element, TabControl):
                    result.append(element)
        return result

    # ------------------------------------------------------------------
    # DFS
    # ------------------------------------------------------------------
    def _explore(self, element: UIElement, node_id: str, depth: int, context: str) -> None:
        if node_id in self._visited:
            return
        self._visited.add(node_id)
        record = NodeRecord(node_id=node_id, outcome="inert")
        self._records[node_id] = record
        if depth > self.config.max_depth or self._clicks >= self.config.max_clicks:
            record.outcome = "budget"
            return
        if not self._should_activate(element):
            if self.blocklist.blocks(element):
                self.report.blocked += 1
                record.outcome = "blocked"
            return
        if not element.is_on_screen():
            # A sibling's exploration hid this control (e.g. a collapsed
            # menu); skip rather than force visibility.
            record.outcome = "offscreen"
            return

        record.outcome = "activated"
        state_before = self._capture_state()
        self._frames.append(record.ops)
        try:
            revealed = self._activate_and_diff(element)
            registered: List[Tuple[UIElement, str]] = []
            for new_element in revealed:
                new_node = self._emit_element(new_element, context)
                if new_node.node_id != node_id:
                    self._emit_edge(node_id, new_node.node_id)
                    registered.append((new_element, new_node.node_id))
            for new_element, new_id in registered:
                # Exploring an earlier sibling may have rebuilt part of the UI
                # (detaching this element); re-registration keeps ids consistent
                # with what exploration will observe from here on.
                current_id = identifier_string(new_element)
                if current_id != new_id:
                    refreshed = self._emit_element(new_element, context)
                    self._emit_edge(node_id, refreshed.node_id)
                    new_id = refreshed.node_id
                record.ops.append(("descend", new_id))
                self._descend(new_element, new_id, depth + 1, context)
        finally:
            self._frames.pop()
        self._restore_state(state_before)

    def _should_activate(self, element: UIElement) -> bool:
        if self.blocklist.blocks(element):
            return False
        if not element.is_enabled:
            return False
        if element.control_type in NON_NAVIGATING_CONTROL_TYPES:
            return False
        if element.control_type == ControlType.WINDOW:
            return False
        if element.control_type == ControlType.DATA_ITEM:
            # Grid cells are functional leaves; activating each of the
            # hundreds of cells adds nothing to the topology.
            return False
        return is_clickable_type(element.control_type) or bool(element.patterns)

    def _activate_and_diff(self, element: UIElement) -> List[UIElement]:
        """Click ``element`` and return the controls that became visible.

        The differential capture is keyed on the composite control identifier
        rather than on object identity: an application that rebuilds part of
        its widget tree (fresh objects, same controls) does not produce
        spurious "new control" edges.
        """
        before = {identifier_string(e) for e in self._visible_app_elements()}
        self._clicks += 1
        self._live_activations += 1
        try:
            self.app.input.click(element)
        except Exception:
            # Disabled controls, pattern errors and the like simply produce
            # no outgoing edges.
            return []
        after_elements = self._visible_app_elements()
        revealed = []
        seen_new = set()
        for candidate in after_elements:
            identifier = identifier_string(candidate)
            if identifier in before or identifier in seen_new:
                continue
            seen_new.add(identifier)
            revealed.append(candidate)
        return revealed

    # ------------------------------------------------------------------
    # state capture / restore
    # ------------------------------------------------------------------
    def _capture_state(self) -> _UIState:
        expanded = set()
        selected_tabs = set()
        for window in self.app.desktop.open_windows(self.app.process_id):
            for node in window.iter_subtree():
                pattern = node.get_pattern(PatternId.EXPAND_COLLAPSE)
                if pattern is not None and pattern.state == ExpandCollapseState.EXPANDED:
                    expanded.add(node.runtime_id)
                if isinstance(node, TabItem) and node.is_selected:
                    selected_tabs.add(node.runtime_id)
        return _UIState(
            open_window_ids={w.runtime_id
                             for w in self.app.desktop.open_windows(self.app.process_id)},
            expanded_ids=expanded,
            selected_tab_ids=selected_tabs,
        )

    def _restore_state(self, state: _UIState) -> None:
        # 1. Close windows opened by the explored branch (newest first).
        for window in reversed(self.app.desktop.open_windows(self.app.process_id)):
            if window.runtime_id not in state.open_window_ids:
                window.close()
        # 2. Collapse expansions introduced by the branch.
        for window in self.app.desktop.open_windows(self.app.process_id):
            for node in window.iter_subtree():
                pattern = node.get_pattern(PatternId.EXPAND_COLLAPSE)
                if (pattern is not None
                        and pattern.state == ExpandCollapseState.EXPANDED
                        and node.runtime_id not in state.expanded_ids):
                    try:
                        pattern.collapse()
                    except Exception:
                        pass
        # 3. Re-select tabs whose selection the branch changed.
        for tab_control in self._find_tab_controls():
            selected = tab_control.selected_tab()
            if selected is not None and selected.runtime_id in state.selected_tab_ids:
                continue
            for tab in tab_control.tabs():
                if tab.runtime_id in state.selected_tab_ids:
                    tab.select()
                    break
        self.app.desktop.relayout()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _visible_app_elements(self) -> List[UIElement]:
        result: List[UIElement] = []
        for window in self.app.desktop.open_windows(self.app.process_id):
            stack: List[UIElement] = [window]
            while stack:
                node = stack.pop()
                if not node.visible:
                    continue
                result.append(node)
                stack.extend(reversed(node.children))
        return result

    @staticmethod
    def _window_title(element: UIElement) -> str:
        root = element.root()
        return root.name if isinstance(root, Window) or root.name else ""


def rip_application(app: Application, blocklist: Optional[AccessBlocklist] = None,
                    config: Optional[RipperConfig] = None) -> Tuple[NavigationGraph, RipReport]:
    """Convenience helper: rip ``app`` and return (UNG, report)."""
    ripper = GuiRipper(app, blocklist=blocklist, config=config)
    ung = ripper.rip()
    return ung, ripper.report


def rip_application_incremental(
        app: Application, prior_ung: NavigationGraph,
        prior_trace: Optional[RipTrace],
        blocklist: Optional[AccessBlocklist] = None,
        config: Optional[RipperConfig] = None,
) -> Tuple[NavigationGraph, RipReport, RipTrace]:
    """Incrementally re-rip ``app`` against a prior (UNG, trace) pair.

    Returns ``(ung, report, trace)`` — the trace is the *new* one, suitable
    for chaining further incremental rips.  ``report.mode`` tells whether
    the rip actually ran incrementally or fell back
    (``report.fallback_reason``).
    """
    ripper = GuiRipper(app, blocklist=blocklist, config=config)
    ung = ripper.rip_incremental(prior_ung, prior_trace)
    return ung, ripper.report, ripper.trace
