"""The access blocklist (paper §4.1).

DFS-based ripping must return the application to its prior state before
exploring further branches.  Some controls make that impossible or expensive:
they trigger external transitions (opening another application), enter states
that cannot be exited with ``Esc``/``Close``, or would destroy the scratch
document the ripper is driving.  The paper handles these with a manually
maintained blocklist — the dominant share of the per-application manual
effort it reports (~1.5 person-days).

Blocklisted controls are still *recorded* as UNG nodes when they are revealed
(they are legitimate functional leaves an agent may need to invoke); they are
simply never *activated* by the explorer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Set

from repro.uia.element import UIElement


@dataclass
class AccessBlocklist:
    """Controls the ripper must not activate during exploration."""

    #: Exact control names that are never clicked.
    names: Set[str] = field(default_factory=set)
    #: Automation-id prefixes that are never clicked.
    automation_id_prefixes: Set[str] = field(default_factory=set)
    #: Substrings of names that are never clicked (case-insensitive).
    name_substrings: Set[str] = field(default_factory=set)

    def blocks(self, element: UIElement) -> bool:
        """Return True if the ripper must not activate ``element``."""
        if element.name in self.names:
            return True
        lowered = element.name.lower()
        for fragment in self.name_substrings:
            if fragment.lower() in lowered:
                return True
        for prefix in self.automation_id_prefixes:
            if element.automation_id.startswith(prefix):
                return True
        return False

    def merged_with(self, other: "AccessBlocklist") -> "AccessBlocklist":
        return AccessBlocklist(
            names=self.names | other.names,
            automation_id_prefixes=self.automation_id_prefixes | other.automation_id_prefixes,
            name_substrings=self.name_substrings | other.name_substrings,
        )

    @classmethod
    def from_names(cls, names: Iterable[str]) -> "AccessBlocklist":
        return cls(names=set(names))


#: Dialog-dismissal buttons: activating them mid-exploration would close the
#: dialog under the explorer's feet.  They remain UNG leaves.
_DIALOG_BUTTONS: Sequence[str] = ("OK", "Cancel", "Close")

#: Controls shared by all applications that either leave the application
#: (Print spoolers, external viewers) or destroy scratch state.
_COMMON: Sequence[str] = (
    "Print",
    "Close Document",
    "Export as PDF",
    "Export as CSV",
)

_PER_APP = {
    "Word": AccessBlocklist(
        names=set(_DIALOG_BUTTONS) | set(_COMMON) | {
            "Spelling & Grammar",       # opens the proofing task pane loop
            "Thesaurus",                # external lookup
        },
    ),
    "Excel": AccessBlocklist(
        names=set(_DIALOG_BUTTONS) | set(_COMMON) | {
            "New Window",               # spawns another top-level window
            "Remove Duplicates",        # destructive on the scratch workbook
        },
    ),
    "PowerPoint": AccessBlocklist(
        names=set(_DIALOG_BUTTONS) | set(_COMMON) | {
            "From Beginning",           # enters the slide-show state
            "From Current Slide",
            "Delete Slide",             # destructive on the scratch deck
            "Video",                    # external media picker
            "Audio",
        },
    ),
}


def default_blocklist_for(app_name: str) -> AccessBlocklist:
    """The curated blocklist for one of the simulated applications.

    Unknown applications get the common core (dialog buttons + external
    transitions) so the ripper still behaves sensibly on custom apps.
    """
    if app_name in _PER_APP:
        return _PER_APP[app_name]
    return AccessBlocklist(names=set(_DIALOG_BUTTONS) | set(_COMMON))
