"""Context-aware exploration (paper §4.1).

Some controls are only visible under specific conditions — PowerPoint's
"Picture Format" tab exists only while an image is selected.  The paper
manually instantiates representative objects (an image, a text box) together
with their context types; the explorer traverses each context independently
and merges the results into a unified topology.

Applications declare their contexts via
:meth:`repro.apps.base.Application.register_context`; this module wraps them
in :class:`ExplorationContext` objects the ripper iterates over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.apps.base import Application

#: Name of the implicit context every application is explored under.
DEFAULT_CONTEXT = "default"


@dataclass
class ExplorationContext:
    """A named application state the ripper explores independently."""

    name: str
    setup: Callable[[], None]

    def enter(self) -> None:
        """Bring the application into this context."""
        self.setup()


def context_plan_for(app: Application) -> List[ExplorationContext]:
    """Return the exploration contexts for ``app`` (default context first)."""
    plan = [ExplorationContext(name=DEFAULT_CONTEXT, setup=lambda: None)]
    for name, setup in app.exploration_contexts().items():
        plan.append(ExplorationContext(name=name, setup=setup))
    return plan
