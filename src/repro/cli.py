"""Command-line interface for the reproduction.

Five subcommands cover the common workflows without writing any code:

``model``
    Run the offline phase for one application and print the modeling
    statistics (UNG size, forest, core topology, token estimate).
    ``--save PATH`` persists the navigation model (UNG + rip report) to
    JSON; ``--load PATH`` rebuilds the artefacts from such a file instead
    of re-ripping — the paper's "model once, reuse on any machine" path.
``run``
    Execute the benchmark for one or more Table 3 configurations and print
    the aggregate metrics (optionally restricted to a subset of tasks).
``report``
    Run the three core-setting configurations and print the paper's Table 3,
    Figure 5a/5b, Figure 6 and one-shot sections in text form.
``shard``
    Distribute a run across machines as manifest shards:
    ``shard plan --shards N --out DIR`` partitions the grid into N
    self-contained JSON manifests; ``shard run MANIFEST --results FILE``
    executes one manifest anywhere (reusing ``--jobs``/``--cache-dir``);
    ``shard merge RESULTS...`` validates that all shards came from the same
    plan, reassembles them in canonical spec order and prints (or exports)
    the same output a single-machine ``run`` would have produced.

    Instead of hand-carrying manifest and results files, the same grid can
    flow through a broker work queue: ``shard submit … --shards N`` plans
    the grid and enqueues the manifests (``--plan NAME`` picks the
    namespace — one broker holds any number of named plans, leased
    fair-share so a huge grid cannot starve a small one, with
    ``--priority`` as tiebreak); ``shard work …`` (run on any number of
    machines) leases manifests from every live plan, executes them with
    the ordinary engine stack and posts results until the queue drains
    (``--poll SECS`` waits on in-flight peers whose lease might expire;
    ``--max-manifests N`` caps one worker's share; ``--daemon`` makes the
    worker persistent: it survives drain and picks up newly submitted
    plans until SIGTERM or ``--max-idle-s``); ``shard collect … --plan
    NAME`` merges one plan's posted results with the same plan-identity
    validation as ``shard merge`` — the collected output is bit-identical
    to a single-machine serial run for the same seed.  ``shard status``
    prints the per-plan queue table without collecting.

    Two broker backends, chosen per command: ``--broker DIR`` is a
    shared/NFS directory with atomic-rename leases; ``--store DIR`` is an
    object-store broker over a directory emulating S3-style conditional
    writes (compare-and-swap lease objects — the deployable layout for any
    store with ``If-None-Match``/``If-Match`` semantics).  Leases expire
    after ``--lease-ttl SECS`` (default 900) so crashed workers are
    reclaimed; live workers renew their lease in the background every
    ``--heartbeat SECS`` (default ``lease_ttl/3``; ``0`` disables), so
    manifests may run arbitrarily long without an oversized TTL.
``fleet``
    Observe an always-on worker fleet: ``fleet status --broker DIR``
    prints the live per-plan queue gauges (add ``--metrics FILE`` to fold
    in a daemon worker's ``--metrics`` JSON snapshot — idle poll rate,
    drained plans — and ``--json`` for machine consumption).
``runs``
    Inspect the persistent run registry.  ``run``, ``shard run`` and
    ``shard work``/``collect`` all append a :class:`RunRecord` (grid
    identity, execution path, wall clock, telemetry counters and the
    Table 3 aggregates) when ``--registry DIR`` (or ``$REPRO_REGISTRY``)
    is set; ``runs list`` / ``runs show ID`` browse them,
    ``runs diff A B`` prints the per-metric delta table and exits nonzero
    when a ``--fail-if wall_clock>+10%`` style regression threshold trips,
    and ``runs export --bench BENCH_5.json`` emits the repository's
    benchmark-trajectory JSON so perf history accumulates PR over PR.
``cache``
    Maintain an offline-model cache directory.  ``cache stats --cache-dir
    DIR`` lists the entries with sizes and last-load ages (from the
    nanosecond-resolution recency index); ``cache gc --cache-dir DIR
    --max-age-s SECS --max-bytes N`` evicts entries older than the age
    bound and then the oldest entries until the directory fits the byte
    budget.  ``gc`` emits a ``cache_gc`` telemetry event and, with
    ``--registry``, records a ``cache-gc`` run so sweeps show up in
    ``repro runs list``/``show`` next to the benchmark runs they pruned
    for.
``tasks``
    List the benchmark task suite.

Execution-engine flags (``run``, ``report`` and ``shard run``):

``--jobs N``
    Fan trials out over N worker processes.  Trials are deterministically
    seeded work units, so results are identical to a serial run for the
    same ``--seed``.
``--cache-dir PATH``
    Content-addressed cache of offline navigation models.  The first run
    rips each application once and persists the UNG; later runs (and every
    parallel worker) load instead of re-ripping.  ``--cache-max-entries N``
    bounds the directory (LRU by last-load time; evictions are counted).
``--registry DIR`` / ``--events FILE``
    Telemetry: record a RunRecord for ``repro runs`` in DIR (default:
    ``$REPRO_REGISTRY``), and/or stream every telemetry event to FILE as
    JSON lines.  With neither flag the default NullSink keeps the
    instrumented hot paths at zero overhead.
``--export FILE``
    Write all per-trial results and aggregate summaries to a JSON file
    (``run``, ``report`` and ``shard merge``).
``--progress``
    Stream one ``[completed/total] task setting trial`` line per finished
    trial to stderr while the run executes.

The default seed is 11 everywhere (``repro.bench.runner.DEFAULT_SEED``): the
library, this CLI and the benchmark harness share one constant so quoted
numbers agree across entry points.

Examples::

    python -m repro model powerpoint --save models/ppt.json
    python -m repro model powerpoint --load models/ppt.json
    python -m repro run --settings dmi-gpt5-medium gui-gpt5-medium --trials 1
    python -m repro run --jobs 4 --cache-dir .dmi-cache --export results.json
    python -m repro run --progress --trials 1 --tasks word-02-landscape
    python -m repro report --trials 1 --tasks ppt-01-blue-background word-02-landscape
    python -m repro shard plan --shards 3 --out shards/
    python -m repro shard run shards/shard-000-of-003.json \\
        --results results-0.json --jobs 4 --cache-dir .dmi-cache --progress
    python -m repro shard merge results-*.json --report --export merged.json
    python -m repro shard submit --broker /mnt/queue --shards 8
    python -m repro shard work --broker /mnt/queue --jobs 4 \\
        --cache-dir .dmi-cache          # on every worker machine
    python -m repro shard collect --broker /mnt/queue --poll 5 --progress \\
        --report --export merged.json
    python -m repro shard submit --store /mnt/objstore --shards 8
    python -m repro shard work --store /mnt/objstore --lease-ttl 120 \\
        --heartbeat 30 --jobs 4         # object-store broker + heartbeats
    python -m repro shard collect --store /mnt/objstore --poll 5 \\
        --export merged.json
    python -m repro shard submit --broker /mnt/queue --shards 8 \\
        --plan nightly --priority 1     # a named tenant on a shared broker
    python -m repro shard work --broker /mnt/queue --daemon \\
        --max-idle-s 600 --metrics fleet.json   # persistent fleet worker
    python -m repro shard status --broker /mnt/queue
    python -m repro fleet status --broker /mnt/queue --metrics fleet.json
    python -m repro shard collect --broker /mnt/queue --plan nightly
    python -m repro run --registry runs/ --events run.jsonl --trials 1
    python -m repro runs list --registry runs/
    python -m repro runs diff 20260726-1 20260726-2 --registry runs/ \\
        --fail-if 'wall_clock>+10%' --fail-if 'cache_miss>+0'
    python -m repro runs export --registry runs/ --bench BENCH_6.json
    python -m repro cache stats --cache-dir .dmi-cache
    python -m repro cache gc --cache-dir .dmi-cache --max-age-s 604800 \\
        --max-bytes 10000000 --registry runs/
"""

from __future__ import annotations

import argparse
import json
import math
import os
import signal
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TextIO

from repro.apps import APP_FACTORIES
from repro.bench import reporting
from repro.bench.engine import ProgressCallback, ProgressEvent
from repro.bench.metrics import aggregate
from repro.bench.registry import (
    RegistryError,
    RunRegistry,
    build_run_record,
)
from repro.bench.observe import (
    AdvisorPolicy,
    FleetAggregator,
    ObserveError,
    build_trace,
    render_trace,
    write_promfile,
)
from repro.bench.telemetry import (
    AggregatingSink,
    EventSink,
    JsonlSink,
    MetricsSnapshotSink,
    TeeSink,
    TelemetryError,
    load_metrics_snapshot,
    read_jsonl_events,
    set_default_sink,
)
from repro.bench.trajectory import (
    FailIf,
    check_fail_ifs,
    diff_runs,
    export_bench,
    render_diff,
)
from repro.bench.shard import (
    ManifestExecutor,
    ShardError,
    ShardManifest,
    ShardResults,
    merge_shard_results,
)
from repro.bench.faults import (
    FaultSchedule,
    FaultyBroker,
    FaultyObjectStore,
    RetryingBroker,
)
from repro.bench.store import FileSystemObjectStore
from repro.bench.transport import (
    DEFAULT_LEASE_TTL,
    DEFAULT_PLAN,
    BrokerStatus,
    LocalDirBroker,
    ObjectStoreBroker,
    ShardBroker,
    ShardLease,
    ShardWorker,
    validate_plan_name,
)
from repro.bench.runner import (
    BenchmarkConfig,
    BenchmarkRunner,
    CORE_SETTING_KEYS,
    DEFAULT_SEED,
    RunOutcome,
    TABLE3_SETTINGS,
    setting_by_key,
)
from repro.bench.tasks import all_tasks, task_by_id
from repro.dmi.cache import ArtifactCache, config_fingerprint
from repro.dmi.interface import (
    DMIConfig,
    build_offline_artifacts,
    rebuild_offline_artifacts,
)
from repro.topology.persistence import load_model, save_ung


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the DMI (Declarative Model Interface) system "
                    "from 'From Imperative to Declarative' (EuroSys 2026).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    model = subparsers.add_parser("model", help="run the offline modeling phase for one app")
    model.add_argument("app", choices=sorted(APP_FACTORIES), help="application to model")
    model.add_argument("--save", metavar="PATH", default=None,
                       help="persist the navigation model (UNG + rip report) to JSON")
    model.add_argument("--load", metavar="PATH", default=None,
                       help="rebuild artefacts from a saved model instead of ripping")

    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
        return value

    def nonnegative_float(text: str) -> float:
        value = float(text)
        # math.isfinite also rejects NaN, which passes every `< 0` check
        # but blows up time.sleep later.
        if not math.isfinite(value) or value < 0:
            raise argparse.ArgumentTypeError(f"must be a finite number >= 0, "
                                             f"got {value}")
        return value

    def positive_float(text: str) -> float:
        value = float(text)
        if not math.isfinite(value) or value <= 0:
            raise argparse.ArgumentTypeError(f"must be a finite number > 0, "
                                             f"got {value}")
        return value

    def add_progress_flag(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--progress", action="store_true",
                         help="stream '[completed/total] task setting trial' "
                              "lines to stderr as trials finish")

    def add_cache_bound_flag(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--cache-max-entries", type=positive_int,
                         default=None, metavar="N",
                         help="bound the cache directory to N entries "
                              "(LRU by last-load time; default: unbounded)")

    def add_telemetry_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--registry", metavar="DIR", default=None,
                         help="run-registry directory: append a RunRecord "
                              "for 'repro runs' (default: $REPRO_REGISTRY)")
        sub.add_argument("--events", metavar="FILE", default=None,
                         help="append every telemetry event to FILE as "
                              "JSON lines")

    def add_engine_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--jobs", type=positive_int, default=1,
                         help="worker processes (1 = serial; >1 = process pool)")
        sub.add_argument("--cache-dir", metavar="PATH", default=None,
                         help="on-disk cache for offline navigation models")
        add_cache_bound_flag(sub)
        sub.add_argument("--export", metavar="FILE", default=None,
                         help="write per-trial results and summaries to a JSON file")
        add_telemetry_flags(sub)
        add_progress_flag(sub)

    def add_grid_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--tasks", nargs="*", default=None,
                         help="task ids to run (default: the full 27-task suite)")
        sub.add_argument("--synthetic", metavar="SPEC", default=None,
                         help="add a generated task suite (spec token or "
                              "key=value pairs; see 'repro generate')")
        sub.add_argument("--trials", type=positive_int, default=3,
                         help="trials per task (paper: 3)")
        sub.add_argument("--seed", type=int, default=DEFAULT_SEED,
                         help="benchmark seed")

    run = subparsers.add_parser("run", help="run benchmark configurations")
    run.add_argument("--settings", nargs="+", default=list(CORE_SETTING_KEYS),
                     choices=[s.key for s in TABLE3_SETTINGS],
                     help="Table 3 configuration keys to run")
    add_grid_flags(run)
    add_engine_flags(run)

    report = subparsers.add_parser("report", help="print the core-setting tables and figures")
    add_grid_flags(report)
    add_engine_flags(report)

    shard = subparsers.add_parser(
        "shard", help="distribute a run across machines as manifest shards")
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)

    shard_plan = shard_sub.add_parser(
        "plan", help="partition the evaluation grid into N shard manifests")
    shard_plan.add_argument("--shards", type=positive_int, required=True,
                            help="number of manifests to produce")
    shard_plan.add_argument("--out", metavar="DIR", required=True,
                            help="directory for the manifest JSON files")
    shard_plan.add_argument("--settings", nargs="+", default=list(CORE_SETTING_KEYS),
                            choices=[s.key for s in TABLE3_SETTINGS],
                            help="Table 3 configuration keys to shard")
    add_grid_flags(shard_plan)

    shard_run = shard_sub.add_parser(
        "run", help="execute one shard manifest on this machine")
    shard_run.add_argument("manifest", help="manifest JSON written by 'shard plan'")
    shard_run.add_argument("--results", metavar="FILE", required=True,
                           help="where to write this shard's results JSON")
    shard_run.add_argument("--jobs", type=positive_int, default=1,
                           help="worker processes (1 = serial; >1 = process pool)")
    shard_run.add_argument("--cache-dir", metavar="PATH", default=None,
                           help="on-disk cache for offline navigation models")
    add_cache_bound_flag(shard_run)
    add_telemetry_flags(shard_run)
    add_progress_flag(shard_run)

    shard_merge = shard_sub.add_parser(
        "merge", help="validate and merge shard results into one report")
    shard_merge.add_argument("results", nargs="+",
                             help="results JSON files written by 'shard run'")
    shard_merge.add_argument("--report", action="store_true",
                             help="also print the figure/one-shot sections")
    shard_merge.add_argument("--export", metavar="FILE", default=None,
                             help="write merged results and summaries to a JSON file")

    def plan_name(text: str) -> str:
        try:
            return validate_plan_name(text)
        except ShardError as error:
            raise argparse.ArgumentTypeError(str(error))

    def add_queue_flags(sub: argparse.ArgumentParser) -> None:
        """The broker-selection flags shared by submit/work/collect."""
        backend = sub.add_mutually_exclusive_group(required=True)
        backend.add_argument("--broker", metavar="DIR",
                             help="directory broker queue (shared/NFS, "
                                  "atomic-rename leases)")
        backend.add_argument("--store", metavar="DIR",
                             help="object-store broker (a directory with "
                                  "S3-style conditional-write semantics, "
                                  "compare-and-swap leases)")
        sub.add_argument("--lease-ttl", type=positive_float,
                         default=DEFAULT_LEASE_TTL, metavar="SECS",
                         help="seconds before an unrenewed lease may be "
                              "reclaimed (default: %(default)s)")
        sub.add_argument("--fault-schedule", metavar="FILE", default=None,
                         help="chaos-conformance test rig: inject the "
                              "deterministic fault schedule (seeded JSON, "
                              "see repro.bench.faults) into every broker/"
                              "store operation; bounded retries must "
                              "absorb the weather")

    shard_submit = shard_sub.add_parser(
        "submit", help="plan the grid and enqueue its manifests on a broker")
    add_queue_flags(shard_submit)
    shard_submit.add_argument("--shards", type=positive_int, required=True,
                              help="number of manifests to enqueue")
    shard_submit.add_argument("--plan", type=plan_name, default=DEFAULT_PLAN,
                              metavar="NAME",
                              help="plan namespace to enqueue under; one "
                                   "broker holds any number of named plans "
                                   "(default: %(default)r)")
    shard_submit.add_argument("--priority", type=int, default=0,
                              help="fair-share tiebreak: higher-priority "
                                   "plans win lease-order ties "
                                   "(default: %(default)s)")
    shard_submit.add_argument("--settings", nargs="+",
                              default=list(CORE_SETTING_KEYS),
                              choices=[s.key for s in TABLE3_SETTINGS],
                              help="Table 3 configuration keys to shard")
    add_grid_flags(shard_submit)
    add_telemetry_flags(shard_submit)

    shard_work = shard_sub.add_parser(
        "work", help="lease and execute broker manifests until the queue drains")
    add_queue_flags(shard_work)
    shard_work.add_argument("--heartbeat", type=nonnegative_float,
                            default=None, metavar="SECS",
                            help="seconds between background lease renewals "
                                 "while a manifest runs (default: "
                                 "lease_ttl/3; 0 disables heartbeats)")
    shard_work.add_argument("--poll", type=positive_float, default=1.0,
                            help="seconds between queue checks while peers "
                                 "hold leases or (with --daemon) the queue "
                                 "is empty")
    shard_work.add_argument("--daemon", action="store_true",
                            help="persistent worker: survive queue drain, "
                                 "keep polling for newly submitted plans "
                                 "until SIGTERM/--max-idle-s")
    shard_work.add_argument("--max-idle-s", type=positive_float, default=None,
                            metavar="SECS",
                            help="with --daemon: exit cleanly after being "
                                 "continuously idle this long")
    shard_work.add_argument("--metrics", metavar="FILE", default=None,
                            help="periodically rewrite a live JSON gauge "
                                 "snapshot (queued/leased/done per plan, "
                                 "idle rate) to FILE; read it with "
                                 "'repro fleet status --metrics FILE'")
    shard_work.add_argument("--max-manifests", type=positive_int, default=None,
                            help="stop after executing this many manifests")
    shard_work.add_argument("--worker-id", metavar="NAME", default=None,
                            help="worker name recorded on leases "
                                 "(default: hostname-pid)")
    shard_work.add_argument("--jobs", type=positive_int, default=1,
                            help="worker processes (1 = serial; >1 = process pool)")
    shard_work.add_argument("--cache-dir", metavar="PATH", default=None,
                            help="on-disk cache for offline navigation models")
    add_cache_bound_flag(shard_work)
    add_telemetry_flags(shard_work)
    add_progress_flag(shard_work)

    shard_collect = shard_sub.add_parser(
        "collect", help="merge a broker's posted results into one report")
    add_queue_flags(shard_collect)
    shard_collect.add_argument("--plan", type=plan_name, default=DEFAULT_PLAN,
                               metavar="NAME",
                               help="named plan to collect "
                                    "(default: %(default)r)")
    shard_collect.add_argument("--poll", type=nonnegative_float, default=0.0,
                               help="wait for the plan to complete, checking "
                                    "every SECS seconds (0 = fail if "
                                    "incomplete)")
    shard_collect.add_argument("--report", action="store_true",
                               help="also print the figure/one-shot sections")
    shard_collect.add_argument("--export", metavar="FILE", default=None,
                               help="write merged results and summaries to a "
                                    "JSON file")
    add_telemetry_flags(shard_collect)
    add_progress_flag(shard_collect)

    shard_status = shard_sub.add_parser(
        "status", help="print the broker's per-plan queue counters")
    add_queue_flags(shard_status)
    shard_status.add_argument("--json", action="store_true",
                              help="emit the counters as JSON instead of "
                                   "the table")

    fleet = subparsers.add_parser(
        "fleet", help="observe an always-on worker fleet")
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    def add_fleet_input_flags(sub: argparse.ArgumentParser) -> None:
        """The aggregation inputs shared by fleet status/advise."""
        sub.add_argument("--metrics", metavar="FILE", action="append",
                         default=None,
                         help="fold in a worker's --metrics snapshot file; "
                              "repeatable — one flag per worker merges the "
                              "whole fleet into one gauges view")
        sub.add_argument("--events", metavar="FILE", action="append",
                         default=None,
                         help="fold in a worker's --events JSONL tail for "
                              "drain-rate windows (repeatable)")
        sub.add_argument("--max-age-s", type=positive_float, default=None,
                         metavar="SECS",
                         help="flag snapshots whose written_at stamp is "
                              "older than SECS as STALE")

    fleet_status = fleet_sub.add_parser(
        "status", help="live per-plan queue gauges (and worker metrics)")
    add_queue_flags(fleet_status)
    add_fleet_input_flags(fleet_status)
    fleet_status.add_argument("--strict", action="store_true",
                              help="exit non-zero when any snapshot is "
                                   "older than --max-age-s")
    fleet_status.add_argument("--prom-dir", metavar="DIR", default=None,
                              help="also write the gauges as an OpenMetrics "
                                   "textfile (repro_fleet.prom, atomic "
                                   "rename) into DIR for a Prometheus "
                                   "node-exporter textfile collector")
    fleet_status.add_argument("--json", action="store_true",
                              help="emit everything as JSON instead of "
                                   "the table")

    fleet_advise = fleet_sub.add_parser(
        "advise", help="recommend-only autoscaling advice from the "
                       "aggregated gauges")
    add_queue_flags(fleet_advise)
    add_fleet_input_flags(fleet_advise)
    fleet_advise.add_argument("--target-backlog", type=positive_int,
                              default=4, metavar="N",
                              help="queued shards per live worker the fleet "
                                   "should sit at (default: %(default)s)")
    fleet_advise.add_argument("--min-workers", type=positive_int, default=1,
                              metavar="N",
                              help="never recommend fewer than N workers "
                                   "(default: %(default)s)")
    fleet_advise.add_argument("--max-workers", type=positive_int,
                              default=None, metavar="N",
                              help="never recommend more than N workers")
    fleet_advise.add_argument("--emit", metavar="FILE", default=None,
                              help="append the ScaleAdvice event to FILE as "
                                   "a JSON line")
    fleet_advise.add_argument("--json", action="store_true",
                              help="print the advice as JSON instead of "
                                   "prose")

    trace = subparsers.add_parser(
        "trace", help="reconstruct one trace's timeline from JSONL events")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    def add_trace_event_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("trace_id", help="trace id (from 'repro trace id' "
                                          "or any event's trace_id field)")
        sub.add_argument("--events", metavar="FILE", action="append",
                         required=True,
                         help="JSONL event file to search; repeatable — "
                              "pass every worker's and the submitter's "
                              "files to merge one fleet-wide timeline")

    trace_show = trace_sub.add_parser(
        "show", help="print a human-readable span timeline")
    add_trace_event_flags(trace_show)

    trace_export = trace_sub.add_parser(
        "export", help="emit the reconstructed trace as JSON")
    add_trace_event_flags(trace_export)
    trace_export.add_argument("--out", metavar="FILE", default=None,
                              help="write the JSON to FILE instead of "
                                   "stdout")

    trace_id_cmd = trace_sub.add_parser(
        "id", help="compute a trial's deterministic trace id")
    trace_id_cmd.add_argument("--task", required=True, metavar="TASK_ID",
                              help="task id of the trial")
    trace_id_cmd.add_argument("--setting", required=True, metavar="KEY",
                              help="evaluation setting key of the trial")
    trace_id_cmd.add_argument("--trial", type=int, default=0,
                              metavar="N", help="trial index "
                                                "(default: %(default)s)")
    trace_id_cmd.add_argument("--seed", type=int, default=DEFAULT_SEED,
                              help="benchmark base seed "
                                   "(default: %(default)s)")

    runs = subparsers.add_parser(
        "runs", help="inspect and compare runs recorded with --registry")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)

    def add_registry_flag(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--registry", metavar="DIR", default=None,
                         help="run-registry directory "
                              "(default: $REPRO_REGISTRY)")

    runs_list = runs_sub.add_parser("list", help="list recorded runs")
    add_registry_flag(runs_list)
    runs_list.add_argument("--ids", action="store_true",
                           help="print bare run ids only (for scripting)")

    runs_show = runs_sub.add_parser("show", help="print one run record")
    add_registry_flag(runs_show)
    runs_show.add_argument("run_id", help="run id (or unique prefix)")

    runs_diff = runs_sub.add_parser(
        "diff", help="per-metric delta table between two recorded runs")
    add_registry_flag(runs_diff)
    runs_diff.add_argument("before", help="baseline run id (or prefix)")
    runs_diff.add_argument("after", help="candidate run id (or prefix)")
    runs_diff.add_argument("--fail-if", action="append", default=[],
                           metavar="SPEC",
                           help="exit nonzero when a metric regresses past "
                                "SPEC, e.g. 'wall_clock>+10%%' or "
                                "'cache_hit<-2' (repeatable)")

    runs_export = runs_sub.add_parser(
        "export", help="emit the BENCH_*.json benchmark-trajectory file")
    add_registry_flag(runs_export)
    runs_export.add_argument("--bench", metavar="FILE", required=True,
                             help="trajectory file to write "
                                  "(conventionally BENCH_<pr>.json)")
    runs_export.add_argument("--pr", type=int, default=None,
                             help="PR number to tag the trajectory with "
                                  "(default: inferred from the file name)")

    def nonnegative_int(text: str) -> int:
        value = int(text)
        if value < 0:
            raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
        return value

    cache = subparsers.add_parser(
        "cache", help="inspect and garbage-collect an offline-model cache")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)

    cache_stats = cache_sub.add_parser(
        "stats", help="list cache entries with sizes and last-load ages")
    cache_stats.add_argument("--cache-dir", metavar="PATH", required=True,
                             help="cache directory to inspect")

    cache_gc = cache_sub.add_parser(
        "gc", help="evict cache entries past an age or total-size bound")
    cache_gc.add_argument("--cache-dir", metavar="PATH", required=True,
                          help="cache directory to sweep")
    cache_gc.add_argument("--max-age-s", type=nonnegative_float, default=None,
                          metavar="SECS",
                          help="evict entries whose last load is older than "
                               "SECS seconds")
    cache_gc.add_argument("--max-bytes", type=nonnegative_int, default=None,
                          metavar="N",
                          help="evict oldest entries until the directory "
                               "holds at most N bytes")
    add_telemetry_flags(cache_gc)

    tasks = subparsers.add_parser("tasks", help="list the benchmark tasks")
    tasks.add_argument("--app", choices=sorted(APP_FACTORIES), default=None)

    generate = subparsers.add_parser(
        "generate",
        help="describe a synthetic scenario spec (see --synthetic)")
    generate.add_argument(
        "spec",
        help="spec token (s7-t3-g2-c3-y6-m3-d2-cy1-x1-n30) or key=value "
             "pairs (seed=7,tasks=100); fields: seed, tabs, groups, "
             "controls, gallery, menu, dialogs, cycle, contexts, tasks")
    generate.add_argument("--ids", action="store_true",
                          help="print the generated task ids, one per line")
    generate.add_argument("--json", action="store_true", dest="as_json",
                          help="print the summary as JSON")
    return parser


def _resolve_tasks(task_ids: Optional[Sequence[str]],
                   synthetic: Optional[str] = None):
    if task_ids is None and synthetic is None:
        return None
    tasks = []
    if task_ids is not None:
        if not task_ids:
            # nargs="*" lets `--tasks` appear with zero arguments; running
            # the full 27-task suite in that case would silently ignore the
            # flag.
            raise SystemExit("repro: --tasks requires at least one task id "
                             "(omit the flag to run the full 27-task suite)")
        seen = set()
        for task_id in task_ids:
            if task_id in seen:
                # A repeated id would double-expand the settings × tasks ×
                # trials grid (and trip the shard planner's duplicate
                # check); repetition belongs to --trials.
                raise SystemExit(
                    f"repro: duplicate task id {task_id!r} in --tasks (each "
                    "task may appear once; use --trials for repetition)")
            seen.add(task_id)
        try:
            tasks.extend(task_by_id(task_id) for task_id in task_ids)
        except KeyError as error:
            raise SystemExit(f"repro: {error.args[0]}; see 'repro tasks' for "
                             "the suite")
    if synthetic is not None:
        from repro.apps.synthetic import SyntheticSpec, synthetic_suite

        try:
            generated = synthetic_suite(SyntheticSpec.parse(synthetic))
        except ValueError as error:
            raise SystemExit(f"repro: {error}")
        explicit = {task.task_id for task in tasks}
        duplicated = sorted(explicit.intersection(
            task.task_id for task in generated))
        if duplicated:
            raise SystemExit(f"repro: task id {duplicated[0]!r} appears in "
                             "both --tasks and the --synthetic suite")
        tasks.extend(generated)
    return tasks


def _check_cache_dir(cache_dir: Optional[str]) -> None:
    if cache_dir is not None and Path(cache_dir).exists() \
            and not Path(cache_dir).is_dir():
        raise SystemExit(f"repro: --cache-dir {cache_dir!r} exists and "
                         "is not a directory")


def _runner(args) -> BenchmarkRunner:
    _check_cache_dir(args.cache_dir)
    return BenchmarkRunner(BenchmarkConfig(
        trials=args.trials, seed=args.seed, tasks=_resolve_tasks(args.tasks, getattr(args, 'synthetic', None)),
        jobs=args.jobs, cache_dir=args.cache_dir,
        cache_max_entries=getattr(args, "cache_max_entries", None)))


class _RunTelemetry:
    """Telemetry/registry plumbing for one CLI command.

    When ``--registry`` (or ``$REPRO_REGISTRY``) or ``--events`` is in
    play, installs an :class:`AggregatingSink` (plus a :class:`JsonlSink`)
    as the process-default sink for the ``with`` block, measures wall
    clock, and :meth:`record` appends the finished run to the registry.
    With neither flag this is a no-op and the default NullSink keeps the
    instrumented hot paths at zero overhead.
    """

    def __init__(self, args) -> None:
        self.registry = RunRegistry.from_env(getattr(args, "registry", None))
        events = getattr(args, "events", None)
        metrics = getattr(args, "metrics", None)
        self.aggregating: Optional[AggregatingSink] = None
        self._jsonl: Optional[JsonlSink] = None
        self._metrics: Optional[MetricsSnapshotSink] = None
        self._sink: Optional[EventSink] = None
        self._installed = False
        self._previous: Optional[EventSink] = None
        if self.registry is not None or events is not None \
                or metrics is not None:
            self.aggregating = AggregatingSink()
            sinks: List[EventSink] = [self.aggregating]
            if events is not None:
                try:
                    self._jsonl = JsonlSink(events)
                except OSError as error:
                    raise SystemExit(f"repro: cannot open events file "
                                     f"{events!r}: {error}")
                sinks.append(self._jsonl)
            if metrics is not None:
                self._metrics = MetricsSnapshotSink(
                    metrics, worker_id=getattr(args, "worker_id", None))
                sinks.append(self._metrics)
            self._sink = TeeSink(sinks)
        self._started = time.perf_counter()

    def __enter__(self) -> "_RunTelemetry":
        if self._sink is not None:
            self._previous = set_default_sink(self._sink)
            self._installed = True
        return self

    def __exit__(self, *exc_info) -> None:
        if self._installed:
            set_default_sink(self._previous)
        if self._jsonl is not None:
            self._jsonl.close()
        if self._metrics is not None:
            try:
                self._metrics.close()  # final gauge snapshot
            except OSError as error:
                print(f"repro: cannot write metrics snapshot: {error}",
                      file=sys.stderr)

    def record(self, *, executor: str, seed: int, trials: int, jobs: int,
               setting_keys: Sequence[str], task_ids: Sequence[str],
               results_by_setting: Dict[str, list], fingerprint: str,
               context: Optional[Dict[str, object]] = None,
               subset: Optional[str] = None) -> None:
        if self.registry is None:
            return
        record = build_run_record(
            self.registry.new_run_id(), executor=executor, seed=seed,
            trials=trials, jobs=jobs, setting_keys=setting_keys,
            task_ids=task_ids, fingerprint=fingerprint,
            results_by_setting=results_by_setting,
            wall_clock_s=time.perf_counter() - self._started,
            sink=self.aggregating, context=context, subset=subset)
        try:
            self.registry.record(record)
        except (RegistryError, OSError) as error:
            raise SystemExit(f"repro: cannot record run in registry "
                             f"{self.registry.root}: {error}")
        print(f"recorded run {record.run_id} "
              f"({record.trial_count} trials, {record.executor}) "
              f"in registry {self.registry.root}")


def _record_grid_run(tele: _RunTelemetry, args, runner: BenchmarkRunner,
                     outcomes: Dict[str, RunOutcome]) -> None:
    """The shared `run`/`report` record epilogue."""
    tele.record(
        executor="parallel" if args.jobs > 1 else "serial",
        seed=args.seed, trials=args.trials, jobs=args.jobs,
        setting_keys=list(outcomes),
        task_ids=[task.task_id for task in runner.tasks()],
        results_by_setting={key: outcome.results
                            for key, outcome in outcomes.items()},
        fingerprint=config_fingerprint(runner.config.dmi))


def _results_by_setting(shards: Sequence[ShardResults]) -> Dict[str, list]:
    """Group shard results by setting key (spec order within each shard)."""
    grouped: Dict[str, list] = {}
    for shard in shards:
        for spec, result in zip(shard.manifest.specs, shard.results):
            grouped.setdefault(spec.setting_key, []).append(result)
    return grouped


def _shard_subset(indices: Sequence[int], shard_count: int) -> str:
    """The canonical grid-subset marker for shard-level run records.

    One format for every entry point, so the same slice of a plan gets the
    same config_key whether it ran via `shard run` or a broker worker.
    """
    return (f"shards-{','.join(map(str, sorted(indices)))}"
            f"-of-{shard_count}")


def _progress_printer(stream: Optional[TextIO] = None) -> ProgressCallback:
    """The --progress live display: one line per completed trial."""
    out = stream if stream is not None else sys.stderr

    def emit(event: ProgressEvent) -> None:
        spec = event.spec
        print(f"[{event.completed}/{event.total}] {spec.task_id} "
              f"{spec.setting_key} trial {spec.trial}", file=out, flush=True)

    return emit


def _progress(args) -> Optional[ProgressCallback]:
    return _progress_printer() if getattr(args, "progress", False) else None


def export_settings_payload(outcomes: Dict[str, RunOutcome]) -> Dict[str, object]:
    """The ``--export`` file's ``settings`` section: label + aggregate
    summary + every per-trial result, per setting key.  Shared with the
    equivalence harness (``tests/equivalence.py``) so the bit-identical
    guarantee is asserted on the *real* export payload."""
    return {
        key: {
            "label": outcome.setting.label,
            "summary": aggregate(outcome.results).as_dict(),
            "results": [result.as_dict() for result in outcome.results],
        }
        for key, outcome in outcomes.items()
    }


def _export_outcomes(path: str, config: Dict[str, object],
                     outcomes: Dict[str, RunOutcome]) -> None:
    payload = {
        "config": config,
        "settings": export_settings_payload(outcomes),
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=1, ensure_ascii=False),
                      encoding="utf-8")


def _runner_config_payload(runner: BenchmarkRunner) -> Dict[str, object]:
    return {
        "trials": runner.config.trials,
        "seed": runner.config.seed,
        "jobs": runner.config.jobs,
        "cache_dir": str(runner.config.cache_dir) if runner.config.cache_dir else None,
    }


def command_model(args) -> int:
    if args.load:
        try:
            ung, report = load_model(args.load)
        except OSError as error:
            raise SystemExit(f"repro: cannot load model {args.load!r}: {error}")
        except (ValueError, KeyError) as error:
            raise SystemExit(f"repro: invalid model file {args.load!r}: {error}")
        if ung.app_name and ung.app_name.lower() != args.app:
            raise SystemExit(f"repro: {args.load!r} is a model of "
                             f"{ung.app_name!r}, not of {args.app!r}")
        artifacts = rebuild_offline_artifacts(ung, rip_report=report)
    else:
        app = APP_FACTORIES[args.app]()
        artifacts = build_offline_artifacts(app)
    if args.save:
        try:
            save_ung(artifacts.ung, args.save, report=artifacts.rip_report)
        except OSError as error:
            raise SystemExit(f"repro: cannot save model {args.save!r}: {error}")
    print(reporting.render_offline_modeling({args.app: artifacts}))
    return 0


def _print_run_summary(outcomes: Dict[str, RunOutcome]) -> None:
    print(reporting.render_table3(outcomes))
    print()
    for key, outcome in outcomes.items():
        summary = aggregate(outcome.results)
        print(f"{key}: one-shot {summary.one_shot_rate * 100:.0f}%, "
              f"avg total tokens {summary.avg_total_tokens:.0f}")


def command_run(args) -> int:
    runner = _runner(args)
    with _RunTelemetry(args) as tele:
        outcomes = runner.run_settings([setting_by_key(key) for key in args.settings],
                                       progress=_progress(args))
        _print_run_summary(outcomes)
        if args.export:
            _export_outcomes(args.export, _runner_config_payload(runner), outcomes)
        _record_grid_run(tele, args, runner, outcomes)
    return 0


def command_report(args) -> int:
    runner = _runner(args)
    with _RunTelemetry(args) as tele:
        outcomes = runner.run_settings([setting_by_key(key) for key in CORE_SETTING_KEYS],
                                       progress=_progress(args))
        print(reporting.render_table3(outcomes))
        print()
        print(reporting.render_figure5a(outcomes))
        print()
        print(reporting.render_figure5b(outcomes, groups=[list(CORE_SETTING_KEYS)]))
        print()
        print(reporting.render_figure6(outcomes["dmi-gpt5-medium"].results,
                                       outcomes["gui-gpt5-medium"].results))
        print()
        print(reporting.render_one_shot(outcomes, "dmi-gpt5-medium"))
        if args.export:
            _export_outcomes(args.export, _runner_config_payload(runner), outcomes)
        _record_grid_run(tele, args, runner, outcomes)
    return 0


# ----------------------------------------------------------------------
# shard plan / run / merge
# ----------------------------------------------------------------------
def command_shard_plan(args) -> int:
    runner = BenchmarkRunner(BenchmarkConfig(trials=args.trials, seed=args.seed,
                                             tasks=_resolve_tasks(args.tasks, getattr(args, 'synthetic', None))))
    try:
        plan = runner.shard_plan([setting_by_key(key) for key in args.settings],
                                 args.shards)
        paths = plan.write(args.out)
    except ShardError as error:
        raise SystemExit(f"repro: {error}")
    except OSError as error:
        raise SystemExit(f"repro: cannot write manifests to {args.out!r}: {error}")
    for manifest, path in zip(plan.manifests, paths):
        print(f"wrote {path} ({len(manifest.specs)} trial specs)")
    print(f"{len(paths)} shards, {sum(len(m.specs) for m in plan.manifests)} "
          f"trial specs total (seed {args.seed}, {args.trials} trial(s)/task).")
    print("Run each with 'repro shard run MANIFEST --results FILE', then "
          "combine with 'repro shard merge RESULTS...'.")
    return 0


def command_shard_run(args) -> int:
    _check_cache_dir(args.cache_dir)
    with _RunTelemetry(args) as tele:
        try:
            manifest = ShardManifest.load(args.manifest)
            executor = ManifestExecutor(jobs=args.jobs,
                                        cache_dir=args.cache_dir,
                                        cache_max_entries=args.cache_max_entries)
            shard = executor.run(manifest, progress=_progress(args))
            path = shard.save(args.results)
        except ShardError as error:
            raise SystemExit(f"repro: {error}")
        except OSError as error:
            raise SystemExit(f"repro: cannot write results {args.results!r}: {error}")
        print(f"shard {manifest.shard_index + 1}/{manifest.shard_count}: "
              f"{len(shard.results)} results -> {path}")
        tele.record(
            executor="file-shard", seed=manifest.seed,
            trials=manifest.trials, jobs=args.jobs,
            setting_keys=manifest.setting_keys, task_ids=manifest.task_ids,
            results_by_setting=_results_by_setting([shard]),
            fingerprint=manifest.fingerprint,
            # One shard is a slice of the grid: the subset marker keeps its
            # config_key from matching (and diffing silently against) a
            # full run of the same plan.
            subset=_shard_subset([manifest.shard_index],
                                 manifest.shard_count),
            context={"manifest": str(args.manifest),
                     "shard_index": manifest.shard_index,
                     "shard_count": manifest.shard_count})
    return 0


def _emit_merged(shards: List[ShardResults], outcomes: Dict[str, RunOutcome],
                 *, report: bool, export: Optional[str],
                 extra_config: Optional[Dict[str, object]] = None) -> None:
    """Shared output path of ``shard merge`` and ``shard collect``."""
    _print_run_summary(outcomes)
    if report:
        # Figure 5b compares interfaces *within* one model configuration;
        # group the merged settings by model profile so an 8-setting merge
        # never cross-normalizes gpt5-medium against gpt5-mini bars.
        groups: Dict[str, List[str]] = {}
        for key in outcomes:
            groups.setdefault(setting_by_key(key).profile.name, []).append(key)
        print()
        print(reporting.render_figure5a(outcomes))
        print()
        print(reporting.render_figure5b(outcomes, groups=list(groups.values())))
        if "dmi-gpt5-medium" in outcomes and "gui-gpt5-medium" in outcomes:
            print()
            print(reporting.render_figure6(outcomes["dmi-gpt5-medium"].results,
                                           outcomes["gui-gpt5-medium"].results))
        if "dmi-gpt5-medium" in outcomes:
            print()
            print(reporting.render_one_shot(outcomes, "dmi-gpt5-medium"))
    if export:
        reference = shards[0].manifest
        config: Dict[str, object] = {
            "trials": reference.trials,
            "seed": reference.seed,
            "shards": reference.shard_count,
            "fingerprint": reference.fingerprint,
        }
        config.update(extra_config or {})
        try:
            _export_outcomes(export, config, outcomes)
        except OSError as error:
            raise SystemExit(f"repro: cannot write export {export!r}: {error}")


def command_shard_merge(args) -> int:
    try:
        shards = [ShardResults.load(path) for path in args.results]
        outcomes = merge_shard_results(shards)
    except ShardError as error:
        raise SystemExit(f"repro: {error}")
    _emit_merged(shards, outcomes, report=args.report, export=args.export)
    return 0


# ----------------------------------------------------------------------
# shard submit / work / collect (the broker queue)
# ----------------------------------------------------------------------
def _queue_location(args) -> str:
    """The broker's location for messages: whichever backend was chosen."""
    return args.broker if args.broker is not None else args.store


def _cli_broker(args) -> ShardBroker:
    """The broker selected by --broker (directory) or --store (object
    store); argparse guarantees exactly one was given.

    With ``--fault-schedule FILE`` (the chaos-conformance test rig) the
    chosen backend is wrapped in the seeded fault injector from
    :mod:`repro.bench.faults`: store-backed queues take the weather at the
    storage layer (the broker's own bounded retries must absorb it),
    directory queues take it on the queue verbs behind a
    :class:`RetryingBroker`.  Either way a drained queue under chaos is
    the proof the flag exists to produce."""
    schedule = None
    if getattr(args, "fault_schedule", None) is not None:
        schedule = FaultSchedule.load(args.fault_schedule)
    if args.store is not None:
        store = FileSystemObjectStore(args.store)
        if schedule is not None:
            store = FaultyObjectStore(store, schedule)
        return ObjectStoreBroker(store, lease_ttl=args.lease_ttl)
    broker: ShardBroker = LocalDirBroker(args.broker,
                                         lease_ttl=args.lease_ttl)
    if schedule is not None:
        broker = RetryingBroker(FaultyBroker(broker, schedule))
    return broker


def _check_heartbeat(args) -> None:
    # Cross-flag validation argparse cannot express: a heartbeat interval
    # at or above the TTL cannot keep a lease alive.
    if getattr(args, "heartbeat", None) is not None \
            and args.heartbeat != 0 and args.heartbeat >= args.lease_ttl:
        raise SystemExit(
            f"repro: --heartbeat ({args.heartbeat}) must be shorter than "
            f"--lease-ttl ({args.lease_ttl}); use a fraction of the TTL "
            "(default: lease_ttl/3) or 0 to disable heartbeats")


def command_shard_submit(args) -> int:
    runner = BenchmarkRunner(BenchmarkConfig(trials=args.trials, seed=args.seed,
                                             tasks=_resolve_tasks(args.tasks, getattr(args, 'synthetic', None))))
    # The telemetry context installs the --events/--registry sinks as the
    # process default, so the broker's PlanSubmitted (the plan trace's
    # root span — the anchor every reconstructed trial timeline links up
    # to) lands in the submitter's JSONL.
    with _RunTelemetry(args):
        try:
            plan = runner.shard_plan(
                [setting_by_key(key) for key in args.settings], args.shards)
            broker = _cli_broker(args)
            broker.submit(plan, name=args.plan, priority=args.priority)
        except ShardError as error:
            raise SystemExit(f"repro: {error}")
        except OSError as error:
            raise SystemExit(f"repro: cannot write to broker "
                             f"{_queue_location(args)!r}: {error}")
    total = sum(len(manifest.specs) for manifest in plan.manifests)
    backend = "--broker" if args.broker is not None else "--store"
    print(f"submitted {plan.shard_count} shard manifest(s), {total} trial "
          f"specs total (seed {args.seed}, {args.trials} trial(s)/task) "
          f"as plan {args.plan!r} to broker {_queue_location(args)}")
    print(f"Run 'repro shard work {backend} DIR' on any number of machines, "
          f"then 'repro shard collect {backend} DIR --plan {args.plan}'.")
    return 0


def command_shard_work(args) -> int:
    _check_cache_dir(args.cache_dir)
    _check_heartbeat(args)
    if args.max_idle_s is not None and not args.daemon:
        raise SystemExit("repro: --max-idle-s only applies to --daemon "
                         "workers (a non-daemon worker already exits when "
                         "the queue drains)")

    def on_manifest(lease: ShardLease, shard: ShardResults,
                    status: BrokerStatus) -> None:
        manifest = lease.manifest
        print(f"{worker.worker_id}: posted shard "
              f"{manifest.shard_index + 1}/{manifest.shard_count} "
              f"of plan {lease.plan!r} "
              f"({len(shard.results)} results; {status.render_line()})",
              flush=True)

    def on_renew(lease: ShardLease, renewed: bool) -> None:
        # Runs on the heartbeat thread; stderr like the trial progress.
        if not args.progress:
            return
        manifest = lease.manifest
        what = ("renewed lease on" if renewed
                else "lost lease on (abandoning)")
        print(f"{worker.worker_id}: {what} shard "
              f"{manifest.shard_index + 1}/{manifest.shard_count}",
              file=sys.stderr, flush=True)

    with _RunTelemetry(args) as tele:
        try:
            broker = _cli_broker(args)
            executor = ManifestExecutor(jobs=args.jobs,
                                        cache_dir=args.cache_dir,
                                        cache_max_entries=args.cache_max_entries)
            worker = ShardWorker(broker, executor, worker_id=args.worker_id,
                                 poll=args.poll, max_manifests=args.max_manifests,
                                 heartbeat=args.heartbeat, on_renew=on_renew,
                                 daemon=args.daemon, max_idle_s=args.max_idle_s)
            # SIGTERM/SIGINT ask the loop to stop: the in-flight manifest
            # finishes and posts, then run() returns — a clean drain-out
            # instead of a mid-manifest kill.
            previous_handlers = {}
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    previous_handlers[signum] = signal.signal(
                        signum, lambda *_: worker.stop())
                except ValueError:
                    pass  # not the main thread (in-process tests)
            try:
                completed = worker.run(progress=_progress(args),
                                       on_manifest=on_manifest)
            finally:
                for signum, handler in previous_handlers.items():
                    signal.signal(signum, handler)
        except ShardError as error:
            raise SystemExit(f"repro: {error}")
        except OSError as error:
            raise SystemExit(f"repro: broker {_queue_location(args)!r} I/O "
                             f"failed: {error}")
        summary = f"{worker.worker_id}: {len(completed)} manifest(s) executed"
        if worker.stopping:
            summary += " (stopped)"
        if worker.abandoned:
            summary += f", {worker.abandoned} abandoned (lease lost)"
        stats = executor.cache_stats()
        if stats is not None:
            summary += (f"; cache {stats['hits']} hit(s), "
                        f"{stats['misses']} miss(es)")
            if stats["evictions"]:
                summary += f", {stats['evictions']} evicted"
        print(summary)
        if len(worker.results_by_plan) > 1:
            for plan_label in sorted(worker.results_by_plan):
                line = (f"  plan {plan_label!r}: "
                        f"{len(worker.results_by_plan[plan_label])} "
                        "manifest(s)")
                delta = worker.cache_stats_by_plan.get(plan_label)
                if delta is not None:
                    line += (f"; cache {delta['hits']} hit(s), "
                             f"{delta['misses']} miss(es)")
                print(line)
        if completed:
            base = ("store-broker" if args.store is not None
                    else "dir-broker")
            # One record per plan this worker touched: concurrent tenants
            # stay distinguishable in `runs list`/`diff`, and each record's
            # grid identity is that plan's (plans may differ in every
            # identity field).
            for plan_label in sorted(worker.results_by_plan):
                plan_shards = worker.results_by_plan[plan_label]
                reference = plan_shards[0].manifest
                indices = sorted(shard.manifest.shard_index
                                 for shard in plan_shards)
                subset = None
                if len(indices) < reference.shard_count:
                    # This worker executed a (race-dependent) slice of the
                    # plan; mark which shards so the record only compares
                    # against the identical slice, never a full run.
                    subset = _shard_subset(indices, reference.shard_count)
                context: Dict[str, object] = {
                    "broker": str(_queue_location(args)),
                    "worker_id": worker.worker_id,
                    "plan": plan_label,
                    "manifests": len(plan_shards),
                    "abandoned": worker.abandoned}
                delta = worker.cache_stats_by_plan.get(plan_label)
                if delta is not None:
                    context["cache"] = dict(delta)
                tele.record(
                    executor=(base if plan_label == DEFAULT_PLAN
                              else f"{base}:{plan_label}"),
                    seed=reference.seed, trials=reference.trials,
                    jobs=args.jobs,
                    setting_keys=reference.setting_keys,
                    task_ids=reference.task_ids,
                    results_by_setting=_results_by_setting(plan_shards),
                    fingerprint=reference.fingerprint,
                    subset=subset,
                    context=context)
        elif tele.registry is not None:
            print("no manifests executed; nothing recorded in the registry")
    return 0


def command_shard_collect(args) -> int:
    name = args.plan
    with _RunTelemetry(args) as tele:
        try:
            broker = _cli_broker(args)
            plan_stat = broker.status().plan(name)
            while args.poll > 0 and (plan_stat is None
                                     or not plan_stat.complete):
                if args.progress:
                    waiting = (plan_stat.render_line() if plan_stat is not None
                               else "not yet submitted")
                    done = plan_stat.done if plan_stat is not None else 0
                    total = (plan_stat.shard_count
                             if plan_stat is not None else 0)
                    print(f"[{done}/{total}] waiting for plan {name!r}: "
                          f"{waiting}", file=sys.stderr, flush=True)
                time.sleep(args.poll)
                plan_stat = broker.status().plan(name)
            if plan_stat is not None and not plan_stat.complete:
                raise SystemExit(f"repro: plan {name!r} on broker "
                                 f"{_queue_location(args)!r} is "
                                 f"not complete: {plan_stat.render_line()}; "
                                 "run more workers or wait with --poll")
            # plan_stat is None (never submitted): fall through to
            # collect(), whose ShardError names the broker and the known
            # plan names.
            shards = broker.collect(name)
            outcomes = merge_shard_results(shards)
        except ShardError as error:
            raise SystemExit(f"repro: {error}")
        except OSError as error:
            raise SystemExit(f"repro: broker {_queue_location(args)!r} I/O "
                             f"failed: {error}")
        _emit_merged(shards, outcomes, report=args.report, export=args.export,
                     extra_config={"broker": str(_queue_location(args)),
                                   "plan": name})
        reference = shards[0].manifest
        base = "store-broker" if args.store is not None else "dir-broker"
        tele.record(
            executor=base if name == DEFAULT_PLAN else f"{base}:{name}",
            seed=reference.seed, trials=reference.trials, jobs=1,
            setting_keys=reference.setting_keys, task_ids=reference.task_ids,
            results_by_setting={key: outcome.results
                                for key, outcome in outcomes.items()},
            fingerprint=reference.fingerprint,
            # A collect record carries the full grid's *results* but its
            # wall clock measured only the coordinator's poll/merge, not
            # trial execution; the marker keeps it from silently diffing
            # as "same work" against records that actually ran trials.
            subset="collect",
            context={"broker": str(_queue_location(args)), "role": "collect",
                     "plan": name, "shards": reference.shard_count})
    return 0


def command_shard_status(args) -> int:
    try:
        status = _cli_broker(args).status()
    except ShardError as error:
        raise SystemExit(f"repro: {error}")
    except OSError as error:
        raise SystemExit(f"repro: broker {_queue_location(args)!r} I/O "
                         f"failed: {error}")
    if args.json:
        print(json.dumps(status.as_dict(), indent=2, sort_keys=True))
    else:
        print(status.render())
    return 0


# ----------------------------------------------------------------------
# fleet status / advise (aggregated gauges for an always-on worker pool)
# ----------------------------------------------------------------------
def _fleet_aggregate(args):
    """The shared status/advise input path: live broker counters as the
    authoritative plan gauges, any number of --metrics snapshots for
    worker liveness/counters, any number of --events tails for drain
    rates.  Returns (broker status, aggregated FleetGauges)."""
    try:
        status = _cli_broker(args).status()
    except ShardError as error:
        raise SystemExit(f"repro: {error}")
    except OSError as error:
        raise SystemExit(f"repro: broker {_queue_location(args)!r} I/O "
                         f"failed: {error}")
    aggregator = FleetAggregator(max_age_s=args.max_age_s)
    aggregator.add_broker_status(status)
    for path in args.metrics or ():
        try:
            aggregator.add_snapshot(path)
        except TelemetryError as error:
            raise SystemExit(f"repro: {error}")
    for path in args.events or ():
        try:
            aggregator.add_events(path)
        except (TelemetryError, OSError) as error:
            raise SystemExit(f"repro: cannot read events file {path!r}: "
                             f"{error}")
    return status, aggregator.aggregate()


def command_fleet_status(args) -> int:
    status, gauges = _fleet_aggregate(args)
    if args.prom_dir is not None:
        try:
            promfile = write_promfile(gauges, args.prom_dir)
        except OSError as error:
            raise SystemExit(f"repro: cannot write promfile into "
                             f"{args.prom_dir!r}: {error}")
    stale = gauges.stale_workers
    if args.json:
        payload: Dict[str, object] = status.as_dict()
        payload["fleet"] = gauges.as_dict()
        if args.metrics and len(args.metrics) == 1:
            # Single-worker compatibility shape (PR 7): the raw snapshot
            # under its original key, alongside the aggregated view.
            try:
                payload["worker_metrics"] = load_metrics_snapshot(
                    args.metrics[0])
            except TelemetryError as error:
                raise SystemExit(f"repro: {error}")
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(status.render())
        if gauges.workers or gauges.drain_rate:
            print(gauges.render())
        if args.prom_dir is not None:
            print(f"wrote {promfile}")
    for worker in stale:
        print(f"repro: warning: snapshot {worker.path} ({worker.worker_id}) "
              f"is {worker.age_s:.1f}s old (--max-age-s {args.max_age_s}); "
              "its worker may be dead", file=sys.stderr)
    if stale and args.strict:
        return 2
    return 0


def command_fleet_advise(args) -> int:
    _, gauges = _fleet_aggregate(args)
    try:
        policy = AdvisorPolicy(target_backlog=args.target_backlog,
                               min_workers=args.min_workers,
                               max_workers=args.max_workers)
    except ObserveError as error:
        raise SystemExit(f"repro: {error}")
    advice = policy.advise(gauges)
    if args.emit is not None:
        try:
            emit_sink = JsonlSink(args.emit)
            try:
                emit_sink.emit(advice)
            finally:
                emit_sink.close()
        except OSError as error:
            raise SystemExit(f"repro: cannot append advice to "
                             f"{args.emit!r}: {error}")
    if args.json:
        print(json.dumps(advice.as_dict(), indent=2, sort_keys=True))
    else:
        print(f"{advice.action}: {advice.workers} live worker(s) -> "
              f"{advice.recommended} recommended ({advice.reason})")
    return 0


def command_fleet(args) -> int:
    handlers = {
        "status": command_fleet_status,
        "advise": command_fleet_advise,
    }
    return handlers[args.fleet_command](args)


# ----------------------------------------------------------------------
# trace show / export / id (timeline reconstruction from merged JSONL)
# ----------------------------------------------------------------------
def _trace_from_files(trace_id: str, paths: Sequence[str]):
    events: List[Dict[str, object]] = []
    for path in paths:
        try:
            events.extend(read_jsonl_events(path))
        except TelemetryError as error:
            raise SystemExit(f"repro: {error}")
        except OSError as error:
            raise SystemExit(f"repro: cannot read events file {path!r}: "
                             f"{error}")
    return build_trace(events, trace_id)


def command_trace_show(args) -> int:
    trace = _trace_from_files(args.trace_id, args.events)
    print(render_trace(trace))
    return 0 if trace.events else 1


def command_trace_export(args) -> int:
    trace = _trace_from_files(args.trace_id, args.events)
    payload = json.dumps(trace.as_dict(), indent=2, sort_keys=True)
    if args.out is not None:
        try:
            Path(args.out).write_text(payload + "\n", encoding="utf-8")
        except OSError as error:
            raise SystemExit(f"repro: cannot write {args.out!r}: {error}")
        print(f"wrote trace {trace.trace_id} ({len(trace.events)} events) "
              f"to {args.out}")
    else:
        print(payload)
    return 0 if trace.events else 1


def command_trace_id(args) -> int:
    from repro.bench.engine import TrialSpec, trial_seed

    spec = TrialSpec(task_id=args.task, setting_key=args.setting,
                     trial=args.trial,
                     seed=trial_seed(args.seed, args.task, args.setting,
                                     args.trial))
    print(spec.trace_id)
    return 0


def command_trace(args) -> int:
    handlers = {
        "show": command_trace_show,
        "export": command_trace_export,
        "id": command_trace_id,
    }
    return handlers[args.trace_command](args)


def command_shard(args) -> int:
    handlers = {
        "plan": command_shard_plan,
        "run": command_shard_run,
        "merge": command_shard_merge,
        "submit": command_shard_submit,
        "work": command_shard_work,
        "collect": command_shard_collect,
        "status": command_shard_status,
    }
    return handlers[args.shard_command](args)


# ----------------------------------------------------------------------
# runs list / show / diff / export (the run registry)
# ----------------------------------------------------------------------
def _silence_stdout() -> None:
    """Point stdout at devnull after a BrokenPipeError, so the
    interpreter's exit-time flush doesn't raise again."""
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())


def _open_registry(args) -> RunRegistry:
    registry = RunRegistry.from_env(args.registry)
    if registry is None:
        raise SystemExit("repro: no run registry selected: pass "
                         "--registry DIR or set $REPRO_REGISTRY")
    return registry


def _load_registry_tolerant(registry: RunRegistry):
    """Readable records, with one stderr warning per skipped bad file."""
    records, problems = registry.load_all_tolerant()
    for problem in problems:
        print(f"repro: skipping unreadable run record: {problem}",
              file=sys.stderr)
    return records


def command_runs_list(args) -> int:
    registry = _open_registry(args)
    records = _load_registry_tolerant(registry)
    # Newest first: run ids sort chronologically (timestamp-prefixed), so
    # the latest run is always the first line — deterministic even for
    # same-second runs thanks to the id's microsecond+nonce tail.
    records = sorted(records, key=lambda record: record.run_id, reverse=True)
    if args.ids:
        for record in records:
            print(record.run_id)
        return 0
    if not records:
        print(f"no runs recorded in {registry.root}")
        return 0
    # Width fits new_run_id()'s 29-char "YYYYMMDD-HHMMSS.ffffff-xxxxxx".
    header = (f"{'run id':<29s} {'created (UTC)':<21s} {'executor':<13s} "
              f"{'trials':>6s} {'wall s':>9s} settings")
    print(header)
    print("-" * len(header))
    for record in records:
        print(f"{record.run_id:<29s} {record.created_at:<21s} "
              f"{record.executor:<13s} {record.trial_count:>6d} "
              f"{record.wall_clock_s:>9.2f} {','.join(record.setting_keys)}")
    return 0


def command_runs_show(args) -> int:
    registry = _open_registry(args)
    try:
        record = registry.resolve(args.run_id)
    except RegistryError as error:
        raise SystemExit(f"repro: {error}")
    print(json.dumps(record.as_dict(), indent=2, ensure_ascii=False))
    return 0


def command_runs_diff(args) -> int:
    registry = _open_registry(args)
    try:
        specs = [FailIf.parse(text) for text in args.fail_if]
        before = registry.resolve(args.before)
        after = registry.resolve(args.after)
    except RegistryError as error:
        raise SystemExit(f"repro: {error}")
    rows = diff_runs(before, after)
    violations = check_fail_ifs(rows, specs)
    # This command is a CI gate: its exit code must survive a downstream
    # `| head` closing stdout mid-table, so the violations are computed
    # first and the pipe error is absorbed *here* (main()'s catch-all
    # would turn the exit code into 0).
    try:
        print(render_diff(before, after, rows))
    except BrokenPipeError:
        _silence_stdout()
    for message in violations:
        print(f"repro: regression: {message}", file=sys.stderr)
    return 1 if violations else 0


def command_runs_export(args) -> int:
    registry = _open_registry(args)
    try:
        payload = export_bench(_load_registry_tolerant(registry), args.bench,
                               pr=args.pr)
    except RegistryError as error:
        raise SystemExit(f"repro: {error}")
    except OSError as error:
        raise SystemExit(f"repro: cannot write trajectory {args.bench!r}: "
                         f"{error}")
    tagged = f" (PR {payload['pr']})" if payload["pr"] is not None else ""
    print(f"wrote {len(payload['datapoints'])} datapoint(s) to "
          f"{args.bench}{tagged}")
    return 0


def command_runs(args) -> int:
    handlers = {
        "list": command_runs_list,
        "show": command_runs_show,
        "diff": command_runs_diff,
        "export": command_runs_export,
    }
    return handlers[args.runs_command](args)


# ----------------------------------------------------------------------
# cache stats / gc (offline-model cache maintenance)
# ----------------------------------------------------------------------
def _open_cache(cache_dir: str) -> ArtifactCache:
    path = Path(cache_dir)
    if not path.is_dir():
        raise SystemExit(f"repro: --cache-dir {cache_dir!r} is not a "
                         "directory")
    return ArtifactCache(path, DMIConfig())


def command_cache_stats(args) -> int:
    cache = _open_cache(args.cache_dir)
    rows = cache.inventory()
    if not rows:
        print(f"cache {args.cache_dir} is empty")
        return 0
    width = max(len(str(row["entry"])) for row in rows)
    print(f"{'entry':<{width}s} {'bytes':>10s} {'last load age':>14s}")
    for row in rows:
        print(f"{row['entry']:<{width}s} {row['bytes']:>10d} "
              f"{row['age_s']:>13.1f}s")
    total = sum(int(row["bytes"]) for row in rows)
    print(f"{len(rows)} entr{'y' if len(rows) == 1 else 'ies'}, "
          f"{total} bytes total in {args.cache_dir}")
    return 0


def command_cache_gc(args) -> int:
    cache = _open_cache(args.cache_dir)
    if args.max_age_s is None and args.max_bytes is None:
        print("repro: no --max-age-s or --max-bytes bound given; "
              "nothing to evict (use 'cache stats' to inspect)",
              file=sys.stderr)
    with _RunTelemetry(args) as tele:
        stats = cache.gc(max_age_s=args.max_age_s,
                         max_total_bytes=args.max_bytes)
        print(f"evicted {stats['evicted']} entr"
              f"{'y' if stats['evicted'] == 1 else 'ies'} "
              f"({stats['reclaimed_bytes']} bytes); "
              f"{stats['remaining_entries']} remaining "
              f"({stats['remaining_bytes']} bytes) in {args.cache_dir}")
        tele.record(
            executor="cache-gc", seed=0, trials=0, jobs=1,
            setting_keys=[], task_ids=[], results_by_setting={},
            fingerprint=config_fingerprint(cache.config),
            subset="cache-gc",
            context={"cache_dir": str(args.cache_dir),
                     "max_age_s": args.max_age_s,
                     "max_bytes": args.max_bytes,
                     "evicted": stats["evicted"],
                     "reclaimed_bytes": stats["reclaimed_bytes"],
                     "remaining_entries": stats["remaining_entries"],
                     "remaining_bytes": stats["remaining_bytes"]})
    return 0


def command_cache(args) -> int:
    handlers = {
        "stats": command_cache_stats,
        "gc": command_cache_gc,
    }
    return handlers[args.cache_command](args)


def command_tasks(args) -> int:
    for task in all_tasks():
        if args.app and task.app != args.app:
            continue
        print(f"{task.task_id:32s} [{task.app:10s}] {task.instruction}")
    return 0


def command_generate(args) -> int:
    """Resolve a synthetic spec and print its identity (no execution).

    The canonical token + digest are the seeding contract: any process
    given the token regenerates the same app and suite, so this output is
    what pipelines pass to ``--synthetic`` on ``run``/``shard submit``.
    """
    from repro.apps.synthetic import (SyntheticSpec, synthetic_suite,
                                      topology_digest)

    try:
        spec = SyntheticSpec.parse(args.spec)
    except ValueError as error:
        raise SystemExit(f"repro: {error}")
    suite = synthetic_suite(spec)
    if args.ids:
        for task in suite:
            print(task.task_id)
        return 0
    summary = {
        "token": spec.token(),
        "app": spec.app_name,
        "topology_digest": topology_digest(spec),
        "tasks": len(suite),
        "knobs": {"seed": spec.seed, "tabs": spec.tabs, "groups": spec.groups,
                  "controls": spec.controls, "gallery": spec.gallery,
                  "menu": spec.menu, "dialogs": spec.dialogs,
                  "cycle": spec.cycle, "contexts": spec.contexts},
    }
    if args.as_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"token:           {summary['token']}")
        print(f"app:             {summary['app']}")
        print(f"topology digest: {summary['topology_digest']}")
        print(f"tasks:           {summary['tasks']}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "model": command_model,
        "run": command_run,
        "report": command_report,
        "shard": command_shard,
        "fleet": command_fleet,
        "trace": command_trace,
        "runs": command_runs,
        "cache": command_cache,
        "tasks": command_tasks,
        "generate": command_generate,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # A downstream pager/head closed our stdout (e.g. `repro runs list
        # --ids | head -1`): exit cleanly.  Commands whose exit code *is*
        # the product (`runs diff --fail-if`) absorb the pipe error
        # themselves so it can't mask their verdict.
        _silence_stdout()
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
