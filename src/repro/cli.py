"""Command-line interface for the reproduction.

Four subcommands cover the common workflows without writing any code:

``model``
    Run the offline phase for one application and print the modeling
    statistics (UNG size, forest, core topology, token estimate).
    ``--save PATH`` persists the navigation model (UNG + rip report) to
    JSON; ``--load PATH`` rebuilds the artefacts from such a file instead
    of re-ripping — the paper's "model once, reuse on any machine" path.
``run``
    Execute the benchmark for one or more Table 3 configurations and print
    the aggregate metrics (optionally restricted to a subset of tasks).
``report``
    Run the three core-setting configurations and print the paper's Table 3,
    Figure 5a/5b, Figure 6 and one-shot sections in text form.
``tasks``
    List the benchmark task suite.

Execution-engine flags (``run`` and ``report``):

``--jobs N``
    Fan trials out over N worker processes.  Trials are deterministically
    seeded work units, so results are identical to a serial run for the
    same ``--seed``.
``--cache-dir PATH``
    Content-addressed cache of offline navigation models.  The first run
    rips each application once and persists the UNG; later runs (and every
    parallel worker) load instead of re-ripping.
``--export FILE``
    Write all per-trial results and aggregate summaries to a JSON file.

The default seed is 11 everywhere (``repro.bench.runner.DEFAULT_SEED``): the
library, this CLI and the benchmark harness share one constant so quoted
numbers agree across entry points.

Examples::

    python -m repro model powerpoint --save models/ppt.json
    python -m repro model powerpoint --load models/ppt.json
    python -m repro run --settings dmi-gpt5-medium gui-gpt5-medium --trials 1
    python -m repro run --jobs 4 --cache-dir .dmi-cache --export results.json
    python -m repro report --trials 1 --tasks ppt-01-blue-background word-02-landscape
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.apps import APP_FACTORIES
from repro.bench import reporting
from repro.bench.metrics import aggregate
from repro.bench.runner import (
    BenchmarkConfig,
    BenchmarkRunner,
    CORE_SETTING_KEYS,
    DEFAULT_SEED,
    RunOutcome,
    TABLE3_SETTINGS,
    setting_by_key,
)
from repro.bench.tasks import all_tasks, task_by_id
from repro.dmi.interface import build_offline_artifacts, rebuild_offline_artifacts
from repro.topology.persistence import load_model, save_ung


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the DMI (Declarative Model Interface) system "
                    "from 'From Imperative to Declarative' (EuroSys 2026).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    model = subparsers.add_parser("model", help="run the offline modeling phase for one app")
    model.add_argument("app", choices=sorted(APP_FACTORIES), help="application to model")
    model.add_argument("--save", metavar="PATH", default=None,
                       help="persist the navigation model (UNG + rip report) to JSON")
    model.add_argument("--load", metavar="PATH", default=None,
                       help="rebuild artefacts from a saved model instead of ripping")

    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
        return value

    def add_engine_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--jobs", type=positive_int, default=1,
                         help="worker processes (1 = serial; >1 = process pool)")
        sub.add_argument("--cache-dir", metavar="PATH", default=None,
                         help="on-disk cache for offline navigation models")
        sub.add_argument("--export", metavar="FILE", default=None,
                         help="write per-trial results and summaries to a JSON file")

    run = subparsers.add_parser("run", help="run benchmark configurations")
    run.add_argument("--settings", nargs="+", default=list(CORE_SETTING_KEYS),
                     choices=[s.key for s in TABLE3_SETTINGS],
                     help="Table 3 configuration keys to run")
    run.add_argument("--tasks", nargs="*", default=None,
                     help="task ids to run (default: the full 27-task suite)")
    run.add_argument("--trials", type=int, default=3, help="trials per task (paper: 3)")
    run.add_argument("--seed", type=int, default=DEFAULT_SEED, help="benchmark seed")
    add_engine_flags(run)

    report = subparsers.add_parser("report", help="print the core-setting tables and figures")
    report.add_argument("--tasks", nargs="*", default=None)
    report.add_argument("--trials", type=int, default=3)
    report.add_argument("--seed", type=int, default=DEFAULT_SEED)
    add_engine_flags(report)

    tasks = subparsers.add_parser("tasks", help="list the benchmark tasks")
    tasks.add_argument("--app", choices=sorted(APP_FACTORIES), default=None)
    return parser


def _resolve_tasks(task_ids: Optional[Sequence[str]]):
    if not task_ids:
        return None
    return [task_by_id(task_id) for task_id in task_ids]


def _runner(args) -> BenchmarkRunner:
    if args.cache_dir is not None and Path(args.cache_dir).exists() \
            and not Path(args.cache_dir).is_dir():
        raise SystemExit(f"repro: --cache-dir {args.cache_dir!r} exists and "
                         "is not a directory")
    return BenchmarkRunner(BenchmarkConfig(trials=args.trials, seed=args.seed,
                                           tasks=_resolve_tasks(args.tasks),
                                           jobs=args.jobs, cache_dir=args.cache_dir))


def _export_outcomes(path: str, runner: BenchmarkRunner,
                     outcomes: Dict[str, RunOutcome]) -> None:
    payload = {
        "config": {
            "trials": runner.config.trials,
            "seed": runner.config.seed,
            "jobs": runner.config.jobs,
            "cache_dir": str(runner.config.cache_dir) if runner.config.cache_dir else None,
        },
        "settings": {
            key: {
                "label": outcome.setting.label,
                "summary": aggregate(outcome.results).as_dict(),
                "results": [result.as_dict() for result in outcome.results],
            }
            for key, outcome in outcomes.items()
        },
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=1, ensure_ascii=False),
                      encoding="utf-8")


def command_model(args) -> int:
    if args.load:
        try:
            ung, report = load_model(args.load)
        except OSError as error:
            raise SystemExit(f"repro: cannot load model {args.load!r}: {error}")
        except (ValueError, KeyError) as error:
            raise SystemExit(f"repro: invalid model file {args.load!r}: {error}")
        if ung.app_name and ung.app_name.lower() != args.app:
            raise SystemExit(f"repro: {args.load!r} is a model of "
                             f"{ung.app_name!r}, not of {args.app!r}")
        artifacts = rebuild_offline_artifacts(ung, rip_report=report)
    else:
        app = APP_FACTORIES[args.app]()
        artifacts = build_offline_artifacts(app)
    if args.save:
        try:
            save_ung(artifacts.ung, args.save, report=artifacts.rip_report)
        except OSError as error:
            raise SystemExit(f"repro: cannot save model {args.save!r}: {error}")
    print(reporting.render_offline_modeling({args.app: artifacts}))
    return 0


def command_run(args) -> int:
    runner = _runner(args)
    outcomes = runner.run_settings([setting_by_key(key) for key in args.settings])
    print(reporting.render_table3(outcomes))
    print()
    for key, outcome in outcomes.items():
        summary = aggregate(outcome.results)
        print(f"{key}: one-shot {summary.one_shot_rate * 100:.0f}%, "
              f"avg total tokens {summary.avg_total_tokens:.0f}")
    if args.export:
        _export_outcomes(args.export, runner, outcomes)
    return 0


def command_report(args) -> int:
    runner = _runner(args)
    outcomes = runner.run_settings([setting_by_key(key) for key in CORE_SETTING_KEYS])
    print(reporting.render_table3(outcomes))
    print()
    print(reporting.render_figure5a(outcomes))
    print()
    print(reporting.render_figure5b(outcomes, groups=[list(CORE_SETTING_KEYS)]))
    print()
    print(reporting.render_figure6(outcomes["dmi-gpt5-medium"].results,
                                   outcomes["gui-gpt5-medium"].results))
    print()
    print(reporting.render_one_shot(outcomes, "dmi-gpt5-medium"))
    if args.export:
        _export_outcomes(args.export, runner, outcomes)
    return 0


def command_tasks(args) -> int:
    for task in all_tasks():
        if args.app and task.app != args.app:
            continue
        print(f"{task.task_id:32s} [{task.app:10s}] {task.instruction}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "model": command_model,
        "run": command_run,
        "report": command_report,
        "tasks": command_tasks,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
