"""Command-line interface for the reproduction.

Three subcommands cover the common workflows without writing any code:

``model``
    Run the offline phase for one application and print the modeling
    statistics (UNG size, forest, core topology, token estimate).
``run``
    Execute the benchmark for one or more Table 3 configurations and print
    the aggregate metrics (optionally restricted to a subset of tasks).
``report``
    Run the three core-setting configurations and print the paper's Table 3,
    Figure 5a/5b, Figure 6 and one-shot sections in text form.

Examples::

    python -m repro model powerpoint
    python -m repro run --settings dmi-gpt5-medium gui-gpt5-medium --trials 1
    python -m repro report --trials 1 --tasks ppt-01-blue-background word-02-landscape
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.apps import APP_FACTORIES
from repro.bench import reporting
from repro.bench.metrics import aggregate
from repro.bench.runner import (
    BenchmarkConfig,
    BenchmarkRunner,
    CORE_SETTING_KEYS,
    TABLE3_SETTINGS,
    setting_by_key,
)
from repro.bench.tasks import all_tasks, task_by_id
from repro.dmi.interface import build_offline_artifacts


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the DMI (Declarative Model Interface) system "
                    "from 'From Imperative to Declarative' (EuroSys 2026).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    model = subparsers.add_parser("model", help="run the offline modeling phase for one app")
    model.add_argument("app", choices=sorted(APP_FACTORIES), help="application to model")

    run = subparsers.add_parser("run", help="run benchmark configurations")
    run.add_argument("--settings", nargs="+", default=list(CORE_SETTING_KEYS),
                     choices=[s.key for s in TABLE3_SETTINGS],
                     help="Table 3 configuration keys to run")
    run.add_argument("--tasks", nargs="*", default=None,
                     help="task ids to run (default: the full 27-task suite)")
    run.add_argument("--trials", type=int, default=3, help="trials per task (paper: 3)")
    run.add_argument("--seed", type=int, default=11, help="benchmark seed")

    report = subparsers.add_parser("report", help="print the core-setting tables and figures")
    report.add_argument("--tasks", nargs="*", default=None)
    report.add_argument("--trials", type=int, default=3)
    report.add_argument("--seed", type=int, default=11)

    tasks = subparsers.add_parser("tasks", help="list the benchmark tasks")
    tasks.add_argument("--app", choices=sorted(APP_FACTORIES), default=None)
    return parser


def _resolve_tasks(task_ids: Optional[Sequence[str]]):
    if not task_ids:
        return None
    return [task_by_id(task_id) for task_id in task_ids]


def _runner(args) -> BenchmarkRunner:
    return BenchmarkRunner(BenchmarkConfig(trials=args.trials, seed=args.seed,
                                           tasks=_resolve_tasks(args.tasks)))


def command_model(args) -> int:
    app = APP_FACTORIES[args.app]()
    artifacts = build_offline_artifacts(app)
    print(reporting.render_offline_modeling({args.app: artifacts}))
    return 0


def command_run(args) -> int:
    runner = _runner(args)
    outcomes = runner.run_settings([setting_by_key(key) for key in args.settings])
    print(reporting.render_table3(outcomes))
    print()
    for key, outcome in outcomes.items():
        summary = aggregate(outcome.results)
        print(f"{key}: one-shot {summary.one_shot_rate * 100:.0f}%, "
              f"avg total tokens {summary.avg_total_tokens:.0f}")
    return 0


def command_report(args) -> int:
    runner = _runner(args)
    outcomes = runner.run_settings([setting_by_key(key) for key in CORE_SETTING_KEYS])
    print(reporting.render_table3(outcomes))
    print()
    print(reporting.render_figure5a(outcomes))
    print()
    print(reporting.render_figure5b(outcomes, groups=[list(CORE_SETTING_KEYS)]))
    print()
    print(reporting.render_figure6(outcomes["dmi-gpt5-medium"].results,
                                   outcomes["gui-gpt5-medium"].results))
    print()
    print(reporting.render_one_shot(outcomes, "dmi-gpt5-medium"))
    return 0


def command_tasks(args) -> int:
    for task in all_tasks():
        if args.app and task.app != args.app:
            continue
        print(f"{task.task_id:32s} [{task.app:10s}] {task.instruction}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "model": command_model,
        "run": command_run,
        "report": command_report,
        "tasks": command_tasks,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
