"""A minimal object store with conditional writes, for cloud-shaped brokers.

:class:`~repro.bench.transport.ObjectStoreBroker` needs very little from a
storage service: blind reads, prefix listing, and two *conditional* writes —
create-if-absent and compare-and-swap on a version tag.  Every mainstream
object store offers exactly this (S3 ``If-None-Match``/``If-Match``, GCS
generation preconditions, Azure ETags), so the broker is written against the
five-method :class:`ObjectStore` interface and any backend implementing it
is deployable unchanged.

Two backends ship here:

:class:`InMemoryObjectStore`
    A dict behind a lock.  Used by tests and single-process runs; it is the
    semantic reference the conformance suite holds other backends to.
:class:`FileSystemObjectStore`
    A directory emulating the conditional-write semantics, so the whole
    object-store code path can be exercised (and even deployed, over shared
    storage) without any cloud dependency.  Each key is a subdirectory
    holding immutable *generation* files; the current value is the highest
    generation and the etag is that generation's file name.  A CAS from
    generation *n* creates generation *n+1* with :func:`os.link` — atomic,
    so exactly one of any number of racing writers succeeds.  Superseded
    generation files are truncated but kept for a window (their *names*
    are what make stale CAS attempts fail), then pruned behind an
    atomically advanced floor marker so hot keys (lease heartbeats) don't
    grow without bound.  :meth:`delete` links an empty *tombstone*
    generation instead of removing files, so the generation lineage — and
    with it etag freshness — survives delete + recreate: an etag read
    before a delete can never match again (no ABA).

Both backends refuse empty values: zero bytes is how a truncated generation
file marks itself superseded and how a tombstone marks a deleted key, so an
empty object would be indistinguishable from both.
"""

from __future__ import annotations

import math
import os
import random
import re
import threading
import time
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, TypeVar, Union
from urllib.parse import quote, unquote

from repro.bench import telemetry
from repro.bench.shard import ShardError
from repro.bench.telemetry import CasRetry, EventSink, StoreRetry

#: (value, etag) as returned by :meth:`ObjectStore.get`.
StoredObject = Tuple[bytes, str]

_T = TypeVar("_T")


class TransientStoreError(ShardError):
    """A storage operation failed in a way worth retrying.

    Raised for failures that say nothing about the *state* of the store —
    an injected chaos fault (:mod:`repro.bench.faults`), a cloud 5xx or
    throttle, a :class:`FileSystemObjectStore` read that kept losing to
    concurrent writers.  Consumers (``ObjectStoreBroker``, ``ShardWorker``)
    absorb these with :func:`call_with_retries`; everything else in the
    :class:`ShardError` family is a semantic error retrying cannot fix.
    """


class RetryBudgetExceeded(ShardError):
    """A retried operation kept failing past its :class:`RetryPolicy` budget.

    The message names the op, the key and the attempt count, so a give-up
    in a worker log or a CI failure is attributable without a debugger.
    """


class RetryPolicy:
    """Bounded exponential backoff with jitter for transient store faults.

    ``attempts`` is the total call budget (first try included).  Sleep
    before retry *n* (1-based) is ``min(cap, base * 2^(n-1))`` jittered
    into ``[0.5, 1.0)`` of nominal so a fleet of workers retrying the same
    blip doesn't re-hit the store in lock-step.  ``sleep`` is injectable —
    workers pass their stop-event wait so shutdown interrupts a backoff,
    tests pass a no-op — and the jitter RNG is seeded, so a given policy
    instance produces a reproducible sleep schedule.
    """

    def __init__(self, attempts: int = 8, backoff_base_s: float = 0.02,
                 backoff_cap_s: float = 2.0,
                 sleep: Callable[[float], None] = time.sleep,
                 seed: object = 0) -> None:
        if not isinstance(attempts, int) or isinstance(attempts, bool) \
                or attempts < 1:
            raise ShardError(f"retry attempts must be an integer >= 1, "
                             f"got {attempts!r}")
        for label, value in (("backoff_base_s", backoff_base_s),
                             ("backoff_cap_s", backoff_cap_s)):
            if not math.isfinite(value) or value < 0:
                raise ShardError(f"retry {label} must be a finite number "
                                 f">= 0, got {value!r}")
        self.attempts = attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.sleep = sleep
        self._rng = random.Random(f"retry-jitter:{seed}")

    def backoff_s(self, attempt: int) -> float:
        """The jittered sleep after failed attempt ``attempt`` (1-based)."""
        nominal = min(self.backoff_cap_s,
                      self.backoff_base_s * (2.0 ** min(attempt - 1, 32)))
        return nominal * (0.5 + 0.5 * self._rng.random())


def call_with_retries(fn: Callable[[], _T], *, op: str, key: str,
                      policy: RetryPolicy,
                      sink: Optional[EventSink] = None) -> _T:
    """Run ``fn`` absorbing :class:`TransientStoreError` under ``policy``.

    Each absorbed failure emits a :class:`~repro.bench.telemetry.StoreRetry`
    (op/key/attempt) so chaos runs and real cloud blips are countable; when
    the budget is exhausted the last transient error is re-raised wrapped
    in a labeled :class:`RetryBudgetExceeded`.

    With a live sink each retry event is stamped as a leaf span under the
    ambient trace context (the post/collect span that issued the store
    op), carrying the failed attempt's duration — so a reconstructed
    trial timeline shows *where* the chaos bit, not just that it did.
    With the NullSink none of that runs: no clock read, no hash.
    """
    last: Optional[TransientStoreError] = None
    resolved = telemetry.resolve(sink)
    for attempt in range(1, policy.attempts + 1):
        started = time.perf_counter() if resolved else 0.0
        try:
            return fn()
        except TransientStoreError as error:
            last = error
            if resolved:
                from repro.bench.observe import trace as _trace
                resolved.emit(_trace.leaf(
                    StoreRetry(op=op, key=key, attempt=attempt),
                    qualifier=f"{op}|{key}|{attempt}",
                    duration_s=time.perf_counter() - started))
            if attempt >= policy.attempts:
                break
            policy.sleep(policy.backoff_s(attempt))
    raise RetryBudgetExceeded(
        f"{op} on {key!r} still failing after {policy.attempts} "
        f"attempt(s); giving up: {last}") from last


class ObjectStore(ABC):
    """S3-style key/value storage with conditional writes.

    Keys are opaque UTF-8 strings (``/`` is an ordinary character with no
    directory semantics beyond prefix listing).  Etags are opaque version
    strings: any successful write changes the key's etag, and
    :meth:`put_if_match` succeeds only against the current one.
    """

    @abstractmethod
    def put_if_absent(self, key: str, data: bytes) -> bool:
        """Create ``key`` with ``data`` only if it does not exist.

        Returns ``True`` on creation, ``False`` if the key already exists
        (the store is unchanged).  Exactly one of any number of concurrent
        creators succeeds.
        """

    @abstractmethod
    def put_if_match(self, key: str, data: bytes, etag: str) -> bool:
        """Replace ``key``'s value only if its current etag is ``etag``.

        Returns ``True`` on the swap, ``False`` if the key was modified or
        deleted since ``etag`` was read (the store is unchanged).  Exactly
        one of any number of writers holding the same etag succeeds.
        """

    @abstractmethod
    def get(self, key: str) -> Optional[StoredObject]:
        """The current ``(data, etag)`` for ``key``, or ``None`` if absent."""

    @abstractmethod
    def list_prefix(self, prefix: str) -> List[str]:
        """All existing keys starting with ``prefix``, sorted."""

    @abstractmethod
    def delete(self, key: str) -> bool:
        """Remove ``key`` unconditionally; returns whether it existed."""

    @abstractmethod
    def describe(self) -> str:
        """A short human-readable location label for error messages."""


def _check_value(key: str, data: bytes) -> None:
    if not isinstance(data, bytes):
        raise ShardError(f"object {key!r}: stored values must be bytes, "
                         f"got {type(data).__name__}")
    if not data:
        raise ShardError(f"object {key!r}: stored values must be non-empty "
                         "(zero bytes marks a superseded generation)")


def _emit_cas_lost(sink: Optional[EventSink], key: str) -> None:
    """A conditional swap lost its race: the caller will re-read and retry
    (or, for a lease renewal, treat the lease as gone).  Counting these is
    how lease contention becomes visible in a run's telemetry."""
    resolved = telemetry.resolve(sink)
    if resolved:
        from repro.bench.observe import trace as _trace
        resolved.emit(_trace.leaf(CasRetry(key=key, op="put_if_match"),
                                  qualifier=key))


class InMemoryObjectStore(ObjectStore):
    """The reference semantics over a dict; thread-safe, in-process only."""

    def __init__(self, sink: Optional[EventSink] = None) -> None:
        self.sink = sink
        self._lock = threading.Lock()
        self._objects: Dict[str, StoredObject] = {}
        self._version = 0

    def _next_etag(self) -> str:
        self._version += 1
        return f"v{self._version}"

    def put_if_absent(self, key: str, data: bytes) -> bool:
        _check_value(key, data)
        with self._lock:
            if key in self._objects:
                return False
            self._objects[key] = (bytes(data), self._next_etag())
            return True

    def put_if_match(self, key: str, data: bytes, etag: str) -> bool:
        _check_value(key, data)
        with self._lock:
            current = self._objects.get(key)
            if current is not None and current[1] == etag:
                self._objects[key] = (bytes(data), self._next_etag())
                return True
        _emit_cas_lost(self.sink, key)
        return False

    def get(self, key: str) -> Optional[StoredObject]:
        with self._lock:
            return self._objects.get(key)

    def list_prefix(self, prefix: str) -> List[str]:
        with self._lock:
            return sorted(key for key in self._objects
                          if key.startswith(prefix))

    def delete(self, key: str) -> bool:
        with self._lock:
            return self._objects.pop(key, None) is not None

    def describe(self) -> str:
        return "memory-store"


#: Generation file names: ``g`` + zero-padded generation number.
_GENERATION_RE = re.compile(r"^g(\d{10})$")

#: Floor marker names: ``f`` + the lowest generation whose file is
#: guaranteed to still exist (everything below it may be pruned).
_FLOOR_RE = re.compile(r"^f(\d{10})$")

#: Superseded generations kept behind the current one before pruning; the
#: prune itself triggers only once twice this many accumulate, so the cost
#: is amortized.
_PRUNE_KEEP = 16


class FileSystemObjectStore(ObjectStore):
    """Conditional-write semantics over a plain directory.

    Layout::

        root/<quoted-key>/g0000000000     generation files; the current
        root/<quoted-key>/g0000000001     value is the highest generation,
        ...                               its file name is the etag

    Key directories are the key URL-quoted with no safe characters, so the
    store is a single flat level regardless of ``/`` in keys.  New
    generations are materialized with :func:`os.link` from a fully written
    temp file — creation is atomic and exclusive, so concurrent CAS writers
    race safely even over NFS.  Superseded generations are truncated, not
    immediately unlinked: a stale writer holding etag ``g…n`` finds
    ``g…n+1`` already present and fails.

    That alone would grow hot keys (a heartbeat-renewed lease object) one
    file per write forever, so old generations are pruned behind a *floor*:
    an ``f<generation>`` marker file whose creation strictly precedes any
    unlink below it, and whose value only advances (the highest marker
    wins, and the highest is never removed).  A CAS whose target file was
    pruned away can therefore link "successfully", but it re-reads the
    floor after linking — if its new generation is at or below the floor,
    its lineage was pruned: it undoes the link and reports the swap lost.
    Honest writers always land :data:`_PRUNE_KEEP` generations above the
    floor, so only genuinely stale writers take that path.

    Readers double-check the listing after reading: if a newer generation
    appeared meanwhile, the read retries, so a read never returns a
    generation that was truncated under it (pruning never touches the
    highest generation).

    :meth:`delete` is a write like any other: it links an empty *tombstone*
    as the next generation (so delete-vs-CAS races collide on the same
    file name and exactly one wins), and :meth:`put_if_absent` on a
    tombstoned key continues the lineage at the next generation.  The one
    live invariant: the highest generation is non-empty exactly when the
    key exists.
    """

    #: A read retries this many times against concurrent writers before
    #: giving up; in practice one retry is already rare.  Exhaustion (a
    #: key under genuine CAS-storm churn) raises
    #: :class:`TransientStoreError` — the caller's retry-with-backoff
    #: layer, not the read loop, decides when to give up for real.
    READ_ATTEMPTS = 8

    def __init__(self, root: Union[str, Path],
                 sink: Optional[EventSink] = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.sink = sink
        self._tmp_counter = 0
        self._tmp_lock = threading.Lock()

    # ------------------------------------------------------------------
    # layout helpers
    # ------------------------------------------------------------------
    def _key_dir(self, key: str) -> Path:
        if not key:
            raise ShardError(f"{self.describe()}: object keys must be "
                             "non-empty")
        return self.root / quote(key, safe="")

    @staticmethod
    def _generation_name(generation: int) -> str:
        return f"g{generation:010d}"

    @staticmethod
    def _parse_etag(key: str, etag: str) -> int:
        match = _GENERATION_RE.match(etag)
        if match is None:
            raise ShardError(f"object {key!r}: malformed etag {etag!r} "
                             "(expected g<generation>)")
        return int(match.group(1))

    def _generations(self, key_dir: Path) -> List[Path]:
        try:
            entries = [path for path in key_dir.iterdir()
                       if _GENERATION_RE.match(path.name)]
        except FileNotFoundError:
            return []
        return sorted(entries)

    def _floor(self, key_dir: Path) -> int:
        """The pruning floor: generations below this may no longer exist."""
        try:
            markers = [_FLOOR_RE.match(path.name)
                       for path in key_dir.iterdir()]
        except FileNotFoundError:
            return 0
        return max((int(match.group(1)) for match in markers if match),
                   default=0)

    def _maybe_prune(self, key_dir: Path, top: int) -> None:
        """Advance the floor to ``top - _PRUNE_KEEP`` and drop older files.

        Order matters: the new floor marker is created *before* anything is
        unlinked, so any writer that manages to link into pruned territory
        is guaranteed to see the advanced floor when it re-checks.
        """
        new_floor = top - _PRUNE_KEEP
        marker = key_dir / f"f{new_floor:010d}"
        try:
            with open(marker, "x"):
                pass
        except FileExistsError:
            pass  # another pruner placed this floor already
        except FileNotFoundError:
            return  # the key was deleted concurrently
        for path in self._generations(key_dir):
            if int(path.name[1:]) < new_floor:
                path.unlink(missing_ok=True)
        # Drop superseded floor markers, keeping the highest (the floor
        # a concurrent reader computes only ever advances).
        try:
            markers = sorted(path.name for path in key_dir.iterdir()
                             if _FLOOR_RE.match(path.name))
        except FileNotFoundError:
            return
        for name in markers[:-1]:
            (key_dir / name).unlink(missing_ok=True)

    def _tmp_path(self, key_dir: Path) -> Path:
        with self._tmp_lock:
            self._tmp_counter += 1
            counter = self._tmp_counter
        return key_dir / (f".tmp.{os.getpid()}."
                          f"{threading.get_ident()}.{counter}")

    def _link_generation(self, key_dir: Path, generation: int,
                         data: bytes) -> bool:
        """Atomically materialize one generation; ``False`` if it exists."""
        key_dir.mkdir(parents=True, exist_ok=True)
        tmp = self._tmp_path(key_dir)
        tmp.write_bytes(data)
        try:
            os.link(tmp, key_dir / self._generation_name(generation))
            return True
        except FileExistsError:
            return False
        finally:
            tmp.unlink(missing_ok=True)

    @staticmethod
    def _is_live(path: Path) -> Optional[bool]:
        """Whether a generation file holds a value (``None``: it vanished)."""
        try:
            return path.stat().st_size > 0
        except FileNotFoundError:
            return None

    def _prune_if_due(self, key_dir: Path, top: int) -> None:
        if top - self._floor(key_dir) > 2 * _PRUNE_KEEP:
            self._maybe_prune(key_dir, top)

    # ------------------------------------------------------------------
    # the store contract
    # ------------------------------------------------------------------
    def put_if_absent(self, key: str, data: bytes) -> bool:
        _check_value(key, data)
        key_dir = self._key_dir(key)
        generations = self._generations(key_dir)
        if not generations:
            return self._link_generation(key_dir, 0, data)
        if self._is_live(generations[-1]) is not False:
            return False  # the key exists (or racing writers are active)
        # A tombstone: the key was deleted.  Continue its lineage at the
        # next generation so pre-delete etags can never match again.
        reborn = int(generations[-1].name[1:]) + 1
        if not self._link_generation(key_dir, reborn, data):
            return False  # a racing creator (or deleter) got there first
        self._prune_if_due(key_dir, reborn)
        return True

    def put_if_match(self, key: str, data: bytes, etag: str) -> bool:
        swapped = self._put_if_match(key, data, etag)
        if not swapped:
            _emit_cas_lost(self.sink, key)
        return swapped

    def _put_if_match(self, key: str, data: bytes, etag: str) -> bool:
        _check_value(key, data)
        generation = self._parse_etag(key, etag)
        key_dir = self._key_dir(key)
        if generation < self._floor(key_dir):
            return False  # pruned ancestry: this etag lost long ago
        current = key_dir / self._generation_name(generation)
        if not self._is_live(current):
            # Absent: the etag never existed or was pruned.  Empty: either
            # a superseded (truncated) generation or a tombstone — a
            # deleted key cannot be swapped, only re-created.
            return False
        if not self._link_generation(key_dir, generation + 1, data):
            return False  # a competing writer swapped first
        if generation + 1 <= self._floor(key_dir):
            # The target file only "linked" because pruning removed it; a
            # newer lineage exists above the floor.  Undo and report lost.
            (key_dir / self._generation_name(generation + 1)).unlink(
                missing_ok=True)
            return False
        # Truncate (not unlink) the superseded generation: its file name
        # must survive until the floor passes it, so writers holding
        # not-yet-pruned older etags keep failing honestly.
        try:
            os.truncate(current, 0)
        except FileNotFoundError:
            pass  # pruning passed it already
        self._prune_if_due(key_dir, generation + 1)
        return True

    def get(self, key: str) -> Optional[StoredObject]:
        key_dir = self._key_dir(key)
        for _ in range(self.READ_ATTEMPTS):
            generations = self._generations(key_dir)
            if not generations:
                return None
            current = generations[-1]
            try:
                data = current.read_bytes()
            except FileNotFoundError:
                continue  # lost a race with a pruner; re-list
            after = self._generations(key_dir)
            if after and after[-1].name == current.name:
                # An empty current generation is a tombstone: deleted.
                return (data, current.name) if data else None
            # A newer generation landed while we read (our bytes may be a
            # torn truncation) — retry against the fresh listing.
        raise TransientStoreError(
            f"{self.describe()}: object {key!r} kept changing across "
            f"{self.READ_ATTEMPTS} read attempts")

    def _key_exists(self, key: str, key_dir: Path) -> bool:
        """Whether the key's highest generation holds a value, with the
        same stable-read retry as :meth:`get`: a concurrent CAS may
        truncate the generation we just statted, so only a verdict whose
        generation is still the highest afterwards counts."""
        for _ in range(self.READ_ATTEMPTS):
            generations = self._generations(key_dir)
            if not generations:
                return False
            current = generations[-1]
            live = self._is_live(current)
            after = self._generations(key_dir)
            if after and after[-1].name == current.name:
                return bool(live)
            # A newer generation landed while we statted; re-examine.
        raise TransientStoreError(
            f"{self.describe()}: object {key!r} kept changing across "
            f"{self.READ_ATTEMPTS} read attempts")

    def list_prefix(self, prefix: str) -> List[str]:
        keys = []
        try:
            children = list(self.root.iterdir())
        except FileNotFoundError:
            return []
        for child in children:
            if not child.is_dir():
                continue
            key = unquote(child.name)
            if not key.startswith(prefix):
                continue
            try:
                exists = self._key_exists(key, child)
            except FileNotFoundError:
                # The whole key directory vanished between the root scan
                # and the per-entry stat (a concurrent pruner or external
                # cleanup): the key is gone, not the listing — skip the
                # entry instead of aborting every other key's result.
                continue
            if exists:
                keys.append(key)
        return sorted(keys)

    def delete(self, key: str) -> bool:
        key_dir = self._key_dir(key)
        for _ in range(self.READ_ATTEMPTS):
            generations = self._generations(key_dir)
            if not generations:
                return False
            current = generations[-1]
            live = self._is_live(current)
            if live is None:
                continue  # lost a race with a pruner; re-list
            if not live:
                return False  # already a tombstone
            # Delete is a write: link the tombstone as the next generation,
            # so a racing CAS and a racing delete collide on one file name
            # and exactly one of them wins.
            if self._link_generation(key_dir, int(current.name[1:]) + 1,
                                     b""):
                try:
                    os.truncate(current, 0)
                except FileNotFoundError:
                    pass
                return True
            # A writer beat us to the next generation; re-examine.
        raise TransientStoreError(
            f"{self.describe()}: object {key!r} kept changing across "
            f"{self.READ_ATTEMPTS} delete attempts")

    def describe(self) -> str:
        return str(self.root)
