"""Structured telemetry: typed events, pluggable sinks, zero-cost when off.

The scaling stack (engine → shards → broker → object store) executes one
grid through five byte-identical paths, but byte-identical output says
nothing about *where the time went*.  This module is the measurement
substrate: instrumentation points across the stack emit small typed events
(:class:`TrialStarted`/:class:`TrialFinished` from the runner and executors,
:class:`CacheHit`/:class:`CacheMiss`/:class:`CacheEvicted` from the
artifact cache, :class:`LeaseAcquired`/:class:`LeaseRenewed`/
:class:`LeaseLost`/:class:`ManifestAbandoned`/:class:`ShardPosted`/
:class:`ShardCollected`/:class:`WorkerIdle` from the transport layer and
:class:`CasRetry` from the object store) into an :class:`EventSink`.

Three sinks ship here:

:class:`NullSink`
    The default.  Falsy, so every instrumentation point guards event
    *construction* behind ``if sink:`` — with telemetry off, the hot path
    pays one attribute read and one truthiness check, nothing else.
:class:`JsonlSink`
    Appends one JSON object per event to a file, flushed per event, so a
    crashed run loses at most the line being written.
    :func:`read_jsonl_events` is the matching crash-tolerant reader.
:class:`AggregatingSink`
    In-memory counters (one per event type) and timers/histograms (one per
    :meth:`TelemetryEvent.timings` key).  Thread-safe: heartbeat threads
    emit concurrently with the main loop.

Sinks are threaded two ways: every instrumented component takes an optional
``sink`` argument, and a component constructed without one resolves the
process-wide default at *emit* time (:func:`resolve`), so a CLI command can
install one sink for everything it touches with :func:`use_sink` and never
plumb it through ten constructors.  The default default is :data:`NULL_SINK`.

This module is dependency-free on purpose (stdlib only, and nothing from
the rest of the package), so any layer may import it without cycles.
"""

from __future__ import annotations

import json
import math
import os
import socket
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import (
    Callable,
    ClassVar,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)


class TelemetryError(ValueError):
    """An events file is unreadable or structurally invalid."""


# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TelemetryEvent:
    """Base class for all telemetry events.

    ``name`` is the event type's stable identifier: it keys
    :class:`AggregatingSink` counters and tags :class:`JsonlSink` lines, so
    renaming one is a format change.  :meth:`timings` lists the event's
    duration observations for the timer/histogram side of aggregation.

    Every event can additionally carry a *trace context* — ``trace_id`` /
    ``span_id`` / ``parent_span_id``, a monotonic-clock ``duration_s`` and
    a wall-clock ``ts`` — attached by :meth:`with_trace` (normally via
    :mod:`repro.bench.observe.trace` at the instrumented seam).  The trace
    fields are deliberately *not* dataclass fields: they default to class
    attributes (zero per-instance cost, no constructor churn across twenty
    event types) and only become instance state when a trace is attached,
    so the NullSink zero-overhead contract is untouched.  They appear in
    :meth:`as_dict` (and therefore JSONL lines) only when set.
    """

    name: ClassVar[str] = "event"

    # Trace-context defaults (deliberately *unannotated* class attributes —
    # an annotation would turn them into inherited dataclass fields and
    # break every subclass with required fields).  ``with_trace`` shadows
    # them per instance.
    trace_id = ""
    span_id = ""
    parent_span_id = ""
    duration_s = None
    ts = None

    def with_trace(self, trace_id: str = "", span_id: str = "",
                   parent_span_id: str = "",
                   duration_s: Optional[float] = None,
                   ts: Optional[float] = None) -> "TelemetryEvent":
        """Attach trace context to this (frozen) event; returns ``self``.

        Uses ``object.__setattr__`` because events are frozen dataclasses:
        the trace context is part of event *construction* at the emit site,
        never a later mutation, and dataclass equality/repr (fields only)
        are unaffected.
        """
        if trace_id:
            object.__setattr__(self, "trace_id", trace_id)
            object.__setattr__(self, "span_id", span_id)
            if parent_span_id:
                object.__setattr__(self, "parent_span_id", parent_span_id)
        if duration_s is not None:
            object.__setattr__(self, "duration_s", duration_s)
        if ts is not None:
            object.__setattr__(self, "ts", ts)
        return self

    def timings(self) -> Dict[str, float]:
        """``{timer_name: seconds}`` observations carried by this event."""
        return {}

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"event": self.name}
        for spec in fields(self):
            value = getattr(self, spec.name)
            payload[spec.name] = dict(value) if isinstance(value, Mapping) else value
        if self.ts is not None:
            payload["ts"] = self.ts
        if self.trace_id:
            payload["trace_id"] = self.trace_id
            payload["span_id"] = self.span_id
            if self.parent_span_id:
                payload["parent_span_id"] = self.parent_span_id
        if self.duration_s is not None:
            payload["duration_s"] = self.duration_s
        return payload


@dataclass(frozen=True)
class TrialStarted(TelemetryEvent):
    """A trial spec was handed to an executor (or submitted to a pool)."""

    name: ClassVar[str] = "trial_started"
    task_id: str
    setting_key: str
    trial: int


@dataclass(frozen=True)
class TrialFinished(TelemetryEvent):
    """One trial completed.

    ``seconds`` is real (measured) execution time where the emitting process
    ran the trial itself; a parent observing worker-process completions
    reports ``None`` (the measurement does not exist there, and a sentinel
    0.0 would corrupt the ``trial_seconds`` timer stats).  ``wall_s`` is the
    trial's *simulated* wall-clock from the session record — deterministic,
    so it agrees across execution paths.  ``phases`` breaks the trial down:
    ``rip`` (artifact load/build) and ``build`` (agent + DMI assembly) are
    real measured seconds, ``plan`` (decompose/verify LLM calls) and ``act``
    (execution calls + input actions) are simulated seconds that sum to
    ``wall_s``.
    """

    name: ClassVar[str] = "trial_finished"
    task_id: str
    setting_key: str
    trial: int
    success: bool
    seconds: Optional[float]
    wall_s: float
    phases: Mapping[str, float] = field(default_factory=dict)

    def timings(self) -> Dict[str, float]:
        out = {"trial_wall_s": self.wall_s}
        if self.seconds is not None:
            out["trial_seconds"] = self.seconds
        for phase, value in self.phases.items():
            out[f"phase_{phase}"] = value
        return out


@dataclass(frozen=True)
class CacheHit(TelemetryEvent):
    """An offline model was served from the artifact cache."""

    name: ClassVar[str] = "cache_hit"
    app: str


@dataclass(frozen=True)
class CacheMiss(TelemetryEvent):
    """An offline model had to be built (GUI rip) on a cold cache."""

    name: ClassVar[str] = "cache_miss"
    app: str


@dataclass(frozen=True)
class CacheEvicted(TelemetryEvent):
    """A cache entry was evicted by the ``max_entries`` LRU bound."""

    name: ClassVar[str] = "cache_evicted"
    entry: str


@dataclass(frozen=True)
class CacheGc(TelemetryEvent):
    """One ``ArtifactCache.gc()`` sweep finished (age + size bounds)."""

    name: ClassVar[str] = "cache_gc"
    evicted: int
    reclaimed_bytes: int
    remaining_entries: int
    remaining_bytes: int
    seconds: float

    def timings(self) -> Dict[str, float]:
        return {"cache_gc_s": self.seconds}


@dataclass(frozen=True)
class RipFull(TelemetryEvent):
    """A full GUI rip ran (cold model build, or incremental fallback)."""

    name: ClassVar[str] = "rip_full"
    app: str
    #: Live control activations performed (the rip's dominant cost).
    nodes_visited: int
    nodes: int
    seconds: float
    #: Why an *intended* incremental rip fell back ("" for plain full rips).
    reason: str = ""

    def timings(self) -> Dict[str, float]:
        return {"rip_full_s": self.seconds}


@dataclass(frozen=True)
class RipIncremental(TelemetryEvent):
    """An incremental re-rip spliced dirty subtrees into a prior UNG."""

    name: ClassVar[str] = "rip_incremental"
    app: str
    #: Live control activations (only dirty subtrees are re-explored).
    nodes_visited: int
    #: Activations replayed from the prior rip's trace instead of performed.
    nodes_reused: int
    #: Distinct nodes spliced into the UNG by live re-exploration.
    nodes_patched: int
    #: nodes_reused / (nodes_reused + nodes_visited); 1.0 = nothing re-done.
    reuse_fraction: float
    dirty_windows: int
    seconds: float

    def timings(self) -> Dict[str, float]:
        return {"rip_incremental_s": self.seconds}


@dataclass(frozen=True)
class LeaseAcquired(TelemetryEvent):
    """A worker leased one shard manifest off the broker queue."""

    name: ClassVar[str] = "lease_acquired"
    shard_index: int
    worker_id: str


@dataclass(frozen=True)
class LeaseRenewed(TelemetryEvent):
    """A heartbeat extended a still-held lease."""

    name: ClassVar[str] = "lease_renewed"
    shard_index: int
    worker_id: str


@dataclass(frozen=True)
class LeaseLost(TelemetryEvent):
    """A heartbeat discovered its lease was reclaimed by a peer."""

    name: ClassVar[str] = "lease_lost"
    shard_index: int
    worker_id: str


@dataclass(frozen=True)
class ManifestAbandoned(TelemetryEvent):
    """A worker dropped a finished manifest unposted after losing the lease."""

    name: ClassVar[str] = "manifest_abandoned"
    shard_index: int
    worker_id: str


@dataclass(frozen=True)
class ShardPosted(TelemetryEvent):
    """A worker posted one shard's results (``first_post`` = not a duplicate)."""

    name: ClassVar[str] = "shard_posted"
    shard_index: int
    worker_id: str
    results: int
    first_post: bool


@dataclass(frozen=True)
class ShardCollected(TelemetryEvent):
    """The coordinator collected one posted shard off the broker."""

    name: ClassVar[str] = "shard_collected"
    shard_index: int


@dataclass(frozen=True)
class CasRetry(TelemetryEvent):
    """A conditional write lost its race (the caller re-reads and retries)."""

    name: ClassVar[str] = "cas_retry"
    key: str
    op: str


@dataclass(frozen=True)
class StoreRetry(TelemetryEvent):
    """A transient storage/broker failure was absorbed by bounded retry.

    Distinct from :class:`CasRetry` (a conditional write honestly *lost* a
    race): a ``store_retry`` means the operation errored in a way worth
    repeating — an injected chaos fault, a cloud 5xx/throttle, a filesystem
    read that kept losing to concurrent writers — and the caller backed
    off and tried again.  ``attempt`` is 1-based, so the counter's rate
    per op is visible and a give-up (attempt == budget) is identifiable.
    """

    name: ClassVar[str] = "store_retry"
    op: str
    key: str
    attempt: int


@dataclass(frozen=True)
class WorkerIdle(TelemetryEvent):
    """An idle worker backed off before re-polling the queue."""

    name: ClassVar[str] = "worker_idle"
    worker_id: str
    slept_s: float
    streak: int

    def timings(self) -> Dict[str, float]:
        return {"idle_sleep_s": self.slept_s}


@dataclass(frozen=True)
class PlanSubmitted(TelemetryEvent):
    """A named plan was enqueued on a broker (one per ``submit``)."""

    name: ClassVar[str] = "plan_submitted"
    plan: str
    shards: int
    priority: int


@dataclass(frozen=True)
class PlanDrained(TelemetryEvent):
    """The post that completed a plan: every shard of ``plan`` is done."""

    name: ClassVar[str] = "plan_drained"
    plan: str
    shards: int


@dataclass(frozen=True)
class QueueDepth(TelemetryEvent):
    """One plan's queue gauge snapshot (emitted by workers per status poll)."""

    name: ClassVar[str] = "queue_depth"
    plan: str
    queued: int
    leased: int
    done: int


@dataclass(frozen=True)
class ScaleAdvice(TelemetryEvent):
    """An autoscaling recommendation from the fleet advisor.

    Recommend-only: nothing in this package actuates workers.  ``action``
    is ``scale_up`` / ``scale_down`` / ``hold``, ``workers`` is the live
    (non-stale) worker count the advice was computed from, ``recommended``
    the suggested fleet size, and ``reason`` a human-readable sentence
    naming the signals (backlog, idle fraction, drain-rate ETA).
    """

    name: ClassVar[str] = "scale_advice"
    action: str
    workers: int
    recommended: int
    queued: int
    leased: int
    reason: str


#: Every shipped event type's name.  Consumers that want "no events of this
#: kind" to read as an explicit zero (e.g. the runs-diff metric namespace,
#: where a --fail-if gate on ``cache_miss`` must not report the counter
#: "missing" just because a run had no misses) seed their counters from
#: this list.
EVENT_NAMES: tuple = tuple(sorted(event.name for event in (
    TrialStarted, TrialFinished, CacheHit, CacheMiss, CacheEvicted, CacheGc,
    RipFull, RipIncremental,
    LeaseAcquired, LeaseRenewed, LeaseLost, ManifestAbandoned, ShardPosted,
    ShardCollected, CasRetry, StoreRetry, WorkerIdle,
    PlanSubmitted, PlanDrained, QueueDepth, ScaleAdvice)))


def phases_from_result(result, rip_s: Optional[float] = None,
                       build_s: Optional[float] = None) -> Dict[str, float]:
    """The rip/build/plan/act breakdown for one finished trial.

    ``plan`` is the simulated latency of the decompose/verify LLM calls,
    ``act`` is everything else in the session's simulated wall-clock
    (execution calls plus input actions), so ``plan + act == wall_time_s``
    exactly.  ``rip``/``build`` are *measured* seconds and appear only when
    the caller actually measured them (a parent observing worker-process
    completions passes ``None`` — a sentinel 0.0 would corrupt the phase
    timer stats).  ``result`` is duck-typed (anything with ``calls``
    carrying ``purpose``/``latency_s`` and a ``wall_time_s``) to keep this
    module import-free.
    """
    plan = sum(call.latency_s for call in result.calls
               if call.purpose in ("decompose", "verify"))
    phases: Dict[str, float] = {}
    if rip_s is not None:
        phases["rip"] = rip_s
    if build_s is not None:
        phases["build"] = build_s
    phases["plan"] = plan
    phases["act"] = result.wall_time_s - plan
    return phases


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------
class EventSink:
    """Where events go.  Sinks are truthy; the no-op :class:`NullSink` is
    falsy, so instrumentation points skip event construction entirely when
    telemetry is off (``if sink: sink.emit(...)``)."""

    def emit(self, event: TelemetryEvent) -> None:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return True


class NullSink(EventSink):
    """Discards everything; the zero-overhead default."""

    __slots__ = ()

    def emit(self, event: TelemetryEvent) -> None:
        pass

    def __bool__(self) -> bool:
        return False


#: The canonical no-op sink (sinks are stateless, share one).
NULL_SINK = NullSink()


class TimerStats:
    """Count/total/min/max plus a decade histogram of observed seconds."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: Decade buckets: observation ``v`` lands in ``le_1e{ceil(log10 v)}``
        #: (``zero`` for v <= 0), enough shape for a latency eyeball without
        #: configurable bucket edges.
        self.buckets: Dict[str, int] = {}

    @staticmethod
    def bucket_for(value: float) -> str:
        if value <= 0:
            return "zero"
        return f"le_1e{math.ceil(math.log10(value)):+03d}"

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        label = self.bucket_for(value)
        self.buckets[label] = self.buckets.get(label, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.mean,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max if self.count else 0.0,
            "buckets": dict(sorted(self.buckets.items())),
        }


class AggregatingSink(EventSink):
    """Counts every event by name and aggregates its timing observations.

    Thread-safe: worker heartbeat threads emit concurrently with the pull
    loop.  Counters key on :attr:`TelemetryEvent.name`; timers key on the
    names from :meth:`TelemetryEvent.timings`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, TimerStats] = {}

    def emit(self, event: TelemetryEvent) -> None:
        with self._lock:
            self.counters[event.name] = self.counters.get(event.name, 0) + 1
            for timer_name, value in event.timings().items():
                timer = self.timers.get(timer_name)
                if timer is None:
                    timer = self.timers[timer_name] = TimerStats()
                timer.observe(value)

    def count(self, name: str) -> int:
        with self._lock:
            return self.counters.get(name, 0)

    def timer(self, name: str) -> Optional[TimerStats]:
        with self._lock:
            return self.timers.get(name)

    def snapshot(self) -> Dict[str, object]:
        """A plain-data copy: ``{"counters": {...}, "timers": {...}}``."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "timers": {name: stats.as_dict()
                           for name, stats in self.timers.items()},
            }


class JsonlSink(EventSink):
    """Appends one JSON line per event; flushed per line for crash safety."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._file = open(self.path, "a", encoding="utf-8")

    def emit(self, event: TelemetryEvent) -> None:
        line = json.dumps(event.as_dict(), separators=(",", ":"),
                          ensure_ascii=False)
        with self._lock:
            self._file.write(line + "\n")
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TeeSink(EventSink):
    """Fans every event out to several sinks (null members are dropped)."""

    def __init__(self, sinks: Sequence[EventSink]) -> None:
        self.sinks = [sink for sink in sinks if sink]

    def emit(self, event: TelemetryEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def __bool__(self) -> bool:
        return bool(self.sinks)


#: Schema version written into every :class:`MetricsSnapshotSink` file.
#: Version 1 (PR 7) had no ``schema_version``/``written_at``/``worker_id``/
#: ``counters`` keys; readers accept both and reject anything else.
METRICS_SCHEMA_VERSION = 2

#: Snapshot schema versions this build can read.
KNOWN_METRICS_SCHEMA_VERSIONS = (1, METRICS_SCHEMA_VERSION)


class MetricsSnapshotSink(EventSink):
    """Live fleet gauges: per-plan queue depth plus worker-idle rate.

    Unlike :class:`AggregatingSink` (monotonic counters, read post-hoc),
    this sink keeps *current-value* gauges a fleet operator or autoscaler
    can poll while workers run: the latest queued/leased/done per plan
    (from ``queue_depth`` events, seeded by ``plan_submitted``), which
    plans have drained, how much time workers spend idle-polling, and a
    per-event-type counter map (lease churn, retries, cache hits) the
    cross-fleet aggregator folds into rates.

    Snapshots carry ``schema_version`` (:data:`METRICS_SCHEMA_VERSION`),
    a wall-clock ``written_at`` stamp (staleness detection: a live worker
    rewrites the file, a dead one leaves ``written_at`` behind) and the
    emitting ``worker_id``.  Read files back with
    :func:`load_metrics_snapshot`, which rejects unknown versions.

    With ``path`` set, the snapshot is atomically rewritten (temp file +
    rename, so readers never see a torn JSON) at most every ``interval_s``
    seconds of event traffic, and once more on :meth:`close` — park the
    file next to the broker (or anywhere a dashboard can reach) and it
    becomes the live fleet-status object ``repro fleet status --metrics``
    reads.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None,
                 interval_s: float = 5.0,
                 clock: Callable[[], float] = time.monotonic,
                 worker_id: Optional[str] = None,
                 wall_clock: Callable[[], float] = time.time) -> None:
        if not math.isfinite(interval_s) or interval_s < 0:
            raise TelemetryError("metrics snapshot interval_s must be a "
                                 f"finite number >= 0, got {interval_s}")
        self.path = Path(path) if path is not None else None
        self.interval_s = interval_s
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self._clock = clock
        self._wall_clock = wall_clock
        self._lock = threading.Lock()
        self._plans: Dict[str, Dict[str, int]] = {}
        self._drained: set = set()
        self._idle_count = 0
        self._idle_slept_s = 0.0
        self._events = 0
        self._counters: Dict[str, int] = {}
        self._last_write: Optional[float] = None
        self._write_lock = threading.Lock()
        self._written_events = -1

    def emit(self, event: TelemetryEvent) -> None:
        name = event.name
        with self._lock:
            self._events += 1
            self._counters[name] = self._counters.get(name, 0) + 1
            if name == "queue_depth":
                self._plans[event.plan] = {
                    "queued": event.queued, "leased": event.leased,
                    "done": event.done}
            elif name == "plan_submitted":
                self._plans.setdefault(event.plan, {
                    "queued": event.shards, "leased": 0, "done": 0})
                self._drained.discard(event.plan)
            elif name == "plan_drained":
                self._drained.add(event.plan)
                gauges = self._plans.setdefault(event.plan, {
                    "queued": 0, "leased": 0, "done": event.shards})
                gauges["queued"] = 0
                gauges["done"] = max(gauges["done"], event.shards)
            elif name == "worker_idle":
                self._idle_count += 1
                self._idle_slept_s += event.slept_s
            payload = self._snapshot_locked()
            due = (self.path is not None
                   and (self._last_write is None
                        or self._clock() - self._last_write
                        >= self.interval_s))
            if due:
                self._last_write = self._clock()
        if due:
            self._write(payload)

    def _snapshot_locked(self) -> Dict[str, object]:
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "written_at": self._wall_clock(),
            "worker_id": self.worker_id,
            "plans": {plan: dict(gauges, drained=plan in self._drained)
                      for plan, gauges in sorted(self._plans.items())},
            "worker_idle": {"count": self._idle_count,
                            "slept_s": self._idle_slept_s},
            "counters": dict(sorted(self._counters.items())),
            "events": self._events,
        }

    def snapshot(self) -> Dict[str, object]:
        """The current gauge values (a deep-enough copy; safe to mutate)."""
        with self._lock:
            return self._snapshot_locked()

    def _write(self, payload: Dict[str, object]) -> None:
        assert self.path is not None
        # Serialised separately from the emit lock so slow disks never
        # stall emitters; the event-count guard keeps a thread holding an
        # older payload from clobbering a newer snapshot already on disk.
        with self._write_lock:
            if payload["events"] < self._written_events:
                return
            self._written_events = payload["events"]
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_name(
                f".{self.path.name}.{os.getpid()}.tmp")
            tmp.write_text(json.dumps(payload, indent=1, ensure_ascii=False)
                           + "\n", encoding="utf-8")
            tmp.replace(self.path)

    def close(self) -> None:
        """Write one final snapshot so the file reflects the end state."""
        if self.path is not None:
            self._write(self.snapshot())

    def __enter__(self) -> "MetricsSnapshotSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_jsonl_events(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Read a :class:`JsonlSink` file, tolerating a truncated last line.

    A crash mid-write leaves at most one partial trailing line, which is
    dropped silently; an unparseable line anywhere *else* means real
    corruption and raises :class:`TelemetryError` naming the path and line.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as error:
        raise TelemetryError(f"cannot read events file {path!s}: {error}") \
            from error
    events: List[Dict[str, object]] = []
    lines = text.split("\n")
    # A complete file ends with "\n", so the final split element is "";
    # anything non-empty there is the torn tail of a crashed write.
    for number, line in enumerate(lines[:-1], start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise TelemetryError(
                f"{path!s}: line {number} is not valid JSON "
                f"(only the *last* line may be torn by a crash): {error}"
            ) from error
        if not isinstance(payload, dict):
            raise TelemetryError(f"{path!s}: line {number} is not a JSON "
                                 "object")
        events.append(payload)
    return events


def load_metrics_snapshot(path: Union[str, Path]) -> Dict[str, object]:
    """Read and validate one :class:`MetricsSnapshotSink` file.

    Accepts every version in :data:`KNOWN_METRICS_SCHEMA_VERSIONS` (a file
    with no ``schema_version`` key is a version-1 snapshot from an older
    worker) and rejects anything else with a :class:`TelemetryError` that
    names the file — a fleet mixing worker builds must fail loudly, not
    render gauges whose meaning silently changed.
    """
    target = Path(path)
    try:
        payload = json.loads(target.read_text(encoding="utf-8"))
    except OSError as error:
        raise TelemetryError(
            f"cannot read metrics snapshot {target!s}: {error}") from error
    except json.JSONDecodeError as error:
        raise TelemetryError(
            f"metrics snapshot {target!s} is not valid JSON: {error}"
        ) from error
    if not isinstance(payload, dict):
        raise TelemetryError(
            f"metrics snapshot {target!s} must be a JSON object")
    version = payload.get("schema_version", 1)
    if version not in KNOWN_METRICS_SCHEMA_VERSIONS:
        known = ", ".join(str(v) for v in KNOWN_METRICS_SCHEMA_VERSIONS)
        raise TelemetryError(
            f"metrics snapshot {target!s} has schema_version {version!r}; "
            f"this build reads version(s) {known} — refusing to render "
            "gauges whose schema is unknown")
    return payload


# ----------------------------------------------------------------------
# the process-wide default sink
# ----------------------------------------------------------------------
_default_sink: EventSink = NULL_SINK


def default_sink() -> EventSink:
    """The sink used by components constructed without an explicit one."""
    return _default_sink


def set_default_sink(sink: Optional[EventSink]) -> EventSink:
    """Install ``sink`` (``None`` = off) as the default; returns the old one."""
    global _default_sink
    previous = _default_sink
    _default_sink = sink if sink is not None else NULL_SINK
    return previous


@contextmanager
def use_sink(sink: Optional[EventSink]) -> Iterator[EventSink]:
    """Scope ``sink`` as the process default for a ``with`` block."""
    previous = set_default_sink(sink)
    try:
        yield _default_sink
    finally:
        set_default_sink(previous)


def resolve(sink: Optional[EventSink]) -> EventSink:
    """The sink an instrumentation point should emit to *right now*:
    the component's own if it was given one, else the process default."""
    return sink if sink is not None else _default_sink
