"""Benchmark metrics (paper §5.3 terminology).

* **SR** — average success rate over all trials;
* **Steps** — average number of LLM calls, successful trials only;
* **Time** — average simulated completion time, successful trials only;
* **Normalized core steps** — steps minus the fixed 3-call framework
  overhead, averaged over the *intersection* of tasks every compared method
  solves (Figure 5b);
* **One-shot rate** — fraction of successful trials completed in 4 total
  steps, i.e. a single core LLM call (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set

from repro.agent.session import SessionResult


@dataclass
class MetricSummary:
    """Aggregate metrics for one evaluation setting."""

    runs: int = 0
    successes: int = 0
    success_rate: float = 0.0
    avg_steps: float = 0.0
    avg_core_steps: float = 0.0
    avg_time_s: float = 0.0
    avg_actions: float = 0.0
    avg_prompt_tokens: float = 0.0
    avg_total_tokens: float = 0.0
    one_shot_rate: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "runs": self.runs,
            "successes": self.successes,
            "SR": round(self.success_rate * 100.0, 1),
            "steps": round(self.avg_steps, 2),
            "core_steps": round(self.avg_core_steps, 2),
            "time_s": round(self.avg_time_s, 1),
            "actions": round(self.avg_actions, 1),
            "prompt_tokens": round(self.avg_prompt_tokens, 0),
            "total_tokens": round(self.avg_total_tokens, 0),
            "one_shot": round(self.one_shot_rate * 100.0, 1),
        }


def success_rate(results: Sequence[SessionResult]) -> float:
    results = list(results)
    if not results:
        return 0.0
    return sum(1 for r in results if r.success) / len(results)


def one_shot_rate(results: Sequence[SessionResult]) -> float:
    """Share of *successful* trials completed with a single core LLM call."""
    successes = [r for r in results if r.success]
    if not successes:
        return 0.0
    return sum(1 for r in successes if r.core_steps <= 1) / len(successes)


def _mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def aggregate(results: Sequence[SessionResult]) -> MetricSummary:
    """Aggregate a setting's trial results into the Table 3 metrics.

    Following the paper, Steps/Time/actions/tokens are computed over
    successful trials only.
    """
    results = list(results)
    successes = [r for r in results if r.success]
    return MetricSummary(
        runs=len(results),
        successes=len(successes),
        success_rate=success_rate(results),
        avg_steps=_mean(r.steps for r in successes),
        avg_core_steps=_mean(r.core_steps for r in successes),
        avg_time_s=_mean(r.wall_time_s for r in successes),
        avg_actions=_mean(r.actions for r in successes),
        avg_prompt_tokens=_mean(r.prompt_tokens for r in successes),
        avg_total_tokens=_mean(r.total_tokens() for r in successes),
        one_shot_rate=one_shot_rate(results),
    )


def solved_task_intersection(results_by_setting: Dict[str, Sequence[SessionResult]]) -> Set[str]:
    """Tasks solved (at least one successful trial) by *every* setting."""
    common: Set[str] = set()
    first = True
    for results in results_by_setting.values():
        solved = {r.task_id for r in results if r.success}
        common = solved if first else (common & solved)
        first = False
    return common


def normalized_core_steps(results_by_setting: Dict[str, Sequence[SessionResult]]
                          ) -> Dict[str, float]:
    """Average core steps per setting over the common solved-task set.

    This is Figure 5b's metric: the fixed 3-step framework overhead is
    excluded and only tasks solved by every compared method contribute, so
    the comparison is not skewed by easy-task survivorship.
    """
    common = solved_task_intersection(results_by_setting)
    normalized: Dict[str, float] = {}
    for key, results in results_by_setting.items():
        relevant = [r for r in results if r.task_id in common and r.success]
        normalized[key] = _mean(r.core_steps for r in relevant)
    return normalized


def per_app_success(results: Sequence[SessionResult]) -> Dict[str, float]:
    """Success rate split by application."""
    grouped: Dict[str, List[SessionResult]] = {}
    for result in results:
        grouped.setdefault(result.app, []).append(result)
    return {app: success_rate(runs) for app, runs in grouped.items()}
