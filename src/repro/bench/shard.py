"""Sharded manifest execution: plan / run / merge across machines.

The evaluation grid is embarrassingly parallel (8 settings × 27 tasks × 3
trials for Table 3), and every cell is a self-contained, deterministically
seeded :class:`~repro.bench.engine.TrialSpec`.  This module distributes the
grid over independent machines with three file-based steps:

``plan``
    :func:`plan_shards` expands the grid once, partitions it round-robin
    into N :class:`ShardManifest`\\ s and writes one JSON manifest per shard.
    A manifest embeds everything a remote executor needs *and* everything
    the merge step needs to prove the shards belong together: the benchmark
    seed, trial count, setting keys, task ids, the DMI configuration
    fingerprint (:func:`repro.dmi.cache.config_fingerprint`) and a manifest
    format version.
``run``
    :class:`ManifestExecutor` executes one manifest on any machine.  It
    refuses manifests written for a different format version or DMI
    configuration, then reuses the ordinary engine stack — a
    :class:`~repro.bench.engine.SerialExecutor` or process-pool
    :class:`~repro.bench.engine.ParallelExecutor` over the on-disk
    :class:`~repro.dmi.cache.ArtifactCache` (a warm cache skips GUI ripping
    entirely) — and writes a results JSON of
    :meth:`~repro.agent.session.SessionResult.as_dict` payloads.
``merge``
    :func:`merge_shard_results` validates that every results file came from
    the *same* plan (seed / trials / fingerprint / grid / shard count
    mismatches and missing or duplicate shards are clean
    :class:`ShardError`\\ s), reassembles the results **in canonical spec
    order** and feeds the existing :class:`~repro.bench.runner.RunOutcome`
    pipeline, so a merged sharded run is bit-identical to a serial run for
    the same seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.agent.session import SessionResult
from repro.bench.engine import ProgressCallback, TrialSpec, expand_trial_specs
from repro.dmi.cache import ArtifactCache, config_fingerprint
from repro.dmi.interface import DMIConfig

#: Version of the manifest / results JSON layout.  Bumped on any change to
#: the schema; mismatching files are rejected instead of misread.
MANIFEST_FORMAT_VERSION = 1

_MANIFEST_KIND = "repro-shard-manifest"
_RESULTS_KIND = "repro-shard-results"


class ShardError(ValueError):
    """A manifest or results file is invalid or inconsistent with its peers."""


def _require(payload: Dict[str, object], key: str, source: str) -> object:
    if key not in payload:
        raise ShardError(f"{source}: missing required field {key!r}")
    return payload[key]


def _require_int(payload: Dict[str, object], key: str, source: str) -> int:
    value = _require(payload, key, source)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ShardError(f"{source}: field {key!r} must be an integer, "
                         f"got {value!r}")
    return value


def _require_str(payload: Dict[str, object], key: str, source: str) -> str:
    value = _require(payload, key, source)
    if not isinstance(value, str):
        raise ShardError(f"{source}: field {key!r} must be a string, "
                         f"got {value!r}")
    return value


def _require_str_tuple(payload: Dict[str, object], key: str,
                       source: str) -> Tuple[str, ...]:
    value = _require(payload, key, source)
    if not isinstance(value, (list, tuple)) \
            or not all(isinstance(item, str) for item in value):
        raise ShardError(f"{source}: field {key!r} must be a list of "
                         f"strings, got {value!r}")
    return tuple(value)


def _require_list(payload: Dict[str, object], key: str, source: str) -> list:
    value = _require(payload, key, source)
    if not isinstance(value, list):
        raise ShardError(f"{source}: field {key!r} must be a list, "
                         f"got {type(value).__name__}")
    return value


def _check_header(payload: Dict[str, object], kind: str, source: str) -> None:
    found_kind = payload.get("kind")
    if found_kind != kind:
        raise ShardError(f"{source}: field 'kind' is {found_kind!r}; "
                         f"expected a {kind!r} file")
    version = payload.get("format_version")
    if version != MANIFEST_FORMAT_VERSION:
        raise ShardError(
            f"{source}: field 'format_version' is {version!r}; this build "
            f"reads format version {MANIFEST_FORMAT_VERSION}")


def _load_json(path: Union[str, Path], source: str) -> Dict[str, object]:
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise ShardError(f"{source}: cannot read {path!s}: {error}") from error
    except json.JSONDecodeError as error:
        raise ShardError(f"{source}: {path!s} is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ShardError(f"{source}: {path!s} does not contain a JSON object")
    return payload


def _parse_json_bytes(data: bytes, source: str) -> Dict[str, object]:
    """Like :func:`_load_json` for payloads that never touched a file
    (object-store values); ``source`` should name the store and key."""
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ShardError(f"{source}: is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ShardError(f"{source}: does not contain a JSON object")
    return payload


@dataclass(frozen=True)
class ShardManifest:
    """One shard's work order: a spec batch plus the plan's identity.

    The identity fields (``seed``, ``trials``, ``fingerprint``,
    ``setting_keys``, ``task_ids``, ``shard_count``) are replicated into
    every manifest so any executor can verify compatibility and the merge
    step can prove all shards came from one plan without a side channel.
    """

    shard_index: int
    shard_count: int
    seed: int
    trials: int
    fingerprint: str
    setting_keys: Tuple[str, ...]
    task_ids: Tuple[str, ...]
    specs: Tuple[TrialSpec, ...]

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": _MANIFEST_KIND,
            "format_version": MANIFEST_FORMAT_VERSION,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "seed": self.seed,
            "trials": self.trials,
            "fingerprint": self.fingerprint,
            "setting_keys": list(self.setting_keys),
            "task_ids": list(self.task_ids),
            "specs": [spec.as_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object],
                  source: str = "manifest") -> "ShardManifest":
        _check_header(payload, _MANIFEST_KIND, source)
        specs = []
        for position, spec in enumerate(_require_list(payload, "specs", source)):
            try:
                specs.append(TrialSpec.from_dict(spec))
            except (KeyError, TypeError, ValueError, AttributeError) as error:
                raise ShardError(
                    f"{source}: field 'specs[{position}]' is not a valid "
                    f"trial spec: {error!r}") from error
        return cls(
            shard_index=_require_int(payload, "shard_index", source),
            shard_count=_require_int(payload, "shard_count", source),
            seed=_require_int(payload, "seed", source),
            trials=_require_int(payload, "trials", source),
            fingerprint=_require_str(payload, "fingerprint", source),
            setting_keys=_require_str_tuple(payload, "setting_keys", source),
            task_ids=_require_str_tuple(payload, "task_ids", source),
            specs=tuple(specs),
        )

    def save(self, path: Union[str, Path]) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.as_dict(), indent=1), encoding="utf-8")
        return target

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ShardManifest":
        return cls.from_dict(_load_json(path, "manifest"), source=str(path))

    def plan_identity(self) -> Tuple[object, ...]:
        """Everything that must agree across shards of one plan."""
        return (self.shard_count, self.seed, self.trials, self.fingerprint,
                self.setting_keys, self.task_ids)

    @property
    def trace_id(self) -> str:
        """Deterministic trace id for this shard's telemetry.

        Derived from the plan-identity fields plus ``shard_index`` (never
        stored — the manifest wire format is unchanged), so the
        submitter, any worker holding the lease, and the collector all
        compute the same id independently.
        """
        from repro.bench.observe.trace import manifest_trace_id
        return manifest_trace_id(self)


#: Labels for :meth:`ShardManifest.plan_identity`, in tuple order.
PLAN_IDENTITY_LABELS = ("shard_count", "seed", "trials", "fingerprint",
                        "setting_keys", "task_ids")


def check_plan_identity(reference: Tuple[object, ...],
                        manifest: "ShardManifest", source: str) -> None:
    """Raise a :class:`ShardError` naming the first identity field on which
    ``manifest`` disagrees with ``reference`` (a ``plan_identity()`` tuple)."""
    theirs = manifest.plan_identity()
    if theirs == reference:
        return
    for label, ours_value, theirs_value in zip(PLAN_IDENTITY_LABELS,
                                               reference, theirs):
        if ours_value != theirs_value:
            raise ShardError(
                f"{source}: does not belong to this plan: field {label!r} "
                f"is {theirs_value!r}, expected {ours_value!r}")
    # Unequal tuples with no differing zipped field means the shapes differ
    # (e.g. an identity built by an older build) — never accept silently.
    raise ShardError(
        f"{source}: does not belong to this plan: identity has "
        f"{len(theirs)} field(s), expected {len(reference)}")


def shard_file_name(shard_index: int, shard_count: int) -> str:
    """Canonical file name for one shard's manifest (and its results)."""
    return f"shard-{shard_index:03d}-of-{shard_count:03d}.json"


@dataclass(frozen=True)
class ShardPlan:
    """A full grid partitioned into N self-contained manifests."""

    manifests: Tuple[ShardManifest, ...]

    @property
    def shard_count(self) -> int:
        return len(self.manifests)

    def specs(self) -> List[TrialSpec]:
        """All specs across shards (shard-local order, not canonical)."""
        return [spec for manifest in self.manifests for spec in manifest.specs]

    def manifest_name(self, index: int) -> str:
        return shard_file_name(index, self.shard_count)

    def write(self, out_dir: Union[str, Path]) -> List[Path]:
        """Write one manifest file per shard; returns the paths in order."""
        directory = Path(out_dir)
        directory.mkdir(parents=True, exist_ok=True)
        return [manifest.save(directory / self.manifest_name(manifest.shard_index))
                for manifest in self.manifests]


def plan_shards(shards: int, *, seed: int, trials: int,
                setting_keys: Sequence[str], task_ids: Sequence[str],
                dmi_config: Optional[DMIConfig] = None) -> ShardPlan:
    """Expand the grid and partition it into ``shards`` manifests.

    Specs are dealt round-robin (shard *i* takes canonical specs
    ``i, i+N, i+2N, …``) so every shard carries a balanced mix of settings
    and applications; the merge step reassembles canonical order, so the
    partition layout never affects the merged output.
    """
    if shards < 1:
        raise ShardError(f"shards must be >= 1, got {shards}")
    if trials < 1:
        raise ShardError(f"trials must be >= 1, got {trials}")
    setting_keys = tuple(setting_keys)
    task_ids = tuple(task_ids)
    # Duplicates would expand into identical TrialSpecs spread across
    # shards, which execute fine but can never merge ("spec claimed by more
    # than one shard") — reject the plan up front instead of after the
    # compute is spent.
    for label, values in (("setting key", setting_keys), ("task id", task_ids)):
        duplicates = sorted({v for v in values if values.count(v) > 1})
        if duplicates:
            raise ShardError(f"duplicate {label}(s) in the plan grid: "
                             f"{', '.join(map(repr, duplicates))}")
    specs = expand_trial_specs(seed, trials, setting_keys, task_ids)
    if shards > len(specs):
        raise ShardError(
            f"cannot split {len(specs)} trial specs into {shards} shards; "
            "use fewer shards (every shard must carry at least one spec)")
    fingerprint = config_fingerprint(dmi_config or DMIConfig())
    manifests = tuple(
        ShardManifest(shard_index=index, shard_count=shards, seed=seed,
                      trials=trials, fingerprint=fingerprint,
                      setting_keys=setting_keys, task_ids=task_ids,
                      specs=tuple(specs[index::shards]))
        for index in range(shards))
    return ShardPlan(manifests=manifests)


# ----------------------------------------------------------------------
# running one manifest
# ----------------------------------------------------------------------
@dataclass
class ShardResults:
    """One executed shard: the manifest echo plus its session results.

    ``results[i]`` is the outcome of ``manifest.specs[i]``; the manifest is
    embedded verbatim so the merge step can validate provenance from the
    results file alone.  ``source`` remembers where the results were loaded
    from (a file path, or an object-store key) purely for error messages —
    it is not serialized and never participates in equality.
    """

    manifest: ShardManifest
    results: List[SessionResult] = field(default_factory=list)
    source: Optional[str] = field(default=None, compare=False, repr=False)

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": _RESULTS_KIND,
            "format_version": MANIFEST_FORMAT_VERSION,
            "manifest": self.manifest.as_dict(),
            "results": [result.as_dict() for result in self.results],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object],
                  source: str = "results") -> "ShardResults":
        _check_header(payload, _RESULTS_KIND, source)
        manifest_payload = _require(payload, "manifest", source)
        if not isinstance(manifest_payload, dict):
            raise ShardError(f"{source}: field 'manifest' must be a JSON "
                             f"object, got {type(manifest_payload).__name__}")
        manifest = ShardManifest.from_dict(
            manifest_payload, source=f"{source} (manifest)")
        results = []
        for position, result in enumerate(_require_list(payload, "results",
                                                        source)):
            try:
                results.append(SessionResult.from_dict(result))
            except (KeyError, TypeError, ValueError, AttributeError) as error:
                raise ShardError(
                    f"{source}: field 'results[{position}]' is not a valid "
                    f"session result: {error!r}") from error
        if len(results) != len(manifest.specs):
            raise ShardError(
                f"{source}: shard {manifest.shard_index} carries "
                f"{len(manifest.specs)} specs but {len(results)} results")
        # results[i] must be the outcome of specs[i]; a reordered or
        # hand-merged results array would otherwise silently attribute
        # trials to the wrong grid cells.
        from repro.bench.runner import setting_by_key

        for position, (spec, result) in enumerate(zip(manifest.specs, results)):
            if result.task_id != spec.task_id:
                raise ShardError(
                    f"{source}: result {position} is for task "
                    f"{result.task_id!r} but spec {position} expects "
                    f"{spec.task_id!r}; the results array is misaligned "
                    "with the manifest's specs")
            try:
                setting = setting_by_key(spec.setting_key)
            except KeyError:
                # Unknown setting keys get a clean registry error at merge
                # time; they cannot be cross-checked here.
                continue
            observed = (result.interface.value, result.model, result.reasoning)
            expected = (setting.interface.value, setting.profile.name,
                        setting.profile.reasoning)
            if observed != expected:
                raise ShardError(
                    f"{source}: result {position} ran under "
                    f"interface/model/reasoning {observed!r} but spec "
                    f"{position} is for setting {spec.setting_key!r} "
                    f"{expected!r}; the results array is misaligned with "
                    "the manifest's specs")
        return cls(manifest=manifest, results=results, source=source)

    def save(self, path: Union[str, Path]) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.as_dict(), indent=1), encoding="utf-8")
        return target

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ShardResults":
        return cls.from_dict(_load_json(path, "results"), source=str(path))


class ManifestExecutor:
    """Runs one :class:`ShardManifest` on this machine.

    A thin adapter over the ordinary engine stack: it rebuilds a
    :class:`~repro.bench.runner.BenchmarkRunner` from the manifest's seed
    and trial count, selects the serial or process-pool executor via
    ``jobs`` and reuses the on-disk :class:`~repro.dmi.cache.ArtifactCache`
    when ``cache_dir`` is given, so a warm cache skips GUI ripping exactly
    as a local run would.
    """

    def __init__(self, jobs: int = 1,
                 cache_dir: Optional[Union[str, Path]] = None,
                 dmi_config: Optional[DMIConfig] = None,
                 cache_max_entries: Optional[int] = None,
                 sink=None) -> None:
        if jobs < 1:
            raise ShardError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.dmi_config = dmi_config or DMIConfig()
        self.cache_max_entries = cache_max_entries
        #: Telemetry sink handed to the runner and cache of every manifest
        #: this executor runs (None = the process default at emit time).
        self.sink = sink
        #: One cache shared across every manifest this executor runs, so
        #: hit/miss counters aggregate over a whole worker session.
        self.cache: Optional[ArtifactCache] = (
            ArtifactCache(cache_dir, self.dmi_config,
                          max_entries=cache_max_entries, sink=sink)
            if cache_dir is not None else None)

    def cache_stats(self) -> Optional[Dict[str, object]]:
        """Cumulative cache hit/miss stats, or None without a cache_dir."""
        return self.cache.stats() if self.cache is not None else None

    def run(self, manifest: ShardManifest,
            progress: Optional[ProgressCallback] = None) -> ShardResults:
        from repro.bench.runner import BenchmarkConfig, BenchmarkRunner

        local = config_fingerprint(self.dmi_config)
        if manifest.fingerprint != local:
            raise ShardError(
                f"manifest was planned for DMI configuration "
                f"{manifest.fingerprint} but this executor runs {local}; "
                "results would not merge with the plan's other shards")
        runner = BenchmarkRunner(BenchmarkConfig(
            trials=manifest.trials, seed=manifest.seed, dmi=self.dmi_config,
            jobs=self.jobs, cache_dir=self.cache_dir,
            cache_max_entries=self.cache_max_entries))
        runner.sink = self.sink
        if self.cache is not None:
            # Share the executor-lifetime cache (and its counters) instead
            # of the runner's per-run instance.
            runner.cache = self.cache
        # Register the grid's settings/tasks so spec resolution matches a
        # local run (registry lookup; ad-hoc objects never cross machines).
        try:
            runner.trial_specs([runner._resolve_setting(key)
                                for key in manifest.setting_keys],
                               [runner._resolve_task(task_id)
                                for task_id in manifest.task_ids])
        except KeyError as error:
            raise ShardError(
                f"manifest references {error} which is not in this build's "
                "registry; the plan and executor must run the same version"
            ) from error
        results = runner.executor().run(runner, manifest.specs,
                                        progress=progress)
        return ShardResults(manifest=manifest, results=list(results))


# ----------------------------------------------------------------------
# merging
# ----------------------------------------------------------------------
def _describe_results(shard: ShardResults) -> str:
    """Where one ShardResults came from, for merge error messages."""
    return shard.source if shard.source else "<in-memory ShardResults>"


def merge_shard_results(shards: Sequence[ShardResults]) -> Dict[str, "RunOutcome"]:
    """Validate ``shards`` and reassemble them into per-setting outcomes.

    The merged mapping is byte-identical to what
    :meth:`~repro.bench.runner.BenchmarkRunner.run_settings` produces for
    the same grid and seed: results are re-ordered into canonical spec
    order (settings × tasks × trials) before aggregation, so shard layout
    and completion order never leak into the output.
    """
    from repro.bench.runner import RunOutcome, setting_by_key

    shards = list(shards)
    if not shards:
        raise ShardError("no shard results to merge")
    reference = shards[0].manifest
    for shard in shards[1:]:
        manifest = shard.manifest
        check_plan_identity(reference.plan_identity(), manifest,
                            source=f"shard {manifest.shard_index}")
    seen: Dict[int, ShardResults] = {}
    for shard in shards:
        index = shard.manifest.shard_index
        if index in seen:
            # Name both offending results files: "shard 3 twice" is not
            # actionable when ten result paths were globbed onto the
            # command line.
            raise ShardError(
                f"shard {index} appears more than once "
                f"(first: {_describe_results(seen[index])}, "
                f"duplicate: {_describe_results(shard)})")
        if not 0 <= index < reference.shard_count:
            raise ShardError(f"shard index {index} out of range for a "
                             f"{reference.shard_count}-shard plan")
        seen[index] = shard
    missing = sorted(set(range(reference.shard_count)) - set(seen))
    if missing:
        raise ShardError(
            f"incomplete plan: missing results for shard(s) "
            f"{', '.join(map(str, missing))} of {reference.shard_count}")

    by_spec: Dict[TrialSpec, SessionResult] = {}
    for shard in shards:
        for spec, result in zip(shard.manifest.specs, shard.results):
            if spec in by_spec:
                raise ShardError(f"trial spec {spec.as_dict()!r} is claimed "
                                 "by more than one shard")
            by_spec[spec] = result
    canonical = expand_trial_specs(reference.seed, reference.trials,
                                   reference.setting_keys, reference.task_ids)
    stray = set(by_spec) - set(canonical)
    if stray:
        example = sorted(stray, key=lambda s: (s.setting_key, s.task_id, s.trial))[0]
        raise ShardError(f"shard results contain a spec outside the plan's "
                         f"grid: {example.as_dict()!r}")
    absent = [spec for spec in canonical if spec not in by_spec]
    if absent:
        raise ShardError(f"plan grid has {len(absent)} trial spec(s) with no "
                         f"result, first: {absent[0].as_dict()!r}")

    try:
        outcomes = {key: RunOutcome(setting=setting_by_key(key))
                    for key in reference.setting_keys}
    except KeyError as error:
        raise ShardError(
            f"shard results reference evaluation setting {error} which is "
            "not in this build's registry; merge with the same version that "
            "planned the shards") from error
    for spec in canonical:
        outcomes[spec.setting_key].results.append(by_spec[spec])
    return outcomes
