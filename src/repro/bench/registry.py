"""The persistent run registry: one :class:`RunRecord` per measured run.

Telemetry (:mod:`repro.bench.telemetry`) answers "where did the time go in
*this* process"; the registry answers "how does this run compare to every
run before it".  A :class:`RunRecord` is the durable summary of one
benchmark execution — which grid, which execution path, how long, and the
aggregate counters/timers/metrics — written atomically as one JSON file in
a :class:`RunRegistry` directory.  ``repro run``, ``repro shard run`` and
``repro shard work``/``collect`` all populate it when ``--registry DIR``
(or the ``REPRO_REGISTRY`` environment variable) is set, and the
``repro runs`` CLI (list / show / diff / export) reads it back.

A record's :attr:`~RunRecord.config_key` fingerprints the *grid identity*
(seed, trials, setting keys, task ids, DMI config fingerprint) and
deliberately excludes the execution path, so two records are comparable
("same work, different machinery") exactly when their config keys match —
the registry-level analogue of the shard plan-identity check.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.bench.telemetry import AggregatingSink

#: Version of the RunRecord JSON layout; mismatching files are rejected.
RUN_RECORD_FORMAT_VERSION = 1

_RECORD_KIND = "repro-run-record"

#: The execution paths a record may claim: the five equivalence paths, plus
#: the maintenance paths recorded by ``repro cache gc`` and incremental rips.
EXECUTOR_PATHS = ("serial", "parallel", "file-shard", "dir-broker",
                  "store-broker", "cache-gc", "incremental-rip")

#: Environment variable consulted when no ``--registry`` flag is given.
REGISTRY_ENV_VAR = "REPRO_REGISTRY"


class RegistryError(ValueError):
    """A run record is missing, unreadable, or structurally invalid."""


def _executor_base(executor: str) -> str:
    """The path component of an executor label.

    Broker runs against a *named* plan label themselves
    ``dir-broker:planA`` / ``store-broker:planA`` so ``runs list``/``diff``
    can tell concurrent tenants apart; the part before the first ``:`` must
    still be one of :data:`EXECUTOR_PATHS`.  Default-namespace runs keep
    the bare label, so pre-PR-7 records and tooling are unaffected.
    """
    return executor.split(":", 1)[0]


def _require(payload: Mapping[str, object], key: str, source: str) -> object:
    if key not in payload:
        raise RegistryError(f"{source}: missing required field {key!r}")
    return payload[key]


def _require_int(payload: Mapping[str, object], key: str, source: str) -> int:
    value = _require(payload, key, source)
    if isinstance(value, bool) or not isinstance(value, int):
        raise RegistryError(f"{source}: field {key!r} must be an integer, "
                            f"got {value!r}")
    return value


def _require_number(payload: Mapping[str, object], key: str,
                    source: str) -> float:
    value = _require(payload, key, source)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RegistryError(f"{source}: field {key!r} must be a number, "
                            f"got {value!r}")
    return float(value)


def _require_str(payload: Mapping[str, object], key: str, source: str) -> str:
    value = _require(payload, key, source)
    if not isinstance(value, str):
        raise RegistryError(f"{source}: field {key!r} must be a string, "
                            f"got {value!r}")
    return value


def _require_str_tuple(payload: Mapping[str, object], key: str,
                       source: str) -> Tuple[str, ...]:
    value = _require(payload, key, source)
    if not isinstance(value, (list, tuple)) \
            or not all(isinstance(item, str) for item in value):
        raise RegistryError(f"{source}: field {key!r} must be a list of "
                            f"strings, got {value!r}")
    return tuple(value)


def _require_dict(payload: Mapping[str, object], key: str,
                  source: str) -> Dict[str, object]:
    value = _require(payload, key, source)
    if not isinstance(value, dict):
        raise RegistryError(f"{source}: field {key!r} must be a JSON object, "
                            f"got {type(value).__name__}")
    return value


def config_key(seed: int, trials: int, setting_keys: Sequence[str],
               task_ids: Sequence[str], fingerprint: str,
               subset: Optional[str] = None) -> str:
    """Hex digest of the grid identity (execution path excluded).

    ``subset`` marks a record that covers only a slice of the grid (one
    shard of a plan, or whichever manifests one worker won): the slice is
    folded into the digest so a partial record never reads as comparable
    to a full run of the same grid — only to the *same* slice of it.
    """
    payload: Dict[str, object] = {
        "seed": seed, "trials": trials,
        "setting_keys": list(setting_keys),
        "task_ids": list(task_ids), "fingerprint": fingerprint}
    if subset is not None:
        payload["subset"] = subset
    encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()[:16]


@dataclass(frozen=True)
class RunRecord:
    """The durable summary of one measured benchmark execution."""

    run_id: str
    created_at: str                    # ISO-8601 UTC
    executor: str                      # one of EXECUTOR_PATHS
    seed: int
    trials: int
    jobs: int
    setting_keys: Tuple[str, ...]
    task_ids: Tuple[str, ...]
    fingerprint: str                   # DMI config fingerprint
    config_key: str                    # grid identity digest (see module doc)
    trial_count: int
    wall_clock_s: float
    #: Event counters from the run's AggregatingSink (may be empty).
    counters: Dict[str, int] = field(default_factory=dict)
    #: Timer snapshots from the AggregatingSink (name -> TimerStats dict).
    timers: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: Per-setting aggregate metrics (MetricSummary.as_dict per key).
    metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Free-form execution context (broker location, shard index, ...).
    context: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": _RECORD_KIND,
            "format_version": RUN_RECORD_FORMAT_VERSION,
            "run_id": self.run_id,
            "created_at": self.created_at,
            "executor": self.executor,
            "seed": self.seed,
            "trials": self.trials,
            "jobs": self.jobs,
            "setting_keys": list(self.setting_keys),
            "task_ids": list(self.task_ids),
            "fingerprint": self.fingerprint,
            "config_key": self.config_key,
            "trial_count": self.trial_count,
            "wall_clock_s": self.wall_clock_s,
            "counters": dict(self.counters),
            "timers": {name: dict(stats)
                       for name, stats in self.timers.items()},
            "metrics": {key: dict(summary)
                        for key, summary in self.metrics.items()},
            "context": dict(self.context),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object],
                  source: str = "run record") -> "RunRecord":
        kind = payload.get("kind")
        if kind != _RECORD_KIND:
            raise RegistryError(f"{source}: field 'kind' is {kind!r}; "
                                f"expected a {_RECORD_KIND!r} file")
        version = payload.get("format_version")
        if version != RUN_RECORD_FORMAT_VERSION:
            raise RegistryError(
                f"{source}: field 'format_version' is {version!r}; this "
                f"build reads format version {RUN_RECORD_FORMAT_VERSION}")
        executor = _require_str(payload, "executor", source)
        if _executor_base(executor) not in EXECUTOR_PATHS:
            raise RegistryError(
                f"{source}: field 'executor' is {executor!r}; expected one "
                f"of {', '.join(map(repr, EXECUTOR_PATHS))} (optionally "
                "suffixed ':<plan>' for a named broker plan)")
        counters = _require_dict(payload, "counters", source)
        for name, value in counters.items():
            if isinstance(value, bool) or not isinstance(value, int):
                raise RegistryError(f"{source}: field 'counters.{name}' "
                                    f"must be an integer, got {value!r}")
        return cls(
            run_id=_require_str(payload, "run_id", source),
            created_at=_require_str(payload, "created_at", source),
            executor=executor,
            seed=_require_int(payload, "seed", source),
            trials=_require_int(payload, "trials", source),
            jobs=_require_int(payload, "jobs", source),
            setting_keys=_require_str_tuple(payload, "setting_keys", source),
            task_ids=_require_str_tuple(payload, "task_ids", source),
            fingerprint=_require_str(payload, "fingerprint", source),
            config_key=_require_str(payload, "config_key", source),
            trial_count=_require_int(payload, "trial_count", source),
            wall_clock_s=_require_number(payload, "wall_clock_s", source),
            counters=dict(counters),
            timers=dict(_require_dict(payload, "timers", source)),
            metrics=dict(_require_dict(payload, "metrics", source)),
            context=dict(payload.get("context", {})
                         if isinstance(payload.get("context", {}), dict)
                         else {}),
        )


def build_run_record(run_id: str, *, executor: str, seed: int, trials: int,
                     jobs: int, setting_keys: Sequence[str],
                     task_ids: Sequence[str], fingerprint: str,
                     results_by_setting: Mapping[str, Sequence],
                     wall_clock_s: float,
                     sink: Optional[AggregatingSink] = None,
                     context: Optional[Mapping[str, object]] = None,
                     created_at: Optional[str] = None,
                     subset: Optional[str] = None) -> RunRecord:
    """Assemble a :class:`RunRecord` from a finished run's pieces.

    ``results_by_setting`` maps setting key to that setting's
    :class:`~repro.agent.session.SessionResult` list (a ``RunOutcome``'s
    ``results``); aggregate metrics are computed here so every entry point
    records the same Table 3 summary shape.  Pass ``subset`` when the run
    covered only part of the grid (see :func:`config_key`); it is also
    recorded in the context for human readers.
    """
    from repro.bench.metrics import aggregate

    if _executor_base(executor) not in EXECUTOR_PATHS:
        raise RegistryError(f"executor must be one of "
                            f"{', '.join(EXECUTOR_PATHS)} (optionally "
                            f"suffixed ':<plan>' for a named broker plan), "
                            f"got {executor!r}")
    snapshot = sink.snapshot() if sink is not None else \
        {"counters": {}, "timers": {}}
    context = dict(context or {})
    if subset is not None:
        context.setdefault("subset", subset)
    return RunRecord(
        run_id=run_id,
        created_at=created_at or time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                               time.gmtime()),
        executor=executor,
        seed=seed,
        trials=trials,
        jobs=jobs,
        setting_keys=tuple(setting_keys),
        task_ids=tuple(task_ids),
        fingerprint=fingerprint,
        config_key=config_key(seed, trials, setting_keys, task_ids,
                              fingerprint, subset=subset),
        trial_count=sum(len(results)
                        for results in results_by_setting.values()),
        wall_clock_s=wall_clock_s,
        counters=dict(snapshot["counters"]),
        timers=dict(snapshot["timers"]),
        metrics={key: aggregate(results).as_dict()
                 for key, results in results_by_setting.items()},
        context=context,
    )


class RunRegistry:
    """A directory of run records, one ``<run_id>.json`` file per run.

    Records are written atomically (temp file + rename), so a reader never
    observes a half-written record; run ids sort chronologically because
    they start with a UTC timestamp.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    @classmethod
    def from_env(cls, explicit: Optional[Union[str, Path]] = None
                 ) -> Optional["RunRegistry"]:
        """The registry selected by ``--registry`` or ``REPRO_REGISTRY``
        (flag wins), or ``None`` when neither is set."""
        location = explicit or os.environ.get(REGISTRY_ENV_VAR) or None
        return cls(location) if location else None

    # Process-wide floor for id timestamps: ``new_run_id`` never reuses or
    # goes below the last stamped microsecond, even when the wall clock
    # stalls (coarse clocks, VMs) or steps backwards (NTP), so ids created
    # by one process always sort in creation order.  The random suffix
    # remains purely a cross-process tie-break.
    _id_lock = threading.Lock()
    _last_micros = 0

    def new_run_id(self) -> str:
        """Timestamp to the microsecond (monotonically bumped) + random
        suffix.  Sorting the ids of one process reproduces creation order
        exactly; across processes the suffix keeps simultaneous ids
        distinct (ordering between them is arbitrary but stable)."""
        with RunRegistry._id_lock:
            micros = int(time.time() * 1_000_000)
            if micros <= RunRegistry._last_micros:
                micros = RunRegistry._last_micros + 1
            RunRegistry._last_micros = micros
        seconds, fraction = divmod(micros, 1_000_000)
        stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime(seconds))
        return f"{stamp}.{fraction:06d}-{os.urandom(3).hex()}"

    def path_for(self, run_id: str) -> Path:
        return self.root / f"{run_id}.json"

    # ------------------------------------------------------------------
    # write
    # ------------------------------------------------------------------
    def record(self, record: RunRecord) -> Path:
        """Persist ``record`` atomically; refuses to overwrite a run id."""
        self.root.mkdir(parents=True, exist_ok=True)
        target = self.path_for(record.run_id)
        if target.exists():
            raise RegistryError(f"{target}: run {record.run_id!r} is already "
                                "recorded in this registry")
        tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(record.as_dict(), indent=1,
                                  ensure_ascii=False), encoding="utf-8")
        tmp.replace(target)
        return target

    # ------------------------------------------------------------------
    # read
    # ------------------------------------------------------------------
    def run_ids(self) -> List[str]:
        """All recorded run ids, chronological (timestamp-prefixed sort)."""
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob("*.json")
                      if not path.name.startswith("."))

    def load(self, run_id: str) -> RunRecord:
        path = self.path_for(run_id)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as error:
            raise RegistryError(f"{path}: cannot read run record: {error}") \
                from error
        except json.JSONDecodeError as error:
            raise RegistryError(f"{path}: not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise RegistryError(f"{path}: does not contain a JSON object")
        record = RunRecord.from_dict(payload, source=str(path))
        if record.run_id != run_id:
            raise RegistryError(f"{path}: field 'run_id' is "
                                f"{record.run_id!r}, which does not match "
                                f"the file name")
        return record

    def resolve(self, run_id_or_prefix: str) -> RunRecord:
        """Load by exact id, or by unique prefix (CLI convenience)."""
        ids = self.run_ids()
        if run_id_or_prefix in ids:
            return self.load(run_id_or_prefix)
        matches = [run_id for run_id in ids
                   if run_id.startswith(run_id_or_prefix)]
        if not matches:
            raise RegistryError(
                f"{self.root}: no run {run_id_or_prefix!r} in the registry "
                f"({len(ids)} run(s) recorded; see 'repro runs list')")
        if len(matches) > 1:
            raise RegistryError(
                f"{self.root}: run id prefix {run_id_or_prefix!r} is "
                f"ambiguous: {', '.join(matches)}")
        return self.load(matches[0])

    def load_all(self) -> List[RunRecord]:
        return [self.load(run_id) for run_id in self.run_ids()]

    def load_all_tolerant(self) -> Tuple[List[RunRecord], List[str]]:
        """Every readable record, plus one message per skipped file.

        A registry accumulates files over many PRs; one torn, stray, or
        newer-format record must not make the whole registry unlistable —
        browsing commands skip it (loudly) instead of dying on it.
        """
        records: List[RunRecord] = []
        problems: List[str] = []
        for run_id in self.run_ids():
            try:
                records.append(self.load(run_id))
            except RegistryError as error:
                problems.append(str(error))
        return records, problems

    def latest(self) -> Optional[RunRecord]:
        ids = self.run_ids()
        return self.load(ids[-1]) if ids else None
