"""Remote shard transport: a broker/worker queue over shard manifests.

PR 2's shard pipeline (:mod:`repro.bench.shard`) is file-bound: an operator
hand-carries manifest JSONs to machines and collects results back.  This
module turns it into a deploy-anywhere work queue with three roles:

coordinator
    :meth:`ShardBroker.submit` enqueues every manifest of a
    :class:`~repro.bench.shard.ShardPlan` on a broker;
    :meth:`ShardBroker.status` reports queued/leased/done counts
    (:class:`BrokerStatus`) while workers run; :meth:`ShardBroker.collect`
    gathers the posted :class:`~repro.bench.shard.ShardResults`, which feed
    straight into :func:`~repro.bench.shard.merge_shard_results` so all of
    PR 2's plan-identity validation applies unchanged.
worker
    :class:`ShardWorker` is a pull loop: lease a manifest, run it through a
    :class:`~repro.bench.shard.ManifestExecutor` (inheriting ``jobs`` and
    the :class:`~repro.dmi.cache.ArtifactCache`), post the results, repeat;
    it exits when the queue drains.
broker
    :class:`LocalDirBroker` implements the queue on a shared (NFS-style)
    directory using only atomic renames, so any number of workers on any
    number of machines can race for leases without locks; leases expire
    after ``lease_ttl`` seconds and are reclaimed, so a crashed worker's
    manifest is re-run by a peer.  :class:`ObjectStoreBroker` implements the
    same contract over any :class:`~repro.bench.store.ObjectStore` (S3-style
    conditional writes; leases are small compare-and-swap'd objects instead
    of renamed files), making the queue deployable against cloud storage.
    :class:`InMemoryBroker` implements the contract in-process for tests.

Leases are kept alive by *heartbeats*: :meth:`ShardBroker.renew` extends a
lease the caller still holds (and reports loss if it was reclaimed), and
:class:`ShardWorker` runs a background :class:`LeaseHeartbeat` thread per
manifest (interval ``lease_ttl / 3`` by default), so a manifest that takes
longer than ``lease_ttl`` finishes without being reclaimed — ``lease_ttl``
can stay sized for crash *detection* instead of worst-case runtime.  A
worker whose heartbeat discovers the lease was reclaimed abandons the
manifest without posting; the peer that reclaimed it reproduces the same
bytes.

Because every trial is deterministically seeded, re-running a reclaimed
manifest (or double-posting one) reproduces the same
:class:`~repro.agent.session.SessionResult` payloads, which is what makes
first-write-wins result posting and lease reclaim safe: the merged output
stays bit-identical to a serial run no matter how work was dealt out (the
equivalence harness in ``tests/equivalence.py`` asserts exactly this).
"""

from __future__ import annotations

import json
import math
import os
import random
import re
import socket
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.bench.shard import (
    MANIFEST_FORMAT_VERSION,
    PLAN_IDENTITY_LABELS,
    ManifestExecutor,
    ShardError,
    ShardManifest,
    ShardPlan,
    ShardResults,
    _check_header,
    _load_json,
    _parse_json_bytes,
    _require,
    _require_int,
    _require_str,
    _require_str_tuple,
    check_plan_identity,
    shard_file_name,
)
from repro.bench.engine import ProgressCallback
from repro.bench.store import ObjectStore
from repro.bench import telemetry
from repro.bench.telemetry import (
    EventSink,
    LeaseAcquired,
    LeaseLost,
    LeaseRenewed,
    ManifestAbandoned,
    ShardCollected,
    ShardPosted,
    WorkerIdle,
)

#: Seconds a lease stays valid before any worker may reclaim the manifest.
#: Generous by default: reclaim exists for crashed workers, not slow ones
#: (and heartbeats keep live leases fresh regardless of manifest runtime).
DEFAULT_LEASE_TTL = 900.0

#: Fraction of ``lease_ttl`` between heartbeat renewals when no explicit
#: interval is configured: three chances to renew before the lease expires.
DEFAULT_HEARTBEAT_FRACTION = 3.0

#: First idle-poll sleep of a :class:`ShardWorker`'s exponential backoff;
#: doubles per consecutive empty poll, so a worker that just lost a lease
#: race re-checks quickly but an idle fleet quiets down fast.
IDLE_BACKOFF_BASE = 0.05

#: Hard ceiling on one idle-poll sleep regardless of how high ``--poll``
#: is set — crashed-peer reclaim latency stays bounded.
IDLE_BACKOFF_CAP = 30.0

_PLAN_KIND = "repro-broker-plan"

#: Typed loaders for the plan-header fields, keyed by identity label; any
#: label without an entry falls back to the untyped ``_require``, so a new
#: ``plan_identity()`` field flows through submit/parse without edits here.
_IDENTITY_PARSERS: Dict[str, Callable] = {
    "shard_count": _require_int,
    "seed": _require_int,
    "trials": _require_int,
    "fingerprint": _require_str,
    "setting_keys": _require_str_tuple,
    "task_ids": _require_str_tuple,
}

Clock = Callable[[], float]


def _plan_header_payload(plan: ShardPlan) -> Dict[str, object]:
    """The submitted plan's identity header, shared by all broker backends."""
    header: Dict[str, object] = {
        "kind": _PLAN_KIND,
        "format_version": MANIFEST_FORMAT_VERSION,
    }
    # Derived from the identity tuple itself so the header can never drift
    # from plan_identity()'s field set.
    for label, value in zip(PLAN_IDENTITY_LABELS,
                            plan.manifests[0].plan_identity()):
        header[label] = list(value) if isinstance(value, tuple) else value
    return header


def _parse_plan_header(payload: Dict[str, object],
                       source: str) -> Tuple[object, ...]:
    """Validate a plan header payload into a ``plan_identity()`` tuple."""
    _check_header(payload, _PLAN_KIND, source)
    return tuple(_IDENTITY_PARSERS.get(label, _require)(payload, label,
                                                        source)
                 for label in PLAN_IDENTITY_LABELS)


def _check_posted_results(reference: Tuple[object, ...],
                          results: ShardResults, source: str) -> None:
    """Posted results must carry a manifest of this plan, in index range."""
    manifest = results.manifest
    check_plan_identity(reference, manifest,
                        source=f"{source} for shard {manifest.shard_index}")
    if not 0 <= manifest.shard_index < manifest.shard_count:
        raise ShardError(f"{source} carry shard index "
                         f"{manifest.shard_index}, out of range for a "
                         f"{manifest.shard_count}-shard plan")


def _emit_collected(sink: EventSink, collected: List[ShardResults]) -> None:
    """One :class:`~repro.bench.telemetry.ShardCollected` per gathered shard."""
    if sink:
        for shard in collected:
            sink.emit(ShardCollected(shard_index=shard.manifest.shard_index))


@dataclass(frozen=True)
class BrokerStatus:
    """Coordinator-side queue counters (one snapshot, not a live view)."""

    queued: int
    leased: int
    done: int
    shard_count: int

    @property
    def complete(self) -> bool:
        return self.done >= self.shard_count

    @property
    def drained(self) -> bool:
        """No work left to lease *or* in flight (done or abandoned)."""
        return self.queued == 0 and self.leased == 0

    def render(self) -> str:
        return (f"{self.done}/{self.shard_count} done "
                f"({self.queued} queued, {self.leased} leased)")


@dataclass(frozen=True)
class ShardLease:
    """One leased manifest: the work order plus the lease bookkeeping.

    ``token`` is backend-specific (the lease filename for
    :class:`LocalDirBroker`); ``deadline`` is in the broker clock's units —
    after it passes any worker may reclaim the manifest.
    """

    manifest: ShardManifest
    worker_id: str
    deadline: float
    token: str


class ShardBroker(ABC):
    """The queue contract: submit a plan, lease manifests, post results.

    All brokers share first-write-wins semantics on results: posting a
    shard that is already done is an idempotent no-op (results are
    deterministic, so the copies are interchangeable), which makes both
    duplicate posts and post-reclaim stragglers harmless.
    """

    @abstractmethod
    def submit(self, plan: ShardPlan) -> None:
        """Enqueue every manifest of ``plan``.  One plan per broker."""

    @abstractmethod
    def lease(self, worker_id: str) -> Optional[ShardLease]:
        """Atomically take one queued manifest, or ``None`` if none is free.

        Expired leases are reclaimed first, so a crashed worker's manifest
        becomes leasable again after ``lease_ttl`` seconds.
        """

    @abstractmethod
    def renew(self, lease: ShardLease) -> Optional[ShardLease]:
        """Extend a still-held lease by ``lease_ttl`` from now.

        Returns the refreshed :class:`ShardLease` (post with *that* handle
        from then on), or ``None`` if the lease is no longer held — it
        expired and was reclaimed, or its shard is already done.  A ``None``
        tells the worker to abandon the manifest: a peer owns it now and
        will reproduce the same bytes.
        """

    @abstractmethod
    def post(self, lease: ShardLease, results: ShardResults) -> bool:
        """Post one shard's results; returns ``False`` on a duplicate post."""

    @abstractmethod
    def collect(self) -> List[ShardResults]:
        """All posted results, in shard-index order.

        Feed the list to :func:`~repro.bench.shard.merge_shard_results`,
        which (re)validates completeness and plan identity.
        """

    @abstractmethod
    def status(self) -> BrokerStatus:
        """Queue counters for the ``--progress`` display and drain checks."""


class InMemoryBroker(ShardBroker):
    """The queue contract over plain dicts, for tests and single-process use.

    A lock serializes every operation: the worker's heartbeat thread renews
    leases concurrently with the main thread's lease/post calls.
    """

    def __init__(self, lease_ttl: float = DEFAULT_LEASE_TTL,
                 clock: Clock = time.monotonic,
                 sink: Optional[EventSink] = None) -> None:
        if lease_ttl <= 0:
            raise ShardError(f"lease_ttl must be > 0, got {lease_ttl}")
        self.lease_ttl = lease_ttl
        self.sink = sink
        self._clock = clock
        self._lock = threading.Lock()
        self._identity: Optional[Tuple[object, ...]] = None
        self._shard_count = 0
        self._grants = 0
        self._queued: Dict[int, ShardManifest] = {}
        self._leases: Dict[int, ShardLease] = {}
        self._done: Dict[int, ShardResults] = {}

    def _require_plan(self) -> None:
        if self._identity is None:
            raise ShardError("no plan has been submitted to this broker")

    def _reclaim_expired(self) -> None:
        now = self._clock()
        for index, lease in list(self._leases.items()):
            if now >= lease.deadline:
                del self._leases[index]
                self._queued[index] = lease.manifest

    def submit(self, plan: ShardPlan) -> None:
        with self._lock:
            if self._identity is not None:
                raise ShardError("broker already holds a plan; use one "
                                 "broker per plan")
            self._identity = plan.manifests[0].plan_identity()
            self._shard_count = plan.shard_count
            self._queued = {m.shard_index: m for m in plan.manifests}

    def lease(self, worker_id: str) -> Optional[ShardLease]:
        with self._lock:
            self._require_plan()
            self._reclaim_expired()
            if not self._queued:
                return None
            index = min(self._queued)
            manifest = self._queued.pop(index)
            # The grant number makes every lease token unique, so a renew
            # by the original holder after reclaim + re-lease cannot pass
            # for the new holder's renewal.
            self._grants += 1
            lease = ShardLease(manifest=manifest, worker_id=worker_id,
                               deadline=self._clock() + self.lease_ttl,
                               token=f"{index}:{self._grants}")
            self._leases[index] = lease
            return lease

    def renew(self, lease: ShardLease) -> Optional[ShardLease]:
        with self._lock:
            self._require_plan()
            index = lease.manifest.shard_index
            current = self._leases.get(index)
            if current is None or current.token != lease.token:
                return None  # expired + reclaimed, or already posted
            refreshed = replace(current,
                                deadline=self._clock() + self.lease_ttl)
            self._leases[index] = refreshed
            return refreshed

    def post(self, lease: ShardLease, results: ShardResults) -> bool:
        with self._lock:
            self._require_plan()
            assert self._identity is not None
            index = results.manifest.shard_index
            _check_posted_results(self._identity, results,
                                  source="posted results")
            self._leases.pop(index, None)
            self._queued.pop(index, None)
            if index in self._done:
                return False
            self._done[index] = results
            return True

    def collect(self) -> List[ShardResults]:
        with self._lock:
            self._require_plan()
            collected = [self._done[index] for index in sorted(self._done)]
        _emit_collected(telemetry.resolve(self.sink), collected)
        return collected

    def status(self) -> BrokerStatus:
        with self._lock:
            self._require_plan()
            self._reclaim_expired()
            return BrokerStatus(queued=len(self._queued),
                                leased=len(self._leases),
                                done=len(self._done),
                                shard_count=self._shard_count)


def _sanitize_worker_id(worker_id: str) -> str:
    return re.sub(r"[^\w.-]", "-", worker_id) or "worker"


class LocalDirBroker(ShardBroker):
    """The queue contract over a shared directory, using only atomic renames.

    Layout under ``root``::

        plan.json    the plan's identity header (written once by submit)
        queued/      manifests waiting for a worker
        leased/      manifests being worked on; the lease deadline and
                     worker id are encoded in the filename
                     (``NAME.lease.<deadline_ms>.<worker>``)
        done/        posted ShardResults files, one per shard

    Every state transition is a single ``rename`` (atomic on POSIX, also
    over NFS), so concurrent workers race safely: exactly one wins each
    lease, the losers see ``FileNotFoundError`` and move on.  Files are
    written to a temp name first and renamed into place, so readers never
    observe a half-written JSON.

    Lease deadlines are wall-clock timestamps taken on the *leasing*
    machine and compared on whichever machine reclaims, so cross-machine
    clock skew shifts the effective TTL by the skew: a fast reclaimer
    reclaims early (the manifest is re-run — wasteful but still correct,
    posts are idempotent), a slow one delays crashed-worker recovery.
    Keep worker clocks NTP-synced, or size ``lease_ttl`` well above the
    worst expected skew.
    """

    PLAN_FILE = "plan.json"

    def __init__(self, root: Union[str, Path],
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 clock: Clock = time.time,
                 sink: Optional[EventSink] = None) -> None:
        if lease_ttl <= 0:
            raise ShardError(f"lease_ttl must be > 0, got {lease_ttl}")
        self.root = Path(root)
        self.lease_ttl = lease_ttl
        self.sink = sink
        self._clock = clock

    # ------------------------------------------------------------------
    # directory plumbing
    # ------------------------------------------------------------------
    @property
    def _plan_path(self) -> Path:
        return self.root / self.PLAN_FILE

    @property
    def _queued_dir(self) -> Path:
        return self.root / "queued"

    @property
    def _leased_dir(self) -> Path:
        return self.root / "leased"

    @property
    def _done_dir(self) -> Path:
        return self.root / "done"

    def _atomic_write_json(self, path: Path, text: str) -> None:
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(text, encoding="utf-8")
        tmp.replace(path)

    def _identity(self) -> Tuple[object, ...]:
        """Load and validate the plan header; the broker's reference identity."""
        if not self._plan_path.exists():
            raise ShardError(
                f"{self.root}: no plan has been submitted to this broker "
                "directory (run 'repro shard submit' first)")
        payload = _load_json(self._plan_path, "broker plan")
        return _parse_plan_header(payload, str(self._plan_path))

    # ------------------------------------------------------------------
    # the queue contract
    # ------------------------------------------------------------------
    def submit(self, plan: ShardPlan) -> None:
        if self._plan_path.exists():
            raise ShardError(
                f"{self._plan_path}: broker directory already holds a plan "
                "(one broker directory per plan; collect it or submit to a "
                "fresh directory)")
        for directory in (self.root, self._queued_dir, self._leased_dir,
                          self._done_dir):
            directory.mkdir(parents=True, exist_ok=True)
        # Header first: a directory with a header but no manifests reads as
        # a plan being enqueued; manifests without a header would read as
        # corruption.
        self._atomic_write_json(self._plan_path,
                                json.dumps(_plan_header_payload(plan),
                                           indent=1))
        for manifest in plan.manifests:
            name = plan.manifest_name(manifest.shard_index)
            self._atomic_write_json(self._queued_dir / name,
                                    json.dumps(manifest.as_dict(), indent=1))

    def _reclaim_expired(self) -> None:
        now_ms = int(self._clock() * 1000)
        for path in self._leased_dir.glob("*.lease.*"):
            name, _, rest = path.name.partition(".lease.")
            deadline_text, _, _worker = rest.partition(".")
            try:
                deadline_ms = int(deadline_text)
            except ValueError:
                raise ShardError(f"{path}: malformed lease filename (expected "
                                 "NAME.lease.<deadline_ms>.<worker>)")
            if now_ms >= deadline_ms:
                try:
                    path.rename(self._queued_dir / name)
                except FileNotFoundError:
                    pass  # another worker reclaimed it first

    def lease(self, worker_id: str) -> Optional[ShardLease]:
        self._identity()
        self._reclaim_expired()
        worker = _sanitize_worker_id(worker_id)
        for path in sorted(self._queued_dir.glob("shard-*.json")):
            if (self._done_dir / path.name).exists():
                # A straggler already posted this shard (its stale queued
                # copy survived a reclaim); don't pointlessly re-run it.
                path.unlink(missing_ok=True)
                continue
            deadline = self._clock() + self.lease_ttl
            target = self._leased_dir / (
                f"{path.name}.lease.{int(deadline * 1000)}.{worker}")
            try:
                path.rename(target)
            except FileNotFoundError:
                continue  # another worker won this manifest
            manifest = ShardManifest.load(target)
            return ShardLease(manifest=manifest, worker_id=worker_id,
                              deadline=deadline, token=target.name)
        return None

    def renew(self, lease: ShardLease) -> Optional[ShardLease]:
        # No _identity() re-read here: a ShardLease proves the plan was
        # already validated, and renew is the heartbeat hot path.
        held = self._leased_dir / lease.token
        name, _, rest = lease.token.partition(".lease.")
        _deadline_text, _, worker = rest.partition(".")
        deadline = self._clock() + self.lease_ttl
        target = self._leased_dir / (
            f"{name}.lease.{int(deadline * 1000)}.{worker}")
        try:
            held.rename(target)
        except FileNotFoundError:
            # The lease file is gone: reclaimed (now queued or re-leased
            # under a new name) or already posted.  Either way it is no
            # longer ours to extend.
            return None
        return replace(lease, deadline=deadline, token=target.name)

    def post(self, lease: ShardLease, results: ShardResults) -> bool:
        reference = self._identity()
        manifest = results.manifest
        _check_posted_results(reference, results,
                              source=f"{self.root}: posted results")
        name = shard_file_name(manifest.shard_index, manifest.shard_count)
        done_path = self._done_dir / name
        # First-write-wins must be atomic under concurrent posters (e.g. a
        # straggler racing the worker that reclaimed its lease): link() the
        # finished temp file into place — exactly one poster succeeds, the
        # rest get FileExistsError and report the duplicate.
        tmp = done_path.with_name(f".{done_path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(results.as_dict(), indent=1),
                       encoding="utf-8")
        try:
            os.link(tmp, done_path)
            first_post = True
        except FileExistsError:
            first_post = False
        finally:
            tmp.unlink(missing_ok=True)
        # Clear this shard out of the queue: our lease file, plus any queued
        # copy left behind if our lease expired and was reclaimed before we
        # finished (without this the shard would be pointlessly re-run).
        (self._leased_dir / lease.token).unlink(missing_ok=True)
        (self._queued_dir / name).unlink(missing_ok=True)
        return first_post

    def collect(self) -> List[ShardResults]:
        self._identity()
        collected = [ShardResults.load(path)
                     for path in sorted(self._done_dir.glob("shard-*.json"))]
        _emit_collected(telemetry.resolve(self.sink), collected)
        return collected

    def status(self) -> BrokerStatus:
        identity = self._identity()
        self._reclaim_expired()
        done_names = {path.name
                      for path in self._done_dir.glob("shard-*.json")}
        # A shard can transiently be both done and queued/leased (a
        # straggler posting after reclaim); done wins so counts add up.
        queued = sum(1 for path in self._queued_dir.glob("shard-*.json")
                     if path.name not in done_names)
        leased = sum(1 for path in self._leased_dir.glob("*.lease.*")
                     if path.name.partition(".lease.")[0] not in done_names)
        return BrokerStatus(queued=queued, leased=leased,
                            done=len(done_names), shard_count=int(identity[0]))


class ObjectStoreBroker(ShardBroker):
    """The queue contract over an :class:`~repro.bench.store.ObjectStore`.

    Keys under the store::

        plan.json                   the plan's identity header
                                    (``put_if_absent`` once by submit)
        manifest/<shard-name>       one immutable manifest JSON per shard
        lease/<shard-name>          one small mutable lease object per
                                    shard; every state transition is a
                                    compare-and-swap
        result/<shard-name>         posted ShardResults
                                    (``put_if_absent``: first write wins)

    A lease object is ``{"state": "queued"}``, ``{"state": "leased",
    "worker": …, "deadline_ms": …, "grant": …}`` or ``{"state": "done",
    …}``.  Leasing (including reclaiming an expired lease) is one CAS from
    the observed etag, so any number of workers race safely: exactly one
    swap wins, the losers observe a changed etag and move on.  ``grant``
    increments on every (re)lease and is embedded in the lease token, so a
    stale holder's :meth:`renew` can never pass for the current holder's.

    The set of ``result/`` keys is authoritative for doneness (the
    post-time CAS that flips the lease object to ``done`` is best-effort);
    like :class:`LocalDirBroker`, lease deadlines are wall-clock timestamps
    compared across machines, so keep worker clocks NTP-synced or size
    ``lease_ttl`` above the worst expected skew.
    """

    PLAN_KEY = "plan.json"
    MANIFEST_PREFIX = "manifest/"
    LEASE_PREFIX = "lease/"
    RESULT_PREFIX = "result/"
    _LEASE_STATES = ("queued", "leased", "done")

    def __init__(self, store: ObjectStore,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 clock: Clock = time.time,
                 sink: Optional[EventSink] = None) -> None:
        if lease_ttl <= 0:
            raise ShardError(f"lease_ttl must be > 0, got {lease_ttl}")
        self.store = store
        self.lease_ttl = lease_ttl
        self.sink = sink
        self._clock = clock

    # ------------------------------------------------------------------
    # store plumbing
    # ------------------------------------------------------------------
    def _source(self, key: str) -> str:
        return f"{self.store.describe()}: object {key!r}"

    def _get_json(self, key: str) -> Optional[Tuple[Dict[str, object], str]]:
        stored = self.store.get(key)
        if stored is None:
            return None
        data, etag = stored
        return _parse_json_bytes(data, self._source(key)), etag

    @staticmethod
    def _dump(payload: Dict[str, object]) -> bytes:
        return json.dumps(payload, indent=1).encode("utf-8")

    def _identity(self) -> Tuple[object, ...]:
        found = self._get_json(self.PLAN_KEY)
        if found is None:
            raise ShardError(
                f"{self.store.describe()}: no plan has been submitted to "
                "this object store (run 'repro shard submit' first)")
        return _parse_plan_header(found[0], self._source(self.PLAN_KEY))

    def _parse_lease_object(self, key: str,
                            payload: Dict[str, object]) -> str:
        state = _require_str(payload, "state", self._source(key))
        if state not in self._LEASE_STATES:
            raise ShardError(f"{self._source(key)}: field 'state' is "
                             f"{state!r}; expected one of "
                             f"{', '.join(map(repr, self._LEASE_STATES))}")
        return state

    def _load_manifest(self, name: str) -> ShardManifest:
        key = self.MANIFEST_PREFIX + name
        found = self._get_json(key)
        if found is None:
            raise ShardError(f"{self._source(key)}: missing manifest object "
                             "for an enqueued shard")
        return ShardManifest.from_dict(found[0], source=self._source(key))

    # ------------------------------------------------------------------
    # the queue contract
    # ------------------------------------------------------------------
    def submit(self, plan: ShardPlan) -> None:
        header = self._dump(_plan_header_payload(plan))
        # Header first (exactly one submitter can create it), mirroring
        # LocalDirBroker: a plan object with manifests still appearing
        # reads as a plan being enqueued.
        if not self.store.put_if_absent(self.PLAN_KEY, header):
            raise ShardError(
                f"{self.store.describe()}: object store already holds a "
                "plan (one store per plan; collect it or submit to a fresh "
                "store)")
        for manifest in plan.manifests:
            name = plan.manifest_name(manifest.shard_index)
            self.store.put_if_absent(self.MANIFEST_PREFIX + name,
                                     self._dump(manifest.as_dict()))
            self.store.put_if_absent(self.LEASE_PREFIX + name,
                                     self._dump({"state": "queued"}))

    def _done_names(self) -> set:
        return {key[len(self.RESULT_PREFIX):]
                for key in self.store.list_prefix(self.RESULT_PREFIX)}

    def lease(self, worker_id: str) -> Optional[ShardLease]:
        self._identity()
        done = self._done_names()
        now_ms = int(self._clock() * 1000)
        for key in self.store.list_prefix(self.LEASE_PREFIX):
            name = key[len(self.LEASE_PREFIX):]
            if name in done:
                continue
            found = self._get_json(key)
            if found is None:
                continue  # deleted under us; nothing to take
            payload, etag = found
            state = self._parse_lease_object(key, payload)
            if state == "done":
                continue
            if state == "leased":
                deadline_ms = _require_int(payload, "deadline_ms",
                                           self._source(key))
                if now_ms < deadline_ms:
                    continue  # a live peer holds it
                # else: expired — reclaim by CAS'ing it straight to ours.
            grant = (_require_int(payload, "grant", self._source(key)) + 1
                     if "grant" in payload else 1)
            deadline = self._clock() + self.lease_ttl
            claim = {"state": "leased", "worker": worker_id,
                     "deadline_ms": int(deadline * 1000), "grant": grant}
            if not self.store.put_if_match(key, self._dump(claim), etag):
                continue  # another worker swapped first; next shard
            return ShardLease(manifest=self._load_manifest(name),
                              worker_id=worker_id, deadline=deadline,
                              token=f"{name}:{grant}")
        return None

    def renew(self, lease: ShardLease) -> Optional[ShardLease]:
        # No _identity() re-read here: a ShardLease proves the plan was
        # already validated, and renew is the heartbeat hot path — one CAS
        # per tick, not an extra plan GET per tick.
        name, _, grant_text = lease.token.rpartition(":")
        key = self.LEASE_PREFIX + name
        found = self._get_json(key)
        if found is None:
            return None
        payload, etag = found
        state = self._parse_lease_object(key, payload)
        if state != "leased" or payload.get("grant") != int(grant_text):
            return None  # reclaimed (new grant) or already done
        deadline = self._clock() + self.lease_ttl
        renewed = dict(payload, deadline_ms=int(deadline * 1000))
        if not self.store.put_if_match(key, self._dump(renewed), etag):
            return None  # lost a race with a reclaimer: the lease is gone
        return replace(lease, deadline=deadline)

    def post(self, lease: ShardLease, results: ShardResults) -> bool:
        reference = self._identity()
        manifest = results.manifest
        _check_posted_results(
            reference, results,
            source=f"{self.store.describe()}: posted results")
        name = shard_file_name(manifest.shard_index, manifest.shard_count)
        first_post = self.store.put_if_absent(
            self.RESULT_PREFIX + name, self._dump(results.as_dict()))
        # Flip the lease object to done so nobody re-leases the shard.
        # Best-effort: result/ presence is what status/collect trust, so a
        # lost CAS race here costs at most one wasted re-run.
        key = self.LEASE_PREFIX + name
        for _ in range(8):
            found = self._get_json(key)
            if found is None:
                break
            payload, etag = found
            if self._parse_lease_object(key, payload) == "done":
                break
            done = {"state": "done", "worker": lease.worker_id,
                    "grant": payload.get("grant", 0)}
            if self.store.put_if_match(key, self._dump(done), etag):
                break
        return first_post

    def collect(self) -> List[ShardResults]:
        self._identity()
        collected = []
        for key in self.store.list_prefix(self.RESULT_PREFIX):
            found = self._get_json(key)
            if found is None:
                continue  # deleted mid-listing
            collected.append(ShardResults.from_dict(
                found[0], source=self._source(key)))
        _emit_collected(telemetry.resolve(self.sink), collected)
        return collected

    def status(self) -> BrokerStatus:
        identity = self._identity()
        done = self._done_names()
        now_ms = int(self._clock() * 1000)
        queued = leased = 0
        for key in self.store.list_prefix(self.LEASE_PREFIX):
            if key[len(self.LEASE_PREFIX):] in done:
                continue
            found = self._get_json(key)
            if found is None:
                continue
            payload, _etag = found
            state = self._parse_lease_object(key, payload)
            if state == "queued":
                queued += 1
            elif state == "leased":
                deadline_ms = _require_int(payload, "deadline_ms",
                                           self._source(key))
                if now_ms >= deadline_ms:
                    queued += 1  # expired: reclaimable, i.e. leasable
                else:
                    leased += 1
        return BrokerStatus(queued=queued, leased=leased, done=len(done),
                            shard_count=int(identity[0]))


# ----------------------------------------------------------------------
# the worker pull loop
# ----------------------------------------------------------------------
#: Called after each posted manifest with the lease, its results and a
#: fresh queue snapshot (drives the CLI's per-manifest status lines).
ManifestCallback = Callable[[ShardLease, ShardResults, BrokerStatus], None]

#: Called after each heartbeat renewal attempt with the lease and whether
#: the renewal succeeded (``False`` means the lease was lost — the worker
#: will abandon the manifest).  Runs on the heartbeat thread.
RenewCallback = Callable[[ShardLease, bool], None]


class LeaseHeartbeat:
    """Background renewal of one held lease, every ``interval`` seconds.

    Start it right after leasing, stop it right after the manifest run
    (before posting).  :attr:`lease` is the freshest handle — post with it,
    since some brokers re-token the lease on every renewal.  If a renewal
    reports the lease lost (reclaimed by a peer, or a broker error mid
    renew), :attr:`lost` latches ``True`` and the thread exits; the worker
    must then abandon the manifest instead of posting.
    """

    def __init__(self, broker: ShardBroker, lease: ShardLease,
                 interval: float,
                 on_renew: Optional[RenewCallback] = None,
                 sink: Optional[EventSink] = None) -> None:
        if not math.isfinite(interval) or interval <= 0:
            raise ShardError(f"heartbeat interval must be a finite number "
                             f"> 0, got {interval}")
        self.broker = broker
        self.interval = interval
        self.on_renew = on_renew
        self.sink = sink
        self._lease = lease
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._lost = threading.Event()
        self._thread = threading.Thread(
            target=self._run, daemon=True,
            name=f"lease-heartbeat-{lease.manifest.shard_index}")

    @property
    def lease(self) -> ShardLease:
        with self._lock:
            return self._lease

    @property
    def lost(self) -> bool:
        return self._lost.is_set()

    def start(self) -> "LeaseHeartbeat":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                renewed = self.broker.renew(self.lease)
            except (ShardError, OSError):
                # Transient broker trouble (a storage blip mid-renew) is
                # not proof the lease is gone: the ttl/3 cadence leaves
                # further chances before expiry, and a lease that really
                # was reclaimed shows up as renew() -> None next tick.
                continue
            sink = telemetry.resolve(self.sink)
            if renewed is None:
                self._lost.set()
                if sink:
                    lease = self.lease
                    sink.emit(LeaseLost(shard_index=lease.manifest.shard_index,
                                        worker_id=lease.worker_id))
                self._notify(self.lease, False)
                return
            with self._lock:
                self._lease = renewed
            if sink:
                sink.emit(LeaseRenewed(shard_index=renewed.manifest.shard_index,
                                       worker_id=renewed.worker_id))
            self._notify(renewed, True)

    def _notify(self, lease: ShardLease, renewed: bool) -> None:
        if self.on_renew is None:
            return
        try:
            self.on_renew(lease, renewed)
        except Exception:
            # A broken observer (e.g. a closed stderr pipe) must not kill
            # the renewal thread — the lease staying alive is the point.
            pass


class ShardWorker:
    """Pull loop: lease → heartbeat + execute → post, until the queue drains.

    ``poll`` is the *maximum* sleep between queue checks while other
    workers still hold leases (their lease may expire and become ours to
    reclaim): idle polling backs off exponentially with jitter from
    :data:`IDLE_BACKOFF_BASE` up to ``min(poll, IDLE_BACKOFF_CAP)``, so
    hundreds of idle workers don't hammer one store with ``list_prefix``
    calls in lock-step.  With ``poll=0`` the worker exits as soon as
    nothing is leasable.  ``max_manifests`` caps how many manifests this
    worker will execute.

    ``heartbeat`` is the seconds between background lease renewals while a
    manifest runs: ``None`` (the default) derives ``lease_ttl / 3`` from
    the broker, ``0`` disables heartbeats (the PR-3 behaviour: the lease
    must outlive the manifest on its own).  A heartbeat that discovers its
    lease was reclaimed makes the worker *abandon* the manifest — results
    are discarded unposted, since the reclaiming peer reproduces the same
    bytes — and move on to the next lease.  ``on_renew`` observes every
    renewal (note it fires on the heartbeat thread).
    """

    def __init__(self, broker: ShardBroker,
                 executor: Optional[ManifestExecutor] = None,
                 worker_id: Optional[str] = None, poll: float = 1.0,
                 max_manifests: Optional[int] = None,
                 heartbeat: Optional[float] = None,
                 on_renew: Optional[RenewCallback] = None,
                 sleep: Callable[[float], None] = time.sleep,
                 sink: Optional[EventSink] = None) -> None:
        if not math.isfinite(poll) or poll < 0:
            raise ShardError(f"poll must be a finite number >= 0, got {poll}")
        if max_manifests is not None and max_manifests < 1:
            raise ShardError(f"max_manifests must be >= 1, got {max_manifests}")
        lease_ttl = getattr(broker, "lease_ttl", None)
        if heartbeat is None:
            heartbeat = (lease_ttl / DEFAULT_HEARTBEAT_FRACTION
                         if lease_ttl else 0.0)
        if not math.isfinite(heartbeat) or heartbeat < 0:
            raise ShardError(f"heartbeat must be a finite number >= 0, "
                             f"got {heartbeat}")
        if heartbeat and lease_ttl is not None and heartbeat >= lease_ttl:
            raise ShardError(
                f"heartbeat ({heartbeat}) must be shorter than the broker's "
                f"lease_ttl ({lease_ttl}), or the lease can expire between "
                "renewals")
        self.broker = broker
        self.executor = executor or ManifestExecutor()
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.poll = poll
        self.max_manifests = max_manifests
        self.heartbeat = heartbeat
        self.on_renew = on_renew
        self.sink = sink
        #: Manifests whose lease was lost mid-run and were dropped unposted.
        self.abandoned = 0
        self._sleep = sleep
        #: Jitter source for idle backoff, seeded from the worker id so a
        #: test fleet's sleep schedule is reproducible while real fleets
        #: (unique hostname-pid ids) still decorrelate.
        self._backoff_rng = random.Random(f"idle-backoff:{self.worker_id}")

    def run(self, progress: Optional[ProgressCallback] = None,
            on_manifest: Optional[ManifestCallback] = None) -> List[ShardResults]:
        """Drain the queue; returns the results this worker posted.

        ``max_manifests`` counts *executions* (posted or abandoned), so the
        cap bounds this worker's compute even under lease churn.
        """
        completed: List[ShardResults] = []
        executed = 0
        idle_streak = 0
        while self.max_manifests is None or executed < self.max_manifests:
            sink = telemetry.resolve(self.sink)
            lease = self.broker.lease(self.worker_id)
            if lease is None:
                snapshot = self.broker.status()
                if snapshot.queued > 0:
                    continue  # lost a lease race; try again immediately
                if snapshot.leased == 0 or self.poll <= 0:
                    break  # drained (or not polling for reclaims)
                self._idle_sleep(idle_streak, sink)
                idle_streak += 1
                continue
            idle_streak = 0
            if sink:
                sink.emit(LeaseAcquired(
                    shard_index=lease.manifest.shard_index,
                    worker_id=self.worker_id))
            beat = None
            if self.heartbeat > 0:
                beat = LeaseHeartbeat(self.broker, lease, self.heartbeat,
                                      on_renew=self.on_renew,
                                      sink=self.sink).start()
            try:
                results = self.executor.run(lease.manifest, progress=progress)
            finally:
                if beat is not None:
                    beat.stop()
            executed += 1
            if beat is not None:
                if beat.lost:
                    # Reclaimed out from under us: a peer owns the shard
                    # and will post identical bytes.  Drop ours unposted.
                    self.abandoned += 1
                    if sink:
                        sink.emit(ManifestAbandoned(
                            shard_index=lease.manifest.shard_index,
                            worker_id=self.worker_id))
                    continue
                lease = beat.lease  # renewals may have re-tokened it
            first_post = self.broker.post(lease, results)
            completed.append(results)
            if sink:
                sink.emit(ShardPosted(
                    shard_index=lease.manifest.shard_index,
                    worker_id=self.worker_id, results=len(results.results),
                    first_post=first_post))
            if on_manifest is not None:
                on_manifest(lease, results, self.broker.status())
        return completed

    def _idle_sleep(self, streak: int, sink: EventSink) -> None:
        """One backoff sleep: ``base * 2^streak`` jittered, capped by
        ``min(poll, IDLE_BACKOFF_CAP)``."""
        cap = min(self.poll, IDLE_BACKOFF_CAP)
        delay = min(cap, IDLE_BACKOFF_BASE * (2.0 ** min(streak, 32)))
        # Jitter into [0.5, 1.0) of the nominal delay so a fleet of workers
        # that went idle together doesn't re-poll in lock-step.
        delay *= 0.5 + 0.5 * self._backoff_rng.random()
        if sink:
            sink.emit(WorkerIdle(worker_id=self.worker_id, slept_s=delay,
                                 streak=streak))
        self._sleep(delay)
