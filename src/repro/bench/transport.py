"""Remote shard transport: a multi-tenant broker/worker queue over manifests.

PR 2's shard pipeline (:mod:`repro.bench.shard`) is file-bound: an operator
hand-carries manifest JSONs to machines and collects results back.  This
module turns it into a deploy-anywhere work queue with three roles:

coordinator
    :meth:`ShardBroker.submit` enqueues every manifest of a
    :class:`~repro.bench.shard.ShardPlan` under a *plan name* (namespace);
    one broker holds any number of named plans concurrently.
    :meth:`ShardBroker.status` reports per-plan and aggregate
    queued/leased/done counts (:class:`BrokerStatus` over
    :class:`PlanStatus` rows) while workers run;
    :meth:`ShardBroker.collect` gathers one named plan's posted
    :class:`~repro.bench.shard.ShardResults`, which feed straight into
    :func:`~repro.bench.shard.merge_shard_results` so all of PR 2's
    plan-identity validation applies unchanged.  Single-plan callers that
    never pass a name land in the reserved ``"default"`` namespace.
worker
    :class:`ShardWorker` is a pull loop: lease a manifest (from whichever
    plan fair-share picks), run it through a
    :class:`~repro.bench.shard.ManifestExecutor` (inheriting ``jobs`` and
    the :class:`~repro.dmi.cache.ArtifactCache`), post the results, repeat.
    It exits when every plan drains — unless running as a persistent
    *daemon* (``daemon=True`` / ``repro shard work --daemon``), in which
    case it survives drain, keeps idle-polling with backoff, and picks up
    newly submitted plans without a restart; ``stop()``/SIGTERM or
    ``max_idle_s`` shut it down cleanly.
broker
    :class:`LocalDirBroker` implements the queue on a shared (NFS-style)
    directory using only atomic renames (one subtree per plan under
    ``plans/<name>/``), so any number of workers on any number of machines
    can race for leases without locks; leases expire after ``lease_ttl``
    seconds and are reclaimed, so a crashed worker's manifest is re-run by
    a peer.  :class:`ObjectStoreBroker` implements the same contract over
    any :class:`~repro.bench.store.ObjectStore` (S3-style conditional
    writes; the plan name is folded into the ``manifest/``, ``lease/`` and
    ``result/`` key layout, with one index object per plan under
    ``plans/``), making the queue deployable against cloud storage.
    :class:`InMemoryBroker` implements the contract in-process for tests.

Leasing is *fair-share with priority* across live plans: each broker
handle round-robins over the plans that currently have leasable work
(least-served first, then higher ``priority``, then deeper queue, then
name), so one huge grid cannot starve a small one — the conformance suite
(``tests/broker_contract.py``) asserts interleaving and namespace
isolation over every backend.

Leases are kept alive by *heartbeats*: :meth:`ShardBroker.renew` extends a
lease the caller still holds (and reports loss if it was reclaimed), and
:class:`ShardWorker` runs a background :class:`LeaseHeartbeat` thread per
manifest (interval ``lease_ttl / 3`` by default), so a manifest that takes
longer than ``lease_ttl`` finishes without being reclaimed — ``lease_ttl``
can stay sized for crash *detection* instead of worst-case runtime.  A
worker whose heartbeat discovers the lease was reclaimed abandons the
manifest without posting; the peer that reclaimed it reproduces the same
bytes.

Because every trial is deterministically seeded, re-running a reclaimed
manifest (or double-posting one) reproduces the same
:class:`~repro.agent.session.SessionResult` payloads, which is what makes
first-write-wins result posting and lease reclaim safe: the merged output
stays bit-identical to a serial run no matter how work was dealt out (the
equivalence harness in ``tests/equivalence.py`` asserts exactly this, per
plan, including two plans sharing one broker).
"""

from __future__ import annotations

import json
import math
import os
import random
import re
import socket
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.bench.shard import (
    MANIFEST_FORMAT_VERSION,
    PLAN_IDENTITY_LABELS,
    ManifestExecutor,
    ShardError,
    ShardManifest,
    ShardPlan,
    ShardResults,
    _check_header,
    _load_json,
    _parse_json_bytes,
    _require,
    _require_int,
    _require_str,
    _require_str_tuple,
    check_plan_identity,
    shard_file_name,
)
from repro.bench.engine import ProgressCallback
from repro.bench.observe import trace as tracectx
from repro.bench.store import ObjectStore, RetryPolicy, call_with_retries
from repro.bench import telemetry
from repro.bench.telemetry import (
    EventSink,
    LeaseAcquired,
    LeaseLost,
    LeaseRenewed,
    ManifestAbandoned,
    PlanDrained,
    PlanSubmitted,
    QueueDepth,
    ShardCollected,
    ShardPosted,
    WorkerIdle,
)

#: Seconds a lease stays valid before any worker may reclaim the manifest.
#: Generous by default: reclaim exists for crashed workers, not slow ones
#: (and heartbeats keep live leases fresh regardless of manifest runtime).
DEFAULT_LEASE_TTL = 900.0

#: Fraction of ``lease_ttl`` between heartbeat renewals when no explicit
#: interval is configured: three chances to renew before the lease expires.
DEFAULT_HEARTBEAT_FRACTION = 3.0

#: First idle-poll sleep of a :class:`ShardWorker`'s exponential backoff;
#: doubles per consecutive empty poll, so a worker that just lost a lease
#: race re-checks quickly but an idle fleet quiets down fast.
IDLE_BACKOFF_BASE = 0.05

#: Hard ceiling on one idle-poll sleep regardless of how high ``--poll``
#: is set — crashed-peer reclaim latency stays bounded.
IDLE_BACKOFF_CAP = 30.0

#: The namespace single-plan callers land in when they never pass a name.
DEFAULT_PLAN = "default"

_PLAN_KIND = "repro-broker-plan"

_PLAN_NAME_RE = re.compile(r"[A-Za-z0-9_.-]+")

#: Typed loaders for the plan-header fields, keyed by identity label; any
#: label without an entry falls back to the untyped ``_require``, so a new
#: ``plan_identity()`` field flows through submit/parse without edits here.
_IDENTITY_PARSERS: Dict[str, Callable] = {
    "shard_count": _require_int,
    "seed": _require_int,
    "trials": _require_int,
    "fingerprint": _require_str,
    "setting_keys": _require_str_tuple,
    "task_ids": _require_str_tuple,
}

Clock = Callable[[], float]


def validate_plan_name(name: str) -> str:
    """A plan name safe to embed in directory paths and object keys.

    Same character policy as worker-id sanitizing (letters, digits,
    ``_``, ``.``, ``-``) but *rejecting* instead of rewriting — a plan
    name is an identity the coordinator and collectors must agree on, so
    silently normalizing it would route results to a surprise namespace.
    """
    if (not isinstance(name, str) or not name or name == "."
            or ".." in name or _PLAN_NAME_RE.fullmatch(name) is None):
        raise ShardError(
            f"invalid plan name {name!r}: plan names must be non-empty, "
            "use only letters, digits, '_', '.' and '-' (no '/'), and "
            "never contain '..'")
    return name


def _check_priority(priority: int) -> int:
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise ShardError(f"plan priority must be an integer, "
                         f"got {priority!r}")
    return priority


def _check_submittable(plan: ShardPlan) -> ShardPlan:
    """Reject degenerate plans at the queue boundary (all backends).

    ``plan_shards`` never emits empty shards, but manifests are plain data
    and can be rebuilt by hand (or by over-sharding a ramping generated
    grid); an empty-spec manifest would enqueue a work unit that executes
    nothing yet still participates in plan identity and merge accounting.
    Rejecting here keeps the submit → lease → post → collect pipeline free
    of no-op shards on every backend at once.
    """
    if not getattr(plan, "manifests", ()):
        raise ShardError("cannot submit an empty plan (no manifests); "
                         "plan a non-empty grid first")
    for manifest in plan.manifests:
        if not manifest.specs:
            raise ShardError(
                f"cannot submit shard {manifest.shard_index} of "
                f"{manifest.shard_count}: it carries no trial specs "
                "(every submitted shard must hold at least one spec; "
                "re-plan with fewer shards)")
    return plan


def _plan_header_payload(plan: ShardPlan, name: str,
                         priority: int) -> Dict[str, object]:
    """The submitted plan's identity header, shared by all broker backends."""
    header: Dict[str, object] = {
        "kind": _PLAN_KIND,
        "format_version": MANIFEST_FORMAT_VERSION,
        "plan": name,
        "priority": priority,
    }
    # Derived from the identity tuple itself so the header can never drift
    # from plan_identity()'s field set.
    for label, value in zip(PLAN_IDENTITY_LABELS,
                            plan.manifests[0].plan_identity()):
        header[label] = list(value) if isinstance(value, tuple) else value
    return header


def _parse_plan_header(payload: Dict[str, object],
                       source: str) -> Tuple[object, ...]:
    """Validate a plan header payload into a ``plan_identity()`` tuple."""
    _check_header(payload, _PLAN_KIND, source)
    return tuple(_IDENTITY_PARSERS.get(label, _require)(payload, label,
                                                        source)
                 for label in PLAN_IDENTITY_LABELS)


def _plan_priority(payload: Dict[str, object], source: str) -> int:
    """The header's priority field (headers from PR 3/4 predate it)."""
    if "priority" not in payload:
        return 0
    return _require_int(payload, "priority", source)


def _check_posted_results(reference: Tuple[object, ...],
                          results: ShardResults, source: str) -> None:
    """Posted results must carry a manifest of this plan, in index range."""
    manifest = results.manifest
    check_plan_identity(reference, manifest,
                        source=f"{source} for shard {manifest.shard_index}")
    if not 0 <= manifest.shard_index < manifest.shard_count:
        raise ShardError(f"{source} carry shard index "
                         f"{manifest.shard_index}, out of range for a "
                         f"{manifest.shard_count}-shard plan")


def _emit_collected(sink: EventSink, collected: List[ShardResults],
                    plan: str) -> None:
    """One :class:`~repro.bench.telemetry.ShardCollected` per gathered shard,
    each stamped as a ``collect`` span in the shard's trace (parented to
    the plan's submit span, so a trial timeline ends with its collect)."""
    if sink:
        for shard in collected:
            ctx = tracectx.shard_context(plan, shard.manifest, "collect")
            sink.emit(ctx.attach(
                ShardCollected(shard_index=shard.manifest.shard_index)))


@dataclass(frozen=True)
class PlanStatus:
    """One named plan's queue counters (one snapshot, not a live view)."""

    name: str
    priority: int
    queued: int
    leased: int
    done: int
    shard_count: int

    @property
    def complete(self) -> bool:
        return self.done >= self.shard_count

    @property
    def drained(self) -> bool:
        """No work left to lease *or* in flight (done or abandoned)."""
        return self.queued == 0 and self.leased == 0

    def render_line(self) -> str:
        return (f"{self.done}/{self.shard_count} done "
                f"({self.queued} queued, {self.leased} leased)")

    def as_dict(self) -> Dict[str, object]:
        return {"priority": self.priority, "queued": self.queued,
                "leased": self.leased, "done": self.done,
                "shard_count": self.shard_count, "complete": self.complete}


@dataclass(frozen=True)
class BrokerStatus:
    """Coordinator-side queue counters: per-plan rows plus aggregates.

    The aggregate properties (``queued``/``leased``/``done``/
    ``shard_count``) sum over every plan the broker holds, so drain checks
    ("is there anything left to do *anywhere*?") read the same as they did
    when a broker held exactly one plan.
    """

    plans: Tuple[PlanStatus, ...] = ()

    @property
    def queued(self) -> int:
        return sum(plan.queued for plan in self.plans)

    @property
    def leased(self) -> int:
        return sum(plan.leased for plan in self.plans)

    @property
    def done(self) -> int:
        return sum(plan.done for plan in self.plans)

    @property
    def shard_count(self) -> int:
        return sum(plan.shard_count for plan in self.plans)

    @property
    def complete(self) -> bool:
        return self.done >= self.shard_count

    @property
    def drained(self) -> bool:
        """No work left to lease *or* in flight (done or abandoned)."""
        return self.queued == 0 and self.leased == 0

    def plan(self, name: str) -> Optional[PlanStatus]:
        for plan in self.plans:
            if plan.name == name:
                return plan
        return None

    def render_line(self) -> str:
        """The one-line aggregate (worker/collect progress messages)."""
        return (f"{self.done}/{self.shard_count} done "
                f"({self.queued} queued, {self.leased} leased)")

    def render(self) -> str:
        """The per-plan table ``repro shard status`` / ``fleet status`` print."""
        if not self.plans:
            return "no plans submitted"
        width = max(24, max(len(plan.name) for plan in self.plans))
        header = (f"{'plan':<{width}s} {'pri':>4s} {'queued':>7s} "
                  f"{'leased':>7s} {'done':>6s} {'shards':>7s}")
        lines = [header, "-" * len(header)]
        for plan in self.plans:
            lines.append(f"{plan.name:<{width}s} {plan.priority:>4d} "
                         f"{plan.queued:>7d} {plan.leased:>7d} "
                         f"{plan.done:>6d} {plan.shard_count:>7d}")
        if len(self.plans) > 1:
            lines.append(f"{'(all plans)':<{width}s} {'-':>4s} "
                         f"{self.queued:>7d} {self.leased:>7d} "
                         f"{self.done:>6d} {self.shard_count:>7d}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "plans": {plan.name: plan.as_dict() for plan in self.plans},
            "aggregate": {"queued": self.queued, "leased": self.leased,
                          "done": self.done, "shard_count": self.shard_count,
                          "complete": self.complete},
        }


@dataclass(frozen=True)
class ShardLease:
    """One leased manifest: the work order plus the lease bookkeeping.

    ``plan`` names the namespace the manifest came from (posts route back
    to it); ``token`` is backend-specific (the lease filename for
    :class:`LocalDirBroker`); ``deadline`` is in the broker clock's units —
    after it passes any worker may reclaim the manifest.
    """

    manifest: ShardManifest
    worker_id: str
    deadline: float
    token: str
    plan: str = DEFAULT_PLAN


class ShardBroker(ABC):
    """The queue contract: submit named plans, lease manifests, post results.

    One broker holds any number of *named* plans (namespaces); submitting
    without a name uses the reserved ``"default"`` namespace, so
    single-plan callers read exactly as they did when a broker held one
    plan.  Results never cross namespaces: :meth:`collect` takes a name
    and returns only that plan's shards.

    All brokers share first-write-wins semantics on results: posting a
    shard that is already done is an idempotent no-op (results are
    deterministic, so the copies are interchangeable), which makes both
    duplicate posts and post-reclaim stragglers harmless.
    """

    @abstractmethod
    def submit(self, plan: ShardPlan, name: str = DEFAULT_PLAN,
               priority: int = 0) -> None:
        """Enqueue every manifest of ``plan`` under ``name``.

        One plan per name: resubmitting an occupied name raises.  Higher
        ``priority`` plans win lease-order ties against equally-served
        peers.
        """

    @abstractmethod
    def lease(self, worker_id: str) -> Optional[ShardLease]:
        """Atomically take one queued manifest, or ``None`` if none is free.

        Plans are tried in fair-share order (round-robin per handle,
        ``priority`` then queue depth as tiebreaks) and the returned lease
        is tagged with its plan name.  Expired leases are reclaimed first,
        so a crashed worker's manifest becomes leasable again after
        ``lease_ttl`` seconds.  A broker holding no plans at all is simply
        empty (``None``), so daemon workers may start before the first
        submit.
        """

    @abstractmethod
    def renew(self, lease: ShardLease) -> Optional[ShardLease]:
        """Extend a still-held lease by ``lease_ttl`` from now.

        Returns the refreshed :class:`ShardLease` (post with *that* handle
        from then on), or ``None`` if the lease is no longer held — it
        expired and was reclaimed, or its shard is already done.  A ``None``
        tells the worker to abandon the manifest: a peer owns it now and
        will reproduce the same bytes.
        """

    @abstractmethod
    def post(self, lease: ShardLease, results: ShardResults) -> bool:
        """Post one shard's results; returns ``False`` on a duplicate post."""

    @abstractmethod
    def collect(self, name: str = DEFAULT_PLAN) -> List[ShardResults]:
        """One plan's posted results, in shard-index order.

        Feed the list to :func:`~repro.bench.shard.merge_shard_results`,
        which (re)validates completeness and plan identity.  Collecting a
        name that was never submitted raises.
        """

    @abstractmethod
    def status(self) -> BrokerStatus:
        """Per-plan + aggregate counters for progress and drain checks."""

    # ------------------------------------------------------------------
    # fair-share rotation (shared by every backend)
    # ------------------------------------------------------------------
    def _fair_share_order(
            self, candidates: Sequence[Tuple[str, int, int]]) -> List[str]:
        """Order plans for the next lease attempt.

        ``candidates`` is ``(name, priority, queued_depth)`` for every
        plan with leasable work.  Least-served (by this handle) goes
        first — plain round-robin, so a 1000-shard plan and a 3-shard plan
        alternate leases instead of the small one waiting out the big one —
        with higher ``priority``, deeper queue, then name breaking ties.
        Served counts are per broker handle, not shared state: every
        worker process rotates fairly on its own, which yields fleet-level
        fairness without cross-worker coordination.
        """
        served = getattr(self, "_fair_share_served", None)
        if served is None:
            served = {}
            self._fair_share_served = served
        ordered = sorted(
            candidates,
            key=lambda c: (served.get(c[0], 0), -c[1], -c[2], c[0]))
        return [name for name, _priority, _depth in ordered]

    def _fair_share_mark(self, name: str) -> None:
        self._fair_share_served[name] = \
            self._fair_share_served.get(name, 0) + 1

    # ------------------------------------------------------------------
    # shared telemetry (all backends have a ``sink`` attribute)
    # ------------------------------------------------------------------
    def _emit_plan_submitted(self, name: str, plan: ShardPlan,
                             priority: int) -> None:
        sink = telemetry.resolve(self.sink)
        if sink:
            ctx = tracectx.plan_context(name, plan.manifests[0])
            sink.emit(ctx.attach(PlanSubmitted(
                plan=name, shards=plan.shard_count, priority=priority)))

    def _emit_plan_drained(self, name: str, manifest: ShardManifest,
                           shards: int) -> None:
        sink = telemetry.resolve(self.sink)
        if sink:
            ctx = tracectx.plan_context(name, manifest).child("drained")
            sink.emit(ctx.attach(PlanDrained(plan=name, shards=shards)))


class _MemoryPlanState:
    """One named plan's queue state inside :class:`InMemoryBroker`."""

    def __init__(self, name: str, priority: int, plan: ShardPlan) -> None:
        self.name = name
        self.priority = priority
        self.identity = plan.manifests[0].plan_identity()
        self.shard_count = plan.shard_count
        self.grants = 0
        self.queued: Dict[int, ShardManifest] = {
            manifest.shard_index: manifest for manifest in plan.manifests}
        self.leases: Dict[int, ShardLease] = {}
        self.done: Dict[int, ShardResults] = {}


class InMemoryBroker(ShardBroker):
    """The queue contract over plain dicts, for tests and single-process use.

    A lock serializes every operation: the worker's heartbeat thread renews
    leases concurrently with the main thread's lease/post calls.
    """

    def __init__(self, lease_ttl: float = DEFAULT_LEASE_TTL,
                 clock: Clock = time.monotonic,
                 sink: Optional[EventSink] = None) -> None:
        if lease_ttl <= 0:
            raise ShardError(f"lease_ttl must be > 0, got {lease_ttl}")
        self.lease_ttl = lease_ttl
        self.sink = sink
        self._clock = clock
        self._lock = threading.Lock()
        self._plans: Dict[str, _MemoryPlanState] = {}

    def _require_plan(self, name: str) -> _MemoryPlanState:
        state = self._plans.get(name)
        if state is None:
            known = ", ".join(sorted(self._plans)) or "none"
            raise ShardError(f"no plan has been submitted to this broker "
                             f"under the name {name!r} (known plans: "
                             f"{known})")
        return state

    def _reclaim_expired(self, state: _MemoryPlanState) -> None:
        now = self._clock()
        for index, lease in list(state.leases.items()):
            if now >= lease.deadline:
                del state.leases[index]
                state.queued[index] = lease.manifest

    def submit(self, plan: ShardPlan, name: str = DEFAULT_PLAN,
               priority: int = 0) -> None:
        name = validate_plan_name(name)
        _check_priority(priority)
        _check_submittable(plan)
        with self._lock:
            if name in self._plans:
                raise ShardError(f"broker already holds a plan named "
                                 f"{name!r}; collect it or pick another "
                                 "plan name")
            self._plans[name] = _MemoryPlanState(name, priority, plan)
        self._emit_plan_submitted(name, plan, priority)

    def lease(self, worker_id: str) -> Optional[ShardLease]:
        with self._lock:
            for state in self._plans.values():
                self._reclaim_expired(state)
            candidates = [(state.name, state.priority, len(state.queued))
                          for state in self._plans.values() if state.queued]
            for name in self._fair_share_order(candidates):
                state = self._plans[name]
                index = min(state.queued)
                manifest = state.queued.pop(index)
                # The grant number makes every lease token unique, so a
                # renew by the original holder after reclaim + re-lease
                # cannot pass for the new holder's renewal.
                state.grants += 1
                lease = ShardLease(manifest=manifest, worker_id=worker_id,
                                   deadline=self._clock() + self.lease_ttl,
                                   token=f"{index}:{state.grants}",
                                   plan=name)
                state.leases[index] = lease
                self._fair_share_mark(name)
                return lease
            return None

    def renew(self, lease: ShardLease) -> Optional[ShardLease]:
        with self._lock:
            state = self._plans.get(lease.plan)
            if state is None:
                return None
            index = lease.manifest.shard_index
            current = state.leases.get(index)
            if current is None or current.token != lease.token:
                return None  # expired + reclaimed, or already posted
            refreshed = replace(current,
                                deadline=self._clock() + self.lease_ttl)
            state.leases[index] = refreshed
            return refreshed

    def post(self, lease: ShardLease, results: ShardResults) -> bool:
        with self._lock:
            state = self._require_plan(lease.plan)
            index = results.manifest.shard_index
            _check_posted_results(state.identity, results,
                                  source="posted results")
            state.leases.pop(index, None)
            state.queued.pop(index, None)
            if index in state.done:
                return False
            state.done[index] = results
            drained = len(state.done) >= state.shard_count
        if drained:
            self._emit_plan_drained(lease.plan, lease.manifest,
                                    state.shard_count)
        return True

    def collect(self, name: str = DEFAULT_PLAN) -> List[ShardResults]:
        validate_plan_name(name)
        with self._lock:
            state = self._require_plan(name)
            collected = [state.done[index] for index in sorted(state.done)]
        _emit_collected(telemetry.resolve(self.sink), collected, name)
        return collected

    def status(self) -> BrokerStatus:
        with self._lock:
            rows = []
            for name in sorted(self._plans):
                state = self._plans[name]
                self._reclaim_expired(state)
                rows.append(PlanStatus(name=name, priority=state.priority,
                                       queued=len(state.queued),
                                       leased=len(state.leases),
                                       done=len(state.done),
                                       shard_count=state.shard_count))
            return BrokerStatus(plans=tuple(rows))


def _sanitize_worker_id(worker_id: str) -> str:
    return re.sub(r"[^\w.-]", "-", worker_id) or "worker"


class LocalDirBroker(ShardBroker):
    """The queue contract over a shared directory, using only atomic renames.

    Layout under ``root`` (one subtree per named plan)::

        plans/<name>/plan.json   the plan's identity header + name/priority
                                 (written once by submit)
        plans/<name>/queued/     manifests waiting for a worker
        plans/<name>/leased/     manifests being worked on; the lease
                                 deadline and worker id are encoded in the
                                 filename
                                 (``NAME.lease.<deadline_ms>.<worker>``)
        plans/<name>/done/       posted ShardResults files, one per shard

    Every state transition is a single ``rename`` (atomic on POSIX, also
    over NFS), so concurrent workers race safely: exactly one wins each
    lease, the losers see ``FileNotFoundError`` and move on.  Files are
    written to a temp name first and renamed into place, so readers never
    observe a half-written JSON.

    Lease deadlines are wall-clock timestamps taken on the *leasing*
    machine and compared on whichever machine reclaims, so cross-machine
    clock skew shifts the effective TTL by the skew: a fast reclaimer
    reclaims early (the manifest is re-run — wasteful but still correct,
    posts are idempotent), a slow one delays crashed-worker recovery.
    Keep worker clocks NTP-synced, or size ``lease_ttl`` well above the
    worst expected skew.

    ``skew_allowance`` is that sizing made explicit: reclaim treats a
    lease as expired only ``skew_allowance`` seconds *after* its persisted
    wall-clock deadline, so a reclaimer whose clock runs ahead by up to
    the allowance never steals a live peer's lease.  The allowance is a
    per-handle grace on top of ``lease_ttl`` (it delays crash recovery by
    the same amount) — deadlines in lease filenames stay plain wall-clock
    milliseconds, readable by any handle with any allowance.
    """

    PLAN_FILE = "plan.json"
    PLANS_DIR = "plans"

    def __init__(self, root: Union[str, Path],
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 clock: Clock = time.time,
                 sink: Optional[EventSink] = None,
                 skew_allowance: float = 0.0) -> None:
        if lease_ttl <= 0:
            raise ShardError(f"lease_ttl must be > 0, got {lease_ttl}")
        if not math.isfinite(skew_allowance) or skew_allowance < 0:
            raise ShardError(f"skew_allowance must be a finite number >= 0, "
                             f"got {skew_allowance}")
        self.root = Path(root)
        self.lease_ttl = lease_ttl
        self.skew_allowance = skew_allowance
        self.sink = sink
        self._clock = clock
        self._skew_ms = int(skew_allowance * 1000)

    # ------------------------------------------------------------------
    # directory plumbing
    # ------------------------------------------------------------------
    def _plan_root(self, name: str) -> Path:
        return self.root / self.PLANS_DIR / name

    def _plan_path(self, name: str) -> Path:
        return self._plan_root(name) / self.PLAN_FILE

    def _queued_dir(self, name: str) -> Path:
        return self._plan_root(name) / "queued"

    def _leased_dir(self, name: str) -> Path:
        return self._plan_root(name) / "leased"

    def _done_dir(self, name: str) -> Path:
        return self._plan_root(name) / "done"

    def plan_names(self) -> Tuple[str, ...]:
        base = self.root / self.PLANS_DIR
        if not base.is_dir():
            return ()
        return tuple(sorted(entry.name for entry in base.iterdir()
                            if (entry / self.PLAN_FILE).exists()))

    def _atomic_write_json(self, path: Path, text: str) -> None:
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(text, encoding="utf-8")
        tmp.replace(path)

    def _header(self, name: str) -> Dict[str, object]:
        path = self._plan_path(name)
        if not path.exists():
            known = ", ".join(self.plan_names()) or "none"
            raise ShardError(
                f"{self.root}: no plan has been submitted to this broker "
                f"directory under the name {name!r} (run 'repro shard "
                f"submit' first; known plans: {known})")
        return _load_json(path, "broker plan")

    def _identity(self, name: str) -> Tuple[object, ...]:
        """Load and validate one plan's header; its reference identity."""
        return _parse_plan_header(self._header(name),
                                  str(self._plan_path(name)))

    # ------------------------------------------------------------------
    # the queue contract
    # ------------------------------------------------------------------
    def submit(self, plan: ShardPlan, name: str = DEFAULT_PLAN,
               priority: int = 0) -> None:
        name = validate_plan_name(name)
        _check_priority(priority)
        _check_submittable(plan)
        if self._plan_path(name).exists():
            raise ShardError(
                f"{self._plan_path(name)}: broker directory already holds "
                f"a plan named {name!r} (collect it or pick another plan "
                "name)")
        for directory in (self._plan_root(name), self._queued_dir(name),
                          self._leased_dir(name), self._done_dir(name)):
            directory.mkdir(parents=True, exist_ok=True)
        # Header first: a subtree with a header but no manifests reads as
        # a plan being enqueued; manifests without a header would read as
        # corruption.
        self._atomic_write_json(
            self._plan_path(name),
            json.dumps(_plan_header_payload(plan, name, priority), indent=1))
        for manifest in plan.manifests:
            file_name = plan.manifest_name(manifest.shard_index)
            self._atomic_write_json(self._queued_dir(name) / file_name,
                                    json.dumps(manifest.as_dict(), indent=1))
        self._emit_plan_submitted(name, plan, priority)

    def _reclaim_expired(self, name: str) -> None:
        now_ms = int(self._clock() * 1000)
        for path in self._leased_dir(name).glob("*.lease.*"):
            file_name, _, rest = path.name.partition(".lease.")
            deadline_text, _, _worker = rest.partition(".")
            try:
                deadline_ms = int(deadline_text)
            except ValueError:
                raise ShardError(f"{path}: malformed lease filename (expected "
                                 "NAME.lease.<deadline_ms>.<worker>)")
            if now_ms >= deadline_ms + self._skew_ms:
                try:
                    path.rename(self._queued_dir(name) / file_name)
                except FileNotFoundError:
                    pass  # another worker reclaimed it first

    def lease(self, worker_id: str) -> Optional[ShardLease]:
        candidates = []
        for name in self.plan_names():
            self._reclaim_expired(name)
            depth = sum(1 for _ in self._queued_dir(name).glob("shard-*.json"))
            if depth == 0:
                continue
            priority = _plan_priority(self._header(name),
                                      str(self._plan_path(name)))
            candidates.append((name, priority, depth))
        for name in self._fair_share_order(candidates):
            lease = self._lease_from_plan(name, worker_id)
            if lease is not None:
                self._fair_share_mark(name)
                return lease
        return None

    def _lease_from_plan(self, name: str,
                         worker_id: str) -> Optional[ShardLease]:
        worker = _sanitize_worker_id(worker_id)
        for path in sorted(self._queued_dir(name).glob("shard-*.json")):
            if (self._done_dir(name) / path.name).exists():
                # A straggler already posted this shard (its stale queued
                # copy survived a reclaim); don't pointlessly re-run it.
                path.unlink(missing_ok=True)
                continue
            deadline = self._clock() + self.lease_ttl
            target = self._leased_dir(name) / (
                f"{path.name}.lease.{int(deadline * 1000)}.{worker}")
            try:
                path.rename(target)
            except FileNotFoundError:
                continue  # another worker won this manifest
            manifest = ShardManifest.load(target)
            return ShardLease(manifest=manifest, worker_id=worker_id,
                              deadline=deadline, token=target.name,
                              plan=name)
        return None

    def renew(self, lease: ShardLease) -> Optional[ShardLease]:
        # No _identity() re-read here: a ShardLease proves the plan was
        # already validated, and renew is the heartbeat hot path.
        held = self._leased_dir(lease.plan) / lease.token
        file_name, _, rest = lease.token.partition(".lease.")
        _deadline_text, _, worker = rest.partition(".")
        deadline = self._clock() + self.lease_ttl
        target = self._leased_dir(lease.plan) / (
            f"{file_name}.lease.{int(deadline * 1000)}.{worker}")
        try:
            held.rename(target)
        except FileNotFoundError:
            # The lease file is gone: reclaimed (now queued or re-leased
            # under a new name) or already posted.  Either way it is no
            # longer ours to extend.
            return None
        return replace(lease, deadline=deadline, token=target.name)

    def post(self, lease: ShardLease, results: ShardResults) -> bool:
        plan = lease.plan
        reference = self._identity(plan)
        manifest = results.manifest
        _check_posted_results(reference, results,
                              source=f"{self.root}: posted results")
        file_name = shard_file_name(manifest.shard_index,
                                    manifest.shard_count)
        done_path = self._done_dir(plan) / file_name
        # First-write-wins must be atomic under concurrent posters (e.g. a
        # straggler racing the worker that reclaimed its lease): link() the
        # finished temp file into place — exactly one poster succeeds, the
        # rest get FileExistsError and report the duplicate.
        tmp = done_path.with_name(f".{done_path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(results.as_dict(), indent=1),
                       encoding="utf-8")
        try:
            os.link(tmp, done_path)
            first_post = True
        except FileExistsError:
            first_post = False
        finally:
            tmp.unlink(missing_ok=True)
        # Clear this shard out of the queue: our lease file, plus any queued
        # copy left behind if our lease expired and was reclaimed before we
        # finished (without this the shard would be pointlessly re-run).
        (self._leased_dir(plan) / lease.token).unlink(missing_ok=True)
        (self._queued_dir(plan) / file_name).unlink(missing_ok=True)
        if first_post:
            done = sum(1 for _ in self._done_dir(plan).glob("shard-*.json"))
            if done >= manifest.shard_count:
                self._emit_plan_drained(plan, manifest, manifest.shard_count)
        return first_post

    def collect(self, name: str = DEFAULT_PLAN) -> List[ShardResults]:
        validate_plan_name(name)
        self._identity(name)
        collected = [
            ShardResults.load(path)
            for path in sorted(self._done_dir(name).glob("shard-*.json"))]
        _emit_collected(telemetry.resolve(self.sink), collected, name)
        return collected

    def status(self) -> BrokerStatus:
        rows = []
        for name in self.plan_names():
            header = self._header(name)
            source = str(self._plan_path(name))
            identity = _parse_plan_header(header, source)
            self._reclaim_expired(name)
            done_names = {path.name
                          for path in self._done_dir(name).glob(
                              "shard-*.json")}
            # A shard can transiently be both done and queued/leased (a
            # straggler posting after reclaim); done wins so counts add up.
            queued = sum(
                1 for path in self._queued_dir(name).glob("shard-*.json")
                if path.name not in done_names)
            leased = sum(
                1 for path in self._leased_dir(name).glob("*.lease.*")
                if path.name.partition(".lease.")[0] not in done_names)
            rows.append(PlanStatus(name=name,
                                   priority=_plan_priority(header, source),
                                   queued=queued, leased=leased,
                                   done=len(done_names),
                                   shard_count=int(identity[0])))
        return BrokerStatus(plans=tuple(rows))


class ObjectStoreBroker(ShardBroker):
    """The queue contract over an :class:`~repro.bench.store.ObjectStore`.

    Keys under the store (the plan name is folded into every prefix)::

        plans/<name>                the plan's identity header + priority
                                    (``put_if_absent`` once by submit);
                                    listing ``plans/`` is the plan index
        manifest/<name>/<shard>     one immutable manifest JSON per shard
        lease/<name>/<shard>        one small mutable lease object per
                                    shard; every state transition is a
                                    compare-and-swap
        result/<name>/<shard>       posted ShardResults
                                    (``put_if_absent``: first write wins)

    A lease object is ``{"state": "queued"}``, ``{"state": "leased",
    "worker": …, "deadline_ms": …, "grant": …}`` or ``{"state": "done",
    …}``.  Leasing (including reclaiming an expired lease) is one CAS from
    the observed etag, so any number of workers race safely: exactly one
    swap wins, the losers observe a changed etag and move on.  ``grant``
    increments on every (re)lease and is embedded in the lease token, so a
    stale holder's :meth:`renew` can never pass for the current holder's.

    The set of ``result/<name>/`` keys is authoritative for doneness (the
    post-time CAS that flips the lease object to ``done`` is best-effort);
    like :class:`LocalDirBroker`, lease deadlines are wall-clock timestamps
    compared across machines, so keep worker clocks NTP-synced or size
    ``lease_ttl`` above the worst expected skew — or state the worst skew
    as ``skew_allowance`` and expiry checks grant that much extra life to
    every persisted deadline (never stealing a live peer's lease at the
    cost of equally delayed crash recovery).

    Every store call is wrapped in bounded retry-with-backoff (``retry``, a
    :class:`~repro.bench.store.RetryPolicy`): a
    :class:`~repro.bench.store.TransientStoreError` — a cloud 5xx, a
    throttle, an injected chaos fault — is absorbed up to the budget
    (each absorbed attempt emits a ``store_retry`` telemetry event) and
    only then surfaces as a labeled
    :class:`~repro.bench.store.RetryBudgetExceeded`.  Semantic failures
    (lost CAS races, missing objects) are *results*, not errors, and are
    never retried here.
    """

    PLANS_PREFIX = "plans/"
    MANIFEST_PREFIX = "manifest/"
    LEASE_PREFIX = "lease/"
    RESULT_PREFIX = "result/"
    _LEASE_STATES = ("queued", "leased", "done")

    def __init__(self, store: ObjectStore,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 clock: Clock = time.time,
                 sink: Optional[EventSink] = None,
                 retry: Optional[RetryPolicy] = None,
                 skew_allowance: float = 0.0) -> None:
        if lease_ttl <= 0:
            raise ShardError(f"lease_ttl must be > 0, got {lease_ttl}")
        if not math.isfinite(skew_allowance) or skew_allowance < 0:
            raise ShardError(f"skew_allowance must be a finite number >= 0, "
                             f"got {skew_allowance}")
        self.store = store
        self.lease_ttl = lease_ttl
        self.skew_allowance = skew_allowance
        self.sink = sink
        self.retry = retry if retry is not None else RetryPolicy()
        self._clock = clock
        self._skew_ms = int(skew_allowance * 1000)

    # ------------------------------------------------------------------
    # store plumbing
    # ------------------------------------------------------------------
    def _source(self, key: str) -> str:
        return f"{self.store.describe()}: object {key!r}"

    def _store_call(self, op: str, key: str, fn):
        return call_with_retries(fn, op=op, key=key, policy=self.retry,
                                 sink=self.sink)

    def _get_json(self, key: str) -> Optional[Tuple[Dict[str, object], str]]:
        stored = self._store_call("get", key, lambda: self.store.get(key))
        if stored is None:
            return None
        data, etag = stored
        return _parse_json_bytes(data, self._source(key)), etag

    @staticmethod
    def _dump(payload: Dict[str, object]) -> bytes:
        return json.dumps(payload, indent=1).encode("utf-8")

    def _plan_key(self, name: str) -> str:
        return self.PLANS_PREFIX + name

    def _manifest_prefix(self, name: str) -> str:
        return f"{self.MANIFEST_PREFIX}{name}/"

    def _lease_prefix(self, name: str) -> str:
        return f"{self.LEASE_PREFIX}{name}/"

    def _result_prefix(self, name: str) -> str:
        return f"{self.RESULT_PREFIX}{name}/"

    def plan_names(self) -> Tuple[str, ...]:
        return tuple(sorted(
            key[len(self.PLANS_PREFIX):]
            for key in self._list(self.PLANS_PREFIX)))

    def _list(self, prefix: str) -> List[str]:
        return self._store_call("list_prefix", prefix,
                                lambda: self.store.list_prefix(prefix))

    def _put_if_absent(self, key: str, data: bytes) -> bool:
        # Retrying a conditional put is safe-by-design here: both writes
        # are content-deterministic, so if an earlier attempt actually
        # landed before its error surfaced, the retry's False reads the
        # same as losing to a peer who wrote identical bytes.
        return self._store_call(
            "put_if_absent", key,
            lambda: self.store.put_if_absent(key, data))

    def _put_if_match(self, key: str, data: bytes, etag: str) -> bool:
        return self._store_call(
            "put_if_match", key,
            lambda: self.store.put_if_match(key, data, etag))

    def _header(self, name: str) -> Dict[str, object]:
        found = self._get_json(self._plan_key(name))
        if found is None:
            known = ", ".join(self.plan_names()) or "none"
            raise ShardError(
                f"{self.store.describe()}: no plan has been submitted to "
                f"this object store under the name {name!r} (run 'repro "
                f"shard submit' first; known plans: {known})")
        return found[0]

    def _identity(self, name: str) -> Tuple[object, ...]:
        return _parse_plan_header(self._header(name),
                                  self._source(self._plan_key(name)))

    def _parse_lease_object(self, key: str,
                            payload: Dict[str, object]) -> str:
        state = _require_str(payload, "state", self._source(key))
        if state not in self._LEASE_STATES:
            raise ShardError(f"{self._source(key)}: field 'state' is "
                             f"{state!r}; expected one of "
                             f"{', '.join(map(repr, self._LEASE_STATES))}")
        return state

    def _load_manifest(self, name: str, file_name: str) -> ShardManifest:
        key = self._manifest_prefix(name) + file_name
        found = self._get_json(key)
        if found is None:
            raise ShardError(f"{self._source(key)}: missing manifest object "
                             "for an enqueued shard")
        return ShardManifest.from_dict(found[0], source=self._source(key))

    def _done_names(self, name: str) -> set:
        prefix = self._result_prefix(name)
        return {key[len(prefix):] for key in self._list(prefix)}

    # ------------------------------------------------------------------
    # the queue contract
    # ------------------------------------------------------------------
    def submit(self, plan: ShardPlan, name: str = DEFAULT_PLAN,
               priority: int = 0) -> None:
        name = validate_plan_name(name)
        _check_priority(priority)
        _check_submittable(plan)
        header = self._dump(_plan_header_payload(plan, name, priority))
        # Header first (exactly one submitter can create it), mirroring
        # LocalDirBroker: a plan object with manifests still appearing
        # reads as a plan being enqueued.
        if not self._put_if_absent(self._plan_key(name), header):
            raise ShardError(
                f"{self.store.describe()}: object store already holds a "
                f"plan named {name!r} (collect it or pick another plan "
                "name)")
        for manifest in plan.manifests:
            file_name = plan.manifest_name(manifest.shard_index)
            self._put_if_absent(self._manifest_prefix(name) + file_name,
                                self._dump(manifest.as_dict()))
            self._put_if_absent(self._lease_prefix(name) + file_name,
                                self._dump({"state": "queued"}))
        self._emit_plan_submitted(name, plan, priority)

    def lease(self, worker_id: str) -> Optional[ShardLease]:
        candidates = []
        for name in self.plan_names():
            # Depth = lease objects whose shard has no result yet: queued
            # work plus in-flight/expired leases.  One list per prefix —
            # cheaper than a per-shard GET sweep, and only a tiebreak.
            depth = (len(self._list(self._lease_prefix(name)))
                     - len(self._list(self._result_prefix(name))))
            if depth <= 0:
                continue
            priority = _plan_priority(self._header(name),
                                      self._source(self._plan_key(name)))
            candidates.append((name, priority, depth))
        for name in self._fair_share_order(candidates):
            lease = self._lease_from_plan(name, worker_id)
            if lease is not None:
                self._fair_share_mark(name)
                return lease
        return None

    def _lease_from_plan(self, name: str,
                         worker_id: str) -> Optional[ShardLease]:
        done = self._done_names(name)
        now_ms = int(self._clock() * 1000)
        prefix = self._lease_prefix(name)
        for key in self._list(prefix):
            file_name = key[len(prefix):]
            if file_name in done:
                continue
            found = self._get_json(key)
            if found is None:
                continue  # deleted under us; nothing to take
            payload, etag = found
            state = self._parse_lease_object(key, payload)
            if state == "done":
                continue
            if state == "leased":
                deadline_ms = _require_int(payload, "deadline_ms",
                                           self._source(key))
                if now_ms < deadline_ms + self._skew_ms:
                    continue  # a live peer holds it (within skew grace)
                # else: expired — reclaim by CAS'ing it straight to ours.
            grant = (_require_int(payload, "grant", self._source(key)) + 1
                     if "grant" in payload else 1)
            deadline = self._clock() + self.lease_ttl
            claim = {"state": "leased", "worker": worker_id,
                     "deadline_ms": int(deadline * 1000), "grant": grant}
            if not self._put_if_match(key, self._dump(claim), etag):
                continue  # another worker swapped first; next shard
            return ShardLease(manifest=self._load_manifest(name, file_name),
                              worker_id=worker_id, deadline=deadline,
                              token=f"{file_name}:{grant}", plan=name)
        return None

    def renew(self, lease: ShardLease) -> Optional[ShardLease]:
        # No _identity() re-read here: a ShardLease proves the plan was
        # already validated, and renew is the heartbeat hot path — one CAS
        # per tick, not an extra plan GET per tick.
        file_name, _, grant_text = lease.token.rpartition(":")
        key = self._lease_prefix(lease.plan) + file_name
        found = self._get_json(key)
        if found is None:
            return None
        payload, etag = found
        state = self._parse_lease_object(key, payload)
        if state != "leased" or payload.get("grant") != int(grant_text):
            return None  # reclaimed (new grant) or already done
        deadline = self._clock() + self.lease_ttl
        renewed = dict(payload, deadline_ms=int(deadline * 1000))
        if not self._put_if_match(key, self._dump(renewed), etag):
            return None  # lost a race with a reclaimer: the lease is gone
        return replace(lease, deadline=deadline)

    def post(self, lease: ShardLease, results: ShardResults) -> bool:
        name = lease.plan
        reference = self._identity(name)
        manifest = results.manifest
        _check_posted_results(
            reference, results,
            source=f"{self.store.describe()}: posted results")
        file_name = shard_file_name(manifest.shard_index,
                                    manifest.shard_count)
        first_post = self._put_if_absent(
            self._result_prefix(name) + file_name,
            self._dump(results.as_dict()))
        # Flip the lease object to done so nobody re-leases the shard.
        # Best-effort: result/ presence is what status/collect trust, so a
        # lost CAS race here costs at most one wasted re-run.
        key = self._lease_prefix(name) + file_name
        for _ in range(8):
            found = self._get_json(key)
            if found is None:
                break
            payload, etag = found
            if self._parse_lease_object(key, payload) == "done":
                break
            done = {"state": "done", "worker": lease.worker_id,
                    "grant": payload.get("grant", 0)}
            if self._put_if_match(key, self._dump(done), etag):
                break
        if first_post \
                and len(self._done_names(name)) >= manifest.shard_count:
            self._emit_plan_drained(name, manifest, manifest.shard_count)
        return first_post

    def collect(self, name: str = DEFAULT_PLAN) -> List[ShardResults]:
        validate_plan_name(name)
        self._identity(name)
        collected = []
        for key in self._list(self._result_prefix(name)):
            found = self._get_json(key)
            if found is None:
                continue  # deleted mid-listing
            collected.append(ShardResults.from_dict(
                found[0], source=self._source(key)))
        _emit_collected(telemetry.resolve(self.sink), collected, name)
        return collected

    def status(self) -> BrokerStatus:
        rows = []
        now_ms = int(self._clock() * 1000)
        for name in self.plan_names():
            header = self._header(name)
            source = self._source(self._plan_key(name))
            identity = _parse_plan_header(header, source)
            done = self._done_names(name)
            queued = leased = 0
            prefix = self._lease_prefix(name)
            for key in self._list(prefix):
                if key[len(prefix):] in done:
                    continue
                found = self._get_json(key)
                if found is None:
                    continue
                payload, _etag = found
                state = self._parse_lease_object(key, payload)
                if state == "queued":
                    queued += 1
                elif state == "leased":
                    deadline_ms = _require_int(payload, "deadline_ms",
                                               self._source(key))
                    if now_ms >= deadline_ms + self._skew_ms:
                        queued += 1  # expired: reclaimable, i.e. leasable
                    else:
                        leased += 1
            rows.append(PlanStatus(name=name,
                                   priority=_plan_priority(header, source),
                                   queued=queued, leased=leased,
                                   done=len(done),
                                   shard_count=int(identity[0])))
        return BrokerStatus(plans=tuple(rows))


# ----------------------------------------------------------------------
# the worker pull loop
# ----------------------------------------------------------------------
#: Called after each posted manifest with the lease, its results and a
#: fresh queue snapshot (drives the CLI's per-manifest status lines).
ManifestCallback = Callable[[ShardLease, ShardResults, BrokerStatus], None]

#: Called after each heartbeat renewal attempt with the lease and whether
#: the renewal succeeded (``False`` means the lease was lost — the worker
#: will abandon the manifest).  Runs on the heartbeat thread.
RenewCallback = Callable[[ShardLease, bool], None]


class LeaseHeartbeat:
    """Background renewal of one held lease, every ``interval`` seconds.

    Start it right after leasing, stop it right after the manifest run
    (before posting).  :attr:`lease` is the freshest handle — post with it,
    since some brokers re-token the lease on every renewal.  If a renewal
    reports the lease lost (reclaimed by a peer, or a broker error mid
    renew), :attr:`lost` latches ``True`` and the thread exits; the worker
    must then abandon the manifest instead of posting.
    """

    def __init__(self, broker: ShardBroker, lease: ShardLease,
                 interval: float,
                 on_renew: Optional[RenewCallback] = None,
                 sink: Optional[EventSink] = None,
                 context: Optional[tracectx.SpanContext] = None) -> None:
        if not math.isfinite(interval) or interval <= 0:
            raise ShardError(f"heartbeat interval must be a finite number "
                             f"> 0, got {interval}")
        self.broker = broker
        self.interval = interval
        self.on_renew = on_renew
        self.sink = sink
        #: The worker's lease span, passed explicitly because the renewal
        #: thread cannot see the worker thread's ambient (thread-local)
        #: context.  Renewal/lost events become its child spans.
        self.context = context
        self._renewals = 0
        self._lease = lease
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._lost = threading.Event()
        self._thread = threading.Thread(
            target=self._run, daemon=True,
            name=f"lease-heartbeat-{lease.manifest.shard_index}")

    @property
    def lease(self) -> ShardLease:
        with self._lock:
            return self._lease

    @property
    def lost(self) -> bool:
        return self._lost.is_set()

    def start(self) -> "LeaseHeartbeat":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                renewed = self.broker.renew(self.lease)
            except (ShardError, OSError):
                # Transient broker trouble (a storage blip mid-renew) is
                # not proof the lease is gone: the ttl/3 cadence leaves
                # further chances before expiry, and a lease that really
                # was reclaimed shows up as renew() -> None next tick.
                continue
            sink = telemetry.resolve(self.sink)
            if renewed is None:
                self._lost.set()
                if sink:
                    lease = self.lease
                    event = LeaseLost(shard_index=lease.manifest.shard_index,
                                      worker_id=lease.worker_id)
                    if self.context is not None:
                        event = self.context.child(
                            "lease_lost", lease.token).attach(event)
                    sink.emit(event)
                self._notify(self.lease, False)
                return
            with self._lock:
                self._lease = renewed
            if sink:
                self._renewals += 1
                event = LeaseRenewed(shard_index=renewed.manifest.shard_index,
                                     worker_id=renewed.worker_id)
                if self.context is not None:
                    event = self.context.child(
                        "lease_renewed", self._renewals).attach(event)
                sink.emit(event)
            self._notify(renewed, True)

    def _notify(self, lease: ShardLease, renewed: bool) -> None:
        if self.on_renew is None:
            return
        try:
            self.on_renew(lease, renewed)
        except Exception:
            # A broken observer (e.g. a closed stderr pipe) must not kill
            # the renewal thread — the lease staying alive is the point.
            pass


#: The cache counters a worker tracks per plan (subset of
#: ``ArtifactCache.stats()`` that is numeric and monotonic).
_CACHE_COUNTERS = ("hits", "misses", "evictions")


class ShardWorker:
    """Pull loop: lease → heartbeat + execute → post, until the queue drains.

    ``poll`` is the *maximum* sleep between queue checks while other
    workers still hold leases (their lease may expire and become ours to
    reclaim): idle polling backs off exponentially with jitter from
    :data:`IDLE_BACKOFF_BASE` up to ``min(poll, IDLE_BACKOFF_CAP)``, so
    hundreds of idle workers don't hammer one store with ``list_prefix``
    calls in lock-step.  With ``poll=0`` the worker exits as soon as
    nothing is leasable.  ``max_manifests`` caps how many manifests this
    worker will execute.

    ``daemon=True`` makes the worker *persistent*: instead of exiting when
    every plan drains, it keeps idle-polling (same backoff) and picks up
    newly submitted plans without a restart — the always-on fleet shape.
    A daemon exits when :meth:`stop` is called (the CLI wires SIGTERM and
    SIGINT to it, so shutdown is clean: the in-flight manifest finishes
    and posts first) or when it has been continuously idle for
    ``max_idle_s`` seconds.  Because drain is no longer an exit
    condition, a daemon requires ``poll > 0``.

    ``heartbeat`` is the seconds between background lease renewals while a
    manifest runs: ``None`` (the default) derives ``lease_ttl / 3`` from
    the broker, ``0`` disables heartbeats (the PR-3 behaviour: the lease
    must outlive the manifest on its own).  A heartbeat that discovers its
    lease was reclaimed makes the worker *abandon* the manifest — results
    are discarded unposted, since the reclaiming peer reproduces the same
    bytes — and move on to the next lease.  ``on_renew`` observes every
    renewal (note it fires on the heartbeat thread).

    In-process deadlines (idle backoff, ``max_idle_s``) are measured on
    ``time.monotonic`` — a wall-clock step can't cut an idle daemon's
    patience short or stretch it forever; only the *persisted* lease
    deadlines brokers compare across processes are wall-clock.  The loop's
    own broker verbs (lease/status/post) run under bounded retry
    (``retry``), so a transient broker blip mid-loop is absorbed instead
    of killing the worker.

    After (or during) a run, :attr:`results_by_plan` groups this worker's
    posted results by plan name, and :attr:`cache_stats_by_plan` holds the
    worker-lifetime :class:`~repro.dmi.cache.ArtifactCache` deltas
    (hits/misses/evictions) attributed to each plan's manifests.
    """

    def __init__(self, broker: ShardBroker,
                 executor: Optional[ManifestExecutor] = None,
                 worker_id: Optional[str] = None, poll: float = 1.0,
                 max_manifests: Optional[int] = None,
                 heartbeat: Optional[float] = None,
                 on_renew: Optional[RenewCallback] = None,
                 sleep: Optional[Callable[[float], None]] = None,
                 sink: Optional[EventSink] = None,
                 daemon: bool = False,
                 max_idle_s: Optional[float] = None,
                 clock: Clock = time.monotonic,
                 retry: Optional[RetryPolicy] = None) -> None:
        if not math.isfinite(poll) or poll < 0:
            raise ShardError(f"poll must be a finite number >= 0, got {poll}")
        if daemon and poll <= 0:
            raise ShardError(
                "a daemon worker requires poll > 0: poll=0 means 'exit as "
                "soon as nothing is leasable', which contradicts daemon "
                "mode's survive-drain contract")
        if max_idle_s is not None and (not math.isfinite(max_idle_s)
                                       or max_idle_s <= 0):
            raise ShardError(f"max_idle_s must be a finite number > 0, "
                             f"got {max_idle_s}")
        if max_manifests is not None and max_manifests < 1:
            raise ShardError(f"max_manifests must be >= 1, got {max_manifests}")
        lease_ttl = getattr(broker, "lease_ttl", None)
        if heartbeat is None:
            heartbeat = (lease_ttl / DEFAULT_HEARTBEAT_FRACTION
                         if lease_ttl else 0.0)
        if not math.isfinite(heartbeat) or heartbeat < 0:
            raise ShardError(f"heartbeat must be a finite number >= 0, "
                             f"got {heartbeat}")
        if heartbeat and lease_ttl is not None and heartbeat >= lease_ttl:
            raise ShardError(
                f"heartbeat ({heartbeat}) must be shorter than the broker's "
                f"lease_ttl ({lease_ttl}), or the lease can expire between "
                "renewals")
        self.broker = broker
        self.executor = executor or ManifestExecutor()
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.poll = poll
        self.max_manifests = max_manifests
        self.heartbeat = heartbeat
        self.on_renew = on_renew
        self.sink = sink
        self.daemon = daemon
        self.max_idle_s = max_idle_s
        #: Manifests whose lease was lost mid-run and were dropped unposted.
        self.abandoned = 0
        #: Posted results grouped by the plan each manifest came from.
        self.results_by_plan: Dict[str, List[ShardResults]] = {}
        #: Worker-lifetime ArtifactCache deltas attributed per plan.
        self.cache_stats_by_plan: Dict[str, Dict[str, int]] = {}
        self._clock = clock
        self._stop = threading.Event()
        # None → sleep on the stop event, so stop()/SIGTERM interrupts an
        # idle daemon immediately instead of after a full backoff sleep.
        self._sleep = sleep
        #: Jitter source for idle backoff, seeded from the worker id so a
        #: test fleet's sleep schedule is reproducible while real fleets
        #: (unique hostname-pid ids) still decorrelate.
        self._backoff_rng = random.Random(f"idle-backoff:{self.worker_id}")
        #: Bounded retry for the loop's own broker verbs (lease/status/
        #: post): a transient broker failure mid-loop is backed off and
        #: repeated instead of killing the worker.  Backoff sleeps on the
        #: stop event so stop()/SIGTERM interrupts a waiting retry too.
        self.retry = retry if retry is not None else RetryPolicy(
            sleep=self._stop.wait, seed=f"worker:{self.worker_id}")

    def stop(self) -> None:
        """Ask the worker to exit cleanly: the current manifest finishes
        and posts, then :meth:`run` returns (idle sleeps are interrupted).
        Safe to call from any thread or a signal handler."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def _broker_call(self, op: str, key: str, fn):
        return call_with_retries(fn, op=op, key=key, policy=self.retry,
                                 sink=self.sink)

    def run(self, progress: Optional[ProgressCallback] = None,
            on_manifest: Optional[ManifestCallback] = None) -> List[ShardResults]:
        """Drain the queue (or serve forever in daemon mode); returns the
        results this worker posted.

        ``max_manifests`` counts *executions* (posted or abandoned), so the
        cap bounds this worker's compute even under lease churn.
        """
        completed: List[ShardResults] = []
        executed = 0
        idle_streak = 0
        idle_since: Optional[float] = None
        while not self._stop.is_set() and (self.max_manifests is None
                                           or executed < self.max_manifests):
            sink = telemetry.resolve(self.sink)
            lease_started = time.perf_counter() if sink else 0.0
            lease = self._broker_call("lease", self.worker_id,
                                      lambda: self.broker.lease(self.worker_id))
            if lease is None:
                snapshot = self._broker_call("status", self.worker_id,
                                             self.broker.status)
                self._emit_queue_depth(sink, snapshot)
                if snapshot.queued > 0:
                    continue  # lost a lease race; try again immediately
                if not self.daemon and (snapshot.leased == 0
                                        or self.poll <= 0):
                    break  # drained (or not polling for reclaims)
                now = self._clock()
                if idle_since is None:
                    idle_since = now
                if self.max_idle_s is not None \
                        and now - idle_since >= self.max_idle_s:
                    break  # daemon idle timeout
                self._idle_sleep(idle_streak, sink)
                idle_streak += 1
                continue
            idle_streak = 0
            idle_since = None
            # The shard's lease span: the worker-side root everything this
            # manifest does hangs off (trial spans, renewals, the post).
            # Qualified by the lease token so re-leases after churn are
            # distinct spans, and parented to the plan's submit span.
            ctx = None
            if sink:
                ctx = tracectx.shard_context(lease.plan, lease.manifest,
                                             "lease", qualifier=lease.token)
                sink.emit(ctx.attach(
                    LeaseAcquired(shard_index=lease.manifest.shard_index,
                                  worker_id=self.worker_id),
                    duration_s=time.perf_counter() - lease_started))
            beat = None
            if self.heartbeat > 0:
                beat = LeaseHeartbeat(self.broker, lease, self.heartbeat,
                                      on_renew=self.on_renew,
                                      sink=self.sink, context=ctx).start()
            stats_before = self.executor.cache_stats()
            try:
                if ctx is not None:
                    tracectx.push(ctx)
                results = self.executor.run(lease.manifest, progress=progress)
            finally:
                if ctx is not None:
                    tracectx.pop(ctx)
                if beat is not None:
                    beat.stop()
            executed += 1
            self._account_cache(lease.plan, stats_before)
            if beat is not None:
                if beat.lost:
                    # Reclaimed out from under us: a peer owns the shard
                    # and will post identical bytes.  Drop ours unposted.
                    self.abandoned += 1
                    if sink:
                        sink.emit(ctx.child("abandon", lease.token).attach(
                            ManifestAbandoned(
                                shard_index=lease.manifest.shard_index,
                                worker_id=self.worker_id)))
                    continue
                lease = beat.lease  # renewals may have re-tokened it
            posted = lease
            post_ctx = None
            post_started = 0.0
            if ctx is not None:
                # A dedicated post span is pushed around the broker call so
                # store retries inside the post attach to it — a chaos
                # schedule's bite is then visible in the trial's timeline.
                post_ctx = ctx.child("post", posted.token)
                tracectx.push(post_ctx)
                post_started = time.perf_counter()
            try:
                first_post = self._broker_call(
                    "post", posted.token,
                    lambda: self.broker.post(posted, results))
            finally:
                if post_ctx is not None:
                    tracectx.pop(post_ctx)
            completed.append(results)
            self.results_by_plan.setdefault(lease.plan, []).append(results)
            if sink:
                sink.emit(post_ctx.attach(
                    ShardPosted(shard_index=lease.manifest.shard_index,
                                worker_id=self.worker_id,
                                results=len(results.results),
                                first_post=first_post),
                    duration_s=time.perf_counter() - post_started))
            if on_manifest is not None or sink:
                snapshot = self._broker_call("status", self.worker_id,
                                             self.broker.status)
                self._emit_queue_depth(sink, snapshot)
                if on_manifest is not None:
                    on_manifest(lease, results, snapshot)
        return completed

    def _account_cache(self, plan: str,
                       before: Optional[Dict[str, object]]) -> None:
        """Attribute the executor cache's counter movement to ``plan``."""
        after = self.executor.cache_stats()
        if after is None:
            return
        bucket = self.cache_stats_by_plan.setdefault(
            plan, {key: 0 for key in _CACHE_COUNTERS})
        for key in _CACHE_COUNTERS:
            start = before.get(key, 0) if before else 0
            bucket[key] += int(after.get(key, 0)) - int(start)

    def _emit_queue_depth(self, sink: EventSink,
                          snapshot: BrokerStatus) -> None:
        if not sink:
            return
        for plan in snapshot.plans:
            # A wall-clock ts (no trace — queue depth is fleet state, not
            # part of any one trial) so aggregators can window drain rates.
            sink.emit(tracectx.leaf(QueueDepth(
                plan=plan.name, queued=plan.queued,
                leased=plan.leased, done=plan.done)))

    def _idle_sleep(self, streak: int, sink: EventSink) -> None:
        """One backoff sleep: ``base * 2^streak`` jittered, capped by
        ``min(poll, IDLE_BACKOFF_CAP)``."""
        cap = min(self.poll, IDLE_BACKOFF_CAP)
        delay = min(cap, IDLE_BACKOFF_BASE * (2.0 ** min(streak, 32)))
        # Jitter into [0.5, 1.0) of the nominal delay so a fleet of workers
        # that went idle together doesn't re-poll in lock-step.
        delay *= 0.5 + 0.5 * self._backoff_rng.random()
        if sink:
            sink.emit(tracectx.leaf(WorkerIdle(
                worker_id=self.worker_id, slept_s=delay, streak=streak)))
        if self._sleep is not None:
            self._sleep(delay)
        else:
            self._stop.wait(delay)
