"""Remote shard transport: a broker/worker queue over shard manifests.

PR 2's shard pipeline (:mod:`repro.bench.shard`) is file-bound: an operator
hand-carries manifest JSONs to machines and collects results back.  This
module turns it into a deploy-anywhere work queue with three roles:

coordinator
    :meth:`ShardBroker.submit` enqueues every manifest of a
    :class:`~repro.bench.shard.ShardPlan` on a broker;
    :meth:`ShardBroker.status` reports queued/leased/done counts
    (:class:`BrokerStatus`) while workers run; :meth:`ShardBroker.collect`
    gathers the posted :class:`~repro.bench.shard.ShardResults`, which feed
    straight into :func:`~repro.bench.shard.merge_shard_results` so all of
    PR 2's plan-identity validation applies unchanged.
worker
    :class:`ShardWorker` is a pull loop: lease a manifest, run it through a
    :class:`~repro.bench.shard.ManifestExecutor` (inheriting ``jobs`` and
    the :class:`~repro.dmi.cache.ArtifactCache`), post the results, repeat;
    it exits when the queue drains.
broker
    :class:`LocalDirBroker` implements the queue on a shared (NFS-style)
    directory using only atomic renames, so any number of workers on any
    number of machines can race for leases without locks; leases expire
    after ``lease_ttl`` seconds and are reclaimed, so a crashed worker's
    manifest is re-run by a peer.  :class:`InMemoryBroker` implements the
    same contract in-process for tests.

Because every trial is deterministically seeded, re-running a reclaimed
manifest (or double-posting one) reproduces the same
:class:`~repro.agent.session.SessionResult` payloads, which is what makes
first-write-wins result posting and lease reclaim safe: the merged output
stays bit-identical to a serial run no matter how work was dealt out (the
equivalence harness in ``tests/equivalence.py`` asserts exactly this).
"""

from __future__ import annotations

import json
import math
import os
import re
import socket
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.bench.shard import (
    MANIFEST_FORMAT_VERSION,
    PLAN_IDENTITY_LABELS,
    ManifestExecutor,
    ShardError,
    ShardManifest,
    ShardPlan,
    ShardResults,
    _check_header,
    _load_json,
    _require,
    _require_int,
    _require_str,
    _require_str_tuple,
    check_plan_identity,
    shard_file_name,
)
from repro.bench.engine import ProgressCallback

#: Seconds a lease stays valid before any worker may reclaim the manifest.
#: Generous by default: reclaim exists for crashed workers, not slow ones.
DEFAULT_LEASE_TTL = 900.0

_PLAN_KIND = "repro-broker-plan"

#: Typed loaders for the plan-header fields, keyed by identity label; any
#: label without an entry falls back to the untyped ``_require``, so a new
#: ``plan_identity()`` field flows through submit/parse without edits here.
_IDENTITY_PARSERS: Dict[str, Callable] = {
    "shard_count": _require_int,
    "seed": _require_int,
    "trials": _require_int,
    "fingerprint": _require_str,
    "setting_keys": _require_str_tuple,
    "task_ids": _require_str_tuple,
}

Clock = Callable[[], float]


def _check_posted_results(reference: Tuple[object, ...],
                          results: ShardResults, source: str) -> None:
    """Posted results must carry a manifest of this plan, in index range."""
    manifest = results.manifest
    check_plan_identity(reference, manifest,
                        source=f"{source} for shard {manifest.shard_index}")
    if not 0 <= manifest.shard_index < manifest.shard_count:
        raise ShardError(f"{source} carry shard index "
                         f"{manifest.shard_index}, out of range for a "
                         f"{manifest.shard_count}-shard plan")


@dataclass(frozen=True)
class BrokerStatus:
    """Coordinator-side queue counters (one snapshot, not a live view)."""

    queued: int
    leased: int
    done: int
    shard_count: int

    @property
    def complete(self) -> bool:
        return self.done >= self.shard_count

    @property
    def drained(self) -> bool:
        """No work left to lease *or* in flight (done or abandoned)."""
        return self.queued == 0 and self.leased == 0

    def render(self) -> str:
        return (f"{self.done}/{self.shard_count} done "
                f"({self.queued} queued, {self.leased} leased)")


@dataclass(frozen=True)
class ShardLease:
    """One leased manifest: the work order plus the lease bookkeeping.

    ``token`` is backend-specific (the lease filename for
    :class:`LocalDirBroker`); ``deadline`` is in the broker clock's units —
    after it passes any worker may reclaim the manifest.
    """

    manifest: ShardManifest
    worker_id: str
    deadline: float
    token: str


class ShardBroker(ABC):
    """The queue contract: submit a plan, lease manifests, post results.

    All brokers share first-write-wins semantics on results: posting a
    shard that is already done is an idempotent no-op (results are
    deterministic, so the copies are interchangeable), which makes both
    duplicate posts and post-reclaim stragglers harmless.
    """

    @abstractmethod
    def submit(self, plan: ShardPlan) -> None:
        """Enqueue every manifest of ``plan``.  One plan per broker."""

    @abstractmethod
    def lease(self, worker_id: str) -> Optional[ShardLease]:
        """Atomically take one queued manifest, or ``None`` if none is free.

        Expired leases are reclaimed first, so a crashed worker's manifest
        becomes leasable again after ``lease_ttl`` seconds.
        """

    @abstractmethod
    def post(self, lease: ShardLease, results: ShardResults) -> bool:
        """Post one shard's results; returns ``False`` on a duplicate post."""

    @abstractmethod
    def collect(self) -> List[ShardResults]:
        """All posted results, in shard-index order.

        Feed the list to :func:`~repro.bench.shard.merge_shard_results`,
        which (re)validates completeness and plan identity.
        """

    @abstractmethod
    def status(self) -> BrokerStatus:
        """Queue counters for the ``--progress`` display and drain checks."""


class InMemoryBroker(ShardBroker):
    """The queue contract over plain dicts, for tests and single-process use."""

    def __init__(self, lease_ttl: float = DEFAULT_LEASE_TTL,
                 clock: Clock = time.monotonic) -> None:
        if lease_ttl <= 0:
            raise ShardError(f"lease_ttl must be > 0, got {lease_ttl}")
        self.lease_ttl = lease_ttl
        self._clock = clock
        self._identity: Optional[Tuple[object, ...]] = None
        self._shard_count = 0
        self._queued: Dict[int, ShardManifest] = {}
        self._leases: Dict[int, ShardLease] = {}
        self._done: Dict[int, ShardResults] = {}

    def _require_plan(self) -> None:
        if self._identity is None:
            raise ShardError("no plan has been submitted to this broker")

    def _reclaim_expired(self) -> None:
        now = self._clock()
        for index, lease in list(self._leases.items()):
            if now >= lease.deadline:
                del self._leases[index]
                self._queued[index] = lease.manifest

    def submit(self, plan: ShardPlan) -> None:
        if self._identity is not None:
            raise ShardError("broker already holds a plan; use one broker "
                             "per plan")
        self._identity = plan.manifests[0].plan_identity()
        self._shard_count = plan.shard_count
        self._queued = {m.shard_index: m for m in plan.manifests}

    def lease(self, worker_id: str) -> Optional[ShardLease]:
        self._require_plan()
        self._reclaim_expired()
        if not self._queued:
            return None
        index = min(self._queued)
        manifest = self._queued.pop(index)
        lease = ShardLease(manifest=manifest, worker_id=worker_id,
                           deadline=self._clock() + self.lease_ttl,
                           token=str(index))
        self._leases[index] = lease
        return lease

    def post(self, lease: ShardLease, results: ShardResults) -> bool:
        self._require_plan()
        assert self._identity is not None
        index = results.manifest.shard_index
        _check_posted_results(self._identity, results,
                              source="posted results")
        self._leases.pop(index, None)
        self._queued.pop(index, None)
        if index in self._done:
            return False
        self._done[index] = results
        return True

    def collect(self) -> List[ShardResults]:
        self._require_plan()
        return [self._done[index] for index in sorted(self._done)]

    def status(self) -> BrokerStatus:
        self._require_plan()
        self._reclaim_expired()
        return BrokerStatus(queued=len(self._queued), leased=len(self._leases),
                            done=len(self._done),
                            shard_count=self._shard_count)


def _sanitize_worker_id(worker_id: str) -> str:
    return re.sub(r"[^\w.-]", "-", worker_id) or "worker"


class LocalDirBroker(ShardBroker):
    """The queue contract over a shared directory, using only atomic renames.

    Layout under ``root``::

        plan.json    the plan's identity header (written once by submit)
        queued/      manifests waiting for a worker
        leased/      manifests being worked on; the lease deadline and
                     worker id are encoded in the filename
                     (``NAME.lease.<deadline_ms>.<worker>``)
        done/        posted ShardResults files, one per shard

    Every state transition is a single ``rename`` (atomic on POSIX, also
    over NFS), so concurrent workers race safely: exactly one wins each
    lease, the losers see ``FileNotFoundError`` and move on.  Files are
    written to a temp name first and renamed into place, so readers never
    observe a half-written JSON.

    Lease deadlines are wall-clock timestamps taken on the *leasing*
    machine and compared on whichever machine reclaims, so cross-machine
    clock skew shifts the effective TTL by the skew: a fast reclaimer
    reclaims early (the manifest is re-run — wasteful but still correct,
    posts are idempotent), a slow one delays crashed-worker recovery.
    Keep worker clocks NTP-synced, or size ``lease_ttl`` well above the
    worst expected skew.
    """

    PLAN_FILE = "plan.json"

    def __init__(self, root: Union[str, Path],
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 clock: Clock = time.time) -> None:
        if lease_ttl <= 0:
            raise ShardError(f"lease_ttl must be > 0, got {lease_ttl}")
        self.root = Path(root)
        self.lease_ttl = lease_ttl
        self._clock = clock

    # ------------------------------------------------------------------
    # directory plumbing
    # ------------------------------------------------------------------
    @property
    def _plan_path(self) -> Path:
        return self.root / self.PLAN_FILE

    @property
    def _queued_dir(self) -> Path:
        return self.root / "queued"

    @property
    def _leased_dir(self) -> Path:
        return self.root / "leased"

    @property
    def _done_dir(self) -> Path:
        return self.root / "done"

    def _atomic_write_json(self, path: Path, text: str) -> None:
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(text, encoding="utf-8")
        tmp.replace(path)

    def _identity(self) -> Tuple[object, ...]:
        """Load and validate the plan header; the broker's reference identity."""
        if not self._plan_path.exists():
            raise ShardError(
                f"{self.root}: no plan has been submitted to this broker "
                "directory (run 'repro shard submit' first)")
        source = str(self._plan_path)
        payload = _load_json(self._plan_path, "broker plan")
        _check_header(payload, _PLAN_KIND, source)
        return tuple(_IDENTITY_PARSERS.get(label, _require)(payload, label,
                                                            source)
                     for label in PLAN_IDENTITY_LABELS)

    # ------------------------------------------------------------------
    # the queue contract
    # ------------------------------------------------------------------
    def submit(self, plan: ShardPlan) -> None:
        if self._plan_path.exists():
            raise ShardError(
                f"{self._plan_path}: broker directory already holds a plan "
                "(one broker directory per plan; collect it or submit to a "
                "fresh directory)")
        for directory in (self.root, self._queued_dir, self._leased_dir,
                          self._done_dir):
            directory.mkdir(parents=True, exist_ok=True)
        reference = plan.manifests[0]
        header: Dict[str, object] = {
            "kind": _PLAN_KIND,
            "format_version": MANIFEST_FORMAT_VERSION,
        }
        # Derived from the identity tuple itself so the header can never
        # drift from plan_identity()'s field set.
        for label, value in zip(PLAN_IDENTITY_LABELS,
                                reference.plan_identity()):
            header[label] = list(value) if isinstance(value, tuple) else value
        # Header first: a directory with a header but no manifests reads as
        # a plan being enqueued; manifests without a header would read as
        # corruption.
        self._atomic_write_json(self._plan_path, json.dumps(header, indent=1))
        for manifest in plan.manifests:
            name = plan.manifest_name(manifest.shard_index)
            self._atomic_write_json(self._queued_dir / name,
                                    json.dumps(manifest.as_dict(), indent=1))

    def _reclaim_expired(self) -> None:
        now_ms = int(self._clock() * 1000)
        for path in self._leased_dir.glob("*.lease.*"):
            name, _, rest = path.name.partition(".lease.")
            deadline_text, _, _worker = rest.partition(".")
            try:
                deadline_ms = int(deadline_text)
            except ValueError:
                raise ShardError(f"{path}: malformed lease filename (expected "
                                 "NAME.lease.<deadline_ms>.<worker>)")
            if now_ms >= deadline_ms:
                try:
                    path.rename(self._queued_dir / name)
                except FileNotFoundError:
                    pass  # another worker reclaimed it first

    def lease(self, worker_id: str) -> Optional[ShardLease]:
        self._identity()
        self._reclaim_expired()
        worker = _sanitize_worker_id(worker_id)
        for path in sorted(self._queued_dir.glob("shard-*.json")):
            deadline = self._clock() + self.lease_ttl
            target = self._leased_dir / (
                f"{path.name}.lease.{int(deadline * 1000)}.{worker}")
            try:
                path.rename(target)
            except FileNotFoundError:
                continue  # another worker won this manifest
            manifest = ShardManifest.load(target)
            return ShardLease(manifest=manifest, worker_id=worker_id,
                              deadline=deadline, token=target.name)
        return None

    def post(self, lease: ShardLease, results: ShardResults) -> bool:
        reference = self._identity()
        manifest = results.manifest
        _check_posted_results(reference, results,
                              source=f"{self.root}: posted results")
        name = shard_file_name(manifest.shard_index, manifest.shard_count)
        done_path = self._done_dir / name
        # First-write-wins must be atomic under concurrent posters (e.g. a
        # straggler racing the worker that reclaimed its lease): link() the
        # finished temp file into place — exactly one poster succeeds, the
        # rest get FileExistsError and report the duplicate.
        tmp = done_path.with_name(f".{done_path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(results.as_dict(), indent=1),
                       encoding="utf-8")
        try:
            os.link(tmp, done_path)
            first_post = True
        except FileExistsError:
            first_post = False
        finally:
            tmp.unlink(missing_ok=True)
        # Clear this shard out of the queue: our lease file, plus any queued
        # copy left behind if our lease expired and was reclaimed before we
        # finished (without this the shard would be pointlessly re-run).
        (self._leased_dir / lease.token).unlink(missing_ok=True)
        (self._queued_dir / name).unlink(missing_ok=True)
        return first_post

    def collect(self) -> List[ShardResults]:
        self._identity()
        return [ShardResults.load(path)
                for path in sorted(self._done_dir.glob("shard-*.json"))]

    def status(self) -> BrokerStatus:
        identity = self._identity()
        self._reclaim_expired()
        done_names = {path.name
                      for path in self._done_dir.glob("shard-*.json")}
        # A shard can transiently be both done and queued/leased (a
        # straggler posting after reclaim); done wins so counts add up.
        queued = sum(1 for path in self._queued_dir.glob("shard-*.json")
                     if path.name not in done_names)
        leased = sum(1 for path in self._leased_dir.glob("*.lease.*")
                     if path.name.partition(".lease.")[0] not in done_names)
        return BrokerStatus(queued=queued, leased=leased,
                            done=len(done_names), shard_count=int(identity[0]))


# ----------------------------------------------------------------------
# the worker pull loop
# ----------------------------------------------------------------------
#: Called after each posted manifest with the lease, its results and a
#: fresh queue snapshot (drives the CLI's per-manifest status lines).
ManifestCallback = Callable[[ShardLease, ShardResults, BrokerStatus], None]


class ShardWorker:
    """Pull loop: lease → execute → post, until the queue drains.

    ``poll`` is the sleep between queue checks while other workers still
    hold leases (their lease may expire and become ours to reclaim); with
    ``poll=0`` the worker exits as soon as nothing is leasable.
    ``max_manifests`` caps how many manifests this worker will execute.
    """

    def __init__(self, broker: ShardBroker,
                 executor: Optional[ManifestExecutor] = None,
                 worker_id: Optional[str] = None, poll: float = 1.0,
                 max_manifests: Optional[int] = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if not math.isfinite(poll) or poll < 0:
            raise ShardError(f"poll must be a finite number >= 0, got {poll}")
        if max_manifests is not None and max_manifests < 1:
            raise ShardError(f"max_manifests must be >= 1, got {max_manifests}")
        self.broker = broker
        self.executor = executor or ManifestExecutor()
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.poll = poll
        self.max_manifests = max_manifests
        self._sleep = sleep

    def run(self, progress: Optional[ProgressCallback] = None,
            on_manifest: Optional[ManifestCallback] = None) -> List[ShardResults]:
        """Drain the queue; returns the results this worker posted."""
        completed: List[ShardResults] = []
        while self.max_manifests is None or len(completed) < self.max_manifests:
            lease = self.broker.lease(self.worker_id)
            if lease is None:
                snapshot = self.broker.status()
                if snapshot.queued > 0:
                    continue  # lost a lease race; try again immediately
                if snapshot.leased == 0 or self.poll <= 0:
                    break  # drained (or not polling for reclaims)
                self._sleep(self.poll)
                continue
            results = self.executor.run(lease.manifest, progress=progress)
            self.broker.post(lease, results)
            completed.append(results)
            if on_manifest is not None:
                on_manifest(lease, results, self.broker.status())
        return completed
