"""An OSWorld-W-style benchmark and the evaluation harness.

27 single-application tasks (9 each for the Word-, Excel- and PowerPoint-like
applications), programmatic checkers over final application state, a runner
that executes every (interface, model) configuration from the paper's
Table 3 with three trials per task and a 30-step cap, plus the metric and
report generators behind every table and figure in the evaluation section.
"""

from repro.bench.tasks import all_tasks, tasks_for_app
from repro.bench.engine import (
    Executor,
    ParallelExecutor,
    ProgressEvent,
    SerialExecutor,
    TrialSpec,
    expand_trial_specs,
    trial_seed,
)
from repro.bench.runner import (
    BenchmarkConfig,
    BenchmarkRunner,
    DEFAULT_SEED,
    EvaluationSetting,
    RunOutcome,
)
from repro.bench.shard import (
    MANIFEST_FORMAT_VERSION,
    ManifestExecutor,
    ShardError,
    ShardManifest,
    ShardPlan,
    ShardResults,
    merge_shard_results,
    plan_shards,
    shard_file_name,
)
from repro.bench.store import (
    FileSystemObjectStore,
    InMemoryObjectStore,
    ObjectStore,
)
from repro.bench.transport import (
    DEFAULT_LEASE_TTL,
    BrokerStatus,
    InMemoryBroker,
    LeaseHeartbeat,
    LocalDirBroker,
    ObjectStoreBroker,
    ShardBroker,
    ShardLease,
    ShardWorker,
)
from repro.bench.metrics import (
    MetricSummary,
    aggregate,
    normalized_core_steps,
    one_shot_rate,
    success_rate,
)
from repro.bench.failures import failure_distribution, failure_breakdown
from repro.bench import reporting

__all__ = [
    "BenchmarkConfig",
    "BenchmarkRunner",
    "BrokerStatus",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_SEED",
    "EvaluationSetting",
    "Executor",
    "FileSystemObjectStore",
    "InMemoryBroker",
    "InMemoryObjectStore",
    "LeaseHeartbeat",
    "LocalDirBroker",
    "MANIFEST_FORMAT_VERSION",
    "ManifestExecutor",
    "MetricSummary",
    "ObjectStore",
    "ObjectStoreBroker",
    "ParallelExecutor",
    "ProgressEvent",
    "RunOutcome",
    "SerialExecutor",
    "ShardBroker",
    "ShardError",
    "ShardLease",
    "ShardManifest",
    "ShardPlan",
    "ShardResults",
    "ShardWorker",
    "TrialSpec",
    "aggregate",
    "all_tasks",
    "expand_trial_specs",
    "failure_breakdown",
    "failure_distribution",
    "merge_shard_results",
    "normalized_core_steps",
    "one_shot_rate",
    "plan_shards",
    "reporting",
    "shard_file_name",
    "success_rate",
    "tasks_for_app",
    "trial_seed",
]
