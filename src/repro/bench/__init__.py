"""An OSWorld-W-style benchmark and the evaluation harness.

27 single-application tasks (9 each for the Word-, Excel- and PowerPoint-like
applications), programmatic checkers over final application state, a runner
that executes every (interface, model) configuration from the paper's
Table 3 with three trials per task and a 30-step cap, plus the metric and
report generators behind every table and figure in the evaluation section.
"""

from repro.bench.telemetry import (
    AggregatingSink,
    EventSink,
    JsonlSink,
    MetricsSnapshotSink,
    NullSink,
    TeeSink,
    TelemetryError,
    TelemetryEvent,
    read_jsonl_events,
    set_default_sink,
    use_sink,
)
from repro.bench.registry import (
    RegistryError,
    RunRecord,
    RunRegistry,
    build_run_record,
)
from repro.bench.trajectory import (
    FailIf,
    diff_runs,
    export_bench,
    flatten_metrics,
)
from repro.bench.tasks import all_tasks, tasks_for_app
from repro.bench.engine import (
    Executor,
    ParallelExecutor,
    ProgressEvent,
    SerialExecutor,
    TrialSpec,
    expand_trial_specs,
    trial_seed,
)
from repro.bench.runner import (
    BenchmarkConfig,
    BenchmarkRunner,
    DEFAULT_SEED,
    EvaluationSetting,
    RunOutcome,
)
from repro.bench.shard import (
    MANIFEST_FORMAT_VERSION,
    ManifestExecutor,
    ShardError,
    ShardManifest,
    ShardPlan,
    ShardResults,
    merge_shard_results,
    plan_shards,
    shard_file_name,
)
from repro.bench.store import (
    FileSystemObjectStore,
    InMemoryObjectStore,
    ObjectStore,
)
from repro.bench.transport import (
    DEFAULT_LEASE_TTL,
    DEFAULT_PLAN,
    BrokerStatus,
    InMemoryBroker,
    LeaseHeartbeat,
    LocalDirBroker,
    ObjectStoreBroker,
    PlanStatus,
    ShardBroker,
    ShardLease,
    ShardWorker,
    validate_plan_name,
)
from repro.bench.metrics import (
    MetricSummary,
    aggregate,
    normalized_core_steps,
    one_shot_rate,
    success_rate,
)
from repro.bench.failures import failure_distribution, failure_breakdown
from repro.bench import reporting

__all__ = [
    "AggregatingSink",
    "BenchmarkConfig",
    "BenchmarkRunner",
    "BrokerStatus",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_PLAN",
    "DEFAULT_SEED",
    "EvaluationSetting",
    "EventSink",
    "Executor",
    "FailIf",
    "FileSystemObjectStore",
    "InMemoryBroker",
    "InMemoryObjectStore",
    "JsonlSink",
    "LeaseHeartbeat",
    "LocalDirBroker",
    "MANIFEST_FORMAT_VERSION",
    "ManifestExecutor",
    "MetricSummary",
    "MetricsSnapshotSink",
    "NullSink",
    "ObjectStore",
    "ObjectStoreBroker",
    "ParallelExecutor",
    "PlanStatus",
    "ProgressEvent",
    "RegistryError",
    "RunOutcome",
    "RunRecord",
    "RunRegistry",
    "SerialExecutor",
    "ShardBroker",
    "ShardError",
    "ShardLease",
    "ShardManifest",
    "ShardPlan",
    "ShardResults",
    "ShardWorker",
    "TeeSink",
    "TelemetryError",
    "TelemetryEvent",
    "TrialSpec",
    "aggregate",
    "all_tasks",
    "build_run_record",
    "diff_runs",
    "expand_trial_specs",
    "export_bench",
    "failure_breakdown",
    "failure_distribution",
    "flatten_metrics",
    "merge_shard_results",
    "normalized_core_steps",
    "one_shot_rate",
    "plan_shards",
    "read_jsonl_events",
    "reporting",
    "set_default_sink",
    "shard_file_name",
    "success_rate",
    "tasks_for_app",
    "trial_seed",
    "use_sink",
    "validate_plan_name",
]
