"""Deterministic, seeded fault injection for the broker stack.

The broker contract (``tests/broker_contract.py``) proves the queue at
*cloud shape*; this module proves it at *cloud weather*.  It decorates the
storage and transport layers with reproducible adversarial schedules —
latency spikes, transient errors, CAS-lost storms, truncated listings — so
the retry/reclaim paths the contract depends on are actually driven, not
merely present:

:class:`FaultSchedule`
    The reproducible adversary: a seed plus a per-operation
    :class:`FaultSpec` (probability, burst length, latency bound).  Every
    decision comes from a per-op :mod:`random` stream derived from the
    seed, so the same schedule replays the same fault sequence; the whole
    schedule round-trips through JSON (:meth:`FaultSchedule.save` /
    :meth:`FaultSchedule.load`) so CI jobs and bug reports can pin the
    exact weather a run survived (``repro shard … --fault-schedule FILE``).
:class:`FaultyObjectStore`
    Wraps any five-method :class:`~repro.bench.store.ObjectStore`:
    injected sleeps, :class:`~repro.bench.store.TransientStoreError`\\ s
    raised *before* the inner call (so a retried op is never half-applied),
    ``put_if_match`` calls reported lost without being attempted (a CAS
    storm), and ``list_prefix`` pages truncated to a prefix of the truth
    (the partial-list behaviour real object stores exhibit under eventual
    consistency).
:class:`FaultyBroker`
    The same idea one layer up, for brokers with no store underneath
    (:class:`~repro.bench.transport.LocalDirBroker`,
    :class:`~repro.bench.transport.InMemoryBroker`): transient errors and
    latency on every queue verb, plus ``renew``/``lease`` forced to report
    the race lost — the storm that drives a worker's abandon path.
:class:`RetryingBroker`
    The consumer-side armour as a reusable decorator: every queue verb
    wrapped in :func:`~repro.bench.store.call_with_retries`, the same
    bounded backoff :class:`~repro.bench.transport.ObjectStoreBroker` and
    :class:`~repro.bench.transport.ShardWorker` apply internally.  The
    chaos conformance suite runs every contract clause through
    ``RetryingBroker(FaultyBroker(...))`` and the clauses must hold
    verbatim: bounded retry makes injected transients *invisible* to
    callers, which is the whole claim.

Injection happens strictly before the wrapped call, so a fault never
corrupts state — it only makes the operation slower, lie about losing, or
fail with a retryable error.  That is exactly the failure envelope the
paper's evaluation pipeline must shrug off to keep its merged output
bit-identical to serial (``tests/test_equivalence.py`` asserts this under a
hostile schedule).
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.bench import telemetry
from repro.bench.shard import ShardError, ShardPlan, ShardResults
from repro.bench.store import (
    ObjectStore,
    RetryPolicy,
    StoredObject,
    TransientStoreError,
    call_with_retries,
)
from repro.bench.telemetry import CasRetry, EventSink
from repro.bench.transport import (
    DEFAULT_PLAN,
    BrokerStatus,
    ShardBroker,
    ShardLease,
)

_SCHEDULE_KIND = "repro-fault-schedule"
_SCHEDULE_FORMAT_VERSION = 1

#: The injectable operations of the two wrappers; also the legal op names
#: in a schedule file (anything else is a typo worth rejecting).
STORE_OPS = ("put_if_absent", "put_if_match", "get", "list_prefix", "delete")
BROKER_OPS = ("submit", "lease", "renew", "post", "collect", "status")


def _check_rate(op: str, label: str, value: object) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)) \
            or not 0.0 <= float(value) <= 1.0:
        raise ShardError(f"fault spec for {op!r}: {label} must be a "
                         f"probability in [0, 1], got {value!r}")
    return float(value)


@dataclass(frozen=True)
class FaultSpec:
    """How one operation misbehaves (all fields off by default).

    ``error_rate``
        Probability a call raises a :class:`TransientStoreError` before
        touching the wrapped backend; once triggered, the next
        ``error_burst - 1`` calls of the same op fail too (a burst models
        the correlated blips real storage produces, and is what pushes
        single-retry consumers past their comfort zone).
    ``latency_s``
        Upper bound of a uniform injected sleep per call.
    ``cas_lost_rate``
        ``put_if_match`` (and broker ``renew``/``lease``): probability the
        call reports its race lost *without attempting the swap* — a CAS
        storm from the caller's point of view.
    ``truncate_rate``
        ``list_prefix``: probability the listing returns only a seeded
        prefix of the real page (never fabricated keys — partial truth,
        like an eventually consistent list).
    """

    error_rate: float = 0.0
    error_burst: int = 1
    latency_s: float = 0.0
    cas_lost_rate: float = 0.0
    truncate_rate: float = 0.0

    def validate(self, op: str) -> "FaultSpec":
        for label in ("error_rate", "cas_lost_rate", "truncate_rate"):
            _check_rate(op, label, getattr(self, label))
        if isinstance(self.error_burst, bool) \
                or not isinstance(self.error_burst, int) \
                or self.error_burst < 1:
            raise ShardError(f"fault spec for {op!r}: error_burst must be "
                             f"an integer >= 1, got {self.error_burst!r}")
        if isinstance(self.latency_s, bool) \
                or not isinstance(self.latency_s, (int, float)) \
                or self.latency_s < 0:
            raise ShardError(f"fault spec for {op!r}: latency_s must be a "
                             f"number >= 0, got {self.latency_s!r}")
        return self

    @property
    def quiet(self) -> bool:
        """No fault of any kind can fire from this spec."""
        return (self.error_rate == 0.0 and self.latency_s == 0.0
                and self.cas_lost_rate == 0.0 and self.truncate_rate == 0.0)

    def as_dict(self) -> Dict[str, object]:
        return {field.name: getattr(self, field.name)
                for field in fields(self)}

    @classmethod
    def from_dict(cls, payload: Dict[str, object], op: str) -> "FaultSpec":
        if not isinstance(payload, dict):
            raise ShardError(f"fault spec for {op!r} must be a JSON object, "
                             f"got {type(payload).__name__}")
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ShardError(f"fault spec for {op!r}: unknown field(s) "
                             f"{', '.join(map(repr, unknown))} (expected "
                             f"{', '.join(sorted(known))})")
        return cls(**payload).validate(op)


@dataclass(frozen=True)
class FaultDecision:
    """What the schedule chose for one call (computed, never persisted)."""

    delay_s: float = 0.0
    error: bool = False
    cas_lost: bool = False
    truncate: bool = False
    #: Fraction of the true listing to keep when ``truncate`` fired.
    keep_fraction: float = 1.0


_NO_FAULT = FaultDecision()


class FaultSchedule:
    """A seeded, replayable stream of per-operation fault decisions.

    Each op draws from its own :class:`random.Random` stream derived from
    ``(seed, op)``, so the decision sequence *per op* is a pure function of
    the schedule — independent of how calls to different ops interleave.
    :meth:`decide` is thread-safe; :meth:`reset` rewinds every stream so a
    second run replays the identical weather.  Serializable to JSON for CI
    (``kind: repro-fault-schedule``).
    """

    def __init__(self, seed: int = 0,
                 ops: Optional[Dict[str, FaultSpec]] = None) -> None:
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ShardError(f"fault schedule seed must be an integer, "
                             f"got {seed!r}")
        known = set(STORE_OPS) | set(BROKER_OPS)
        self.ops: Dict[str, FaultSpec] = {}
        for op, spec in (ops or {}).items():
            if op not in known:
                raise ShardError(
                    f"fault schedule: unknown op {op!r} (expected one of "
                    f"{', '.join(sorted(known))})")
            self.ops[op] = spec.validate(op)
        self.seed = seed
        self._lock = threading.Lock()
        self._streams: Dict[str, random.Random] = {}
        self._bursts: Dict[str, int] = {}

    def spec(self, op: str) -> FaultSpec:
        return self.ops.get(op, _QUIET_SPEC)

    def reset(self) -> None:
        """Rewind every op stream: the next run replays the same faults."""
        with self._lock:
            self._streams.clear()
            self._bursts.clear()

    def decide(self, op: str) -> FaultDecision:
        spec = self.spec(op)
        if spec.quiet:
            return _NO_FAULT
        with self._lock:
            rng = self._streams.get(op)
            if rng is None:
                rng = self._streams[op] = random.Random(f"{self.seed}:{op}")
            burst_left = self._bursts.get(op, 0)
            if burst_left > 0:
                self._bursts[op] = burst_left - 1
                error = True
            else:
                error = rng.random() < spec.error_rate
                if error:
                    self._bursts[op] = spec.error_burst - 1
            delay = rng.uniform(0.0, spec.latency_s) if spec.latency_s else 0.0
            cas_lost = (not error and spec.cas_lost_rate > 0
                        and rng.random() < spec.cas_lost_rate)
            truncate = (not error and spec.truncate_rate > 0
                        and rng.random() < spec.truncate_rate)
            keep = rng.random() if truncate else 1.0
        return FaultDecision(delay_s=delay, error=error, cas_lost=cas_lost,
                             truncate=truncate, keep_fraction=keep)

    # ------------------------------------------------------------------
    # JSON round trip (the CI/replay format)
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": _SCHEDULE_KIND,
            "format_version": _SCHEDULE_FORMAT_VERSION,
            "seed": self.seed,
            "ops": {op: self.ops[op].as_dict() for op in sorted(self.ops)},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object],
                  source: str = "fault schedule") -> "FaultSchedule":
        if not isinstance(payload, dict):
            raise ShardError(f"{source}: must be a JSON object")
        kind = payload.get("kind")
        if kind != _SCHEDULE_KIND:
            raise ShardError(f"{source}: field 'kind' is {kind!r}; expected "
                             f"a {_SCHEDULE_KIND!r} file")
        version = payload.get("format_version")
        if version != _SCHEDULE_FORMAT_VERSION:
            raise ShardError(
                f"{source}: field 'format_version' is {version!r}; this "
                f"build reads format version {_SCHEDULE_FORMAT_VERSION}")
        seed = payload.get("seed", 0)
        ops_payload = payload.get("ops", {})
        if not isinstance(ops_payload, dict):
            raise ShardError(f"{source}: field 'ops' must be a JSON object")
        return cls(seed=seed,
                   ops={op: FaultSpec.from_dict(spec, op)
                        for op, spec in ops_payload.items()})

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=1) + "\n",
                        encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultSchedule":
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as error:
            raise ShardError(f"fault schedule: cannot read {path!s}: "
                             f"{error}") from error
        except json.JSONDecodeError as error:
            raise ShardError(f"fault schedule: {path!s} is not valid JSON: "
                             f"{error}") from error
        return cls.from_dict(payload, source=f"fault schedule {path!s}")

    def describe(self) -> str:
        if not self.ops:
            return f"fault-schedule(seed={self.seed}, quiet)"
        return (f"fault-schedule(seed={self.seed}, "
                f"ops={','.join(sorted(self.ops))})")


_QUIET_SPEC = FaultSpec()


class _InjectionCounters:
    """Thread-safe tallies of what a wrapper actually injected, so tests
    can assert the weather happened instead of trusting probabilities."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {"errors": 0, "delays": 0,
                                        "cas_lost": 0, "truncated": 0}

    def bump(self, what: str) -> None:
        with self._lock:
            self._counts[what] += 1

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)


class FaultyObjectStore(ObjectStore):
    """Decorate any :class:`ObjectStore` with a :class:`FaultSchedule`.

    Faults are injected strictly *before* the wrapped call: an injected
    error leaves the store untouched (so consumer retries are always
    safe), an injected CAS loss skips the swap entirely (indistinguishable
    from honestly losing the race), and an injected truncation drops a
    seeded tail from the true listing.  ``enabled`` can be flipped off to
    arrange state between storms; ``injected`` counts what actually fired.
    """

    def __init__(self, inner: ObjectStore, schedule: FaultSchedule,
                 sleep: Callable[[float], None] = time.sleep,
                 sink: Optional[EventSink] = None) -> None:
        self.inner = inner
        self.schedule = schedule
        self.sink = sink
        self.enabled = True
        self.injected = _InjectionCounters()
        self._sleep = sleep

    def _inject(self, op: str, key: str) -> FaultDecision:
        if not self.enabled:
            return _NO_FAULT
        decision = self.schedule.decide(op)
        if decision.delay_s > 0:
            self.injected.bump("delays")
            self._sleep(decision.delay_s)
        if decision.error:
            self.injected.bump("errors")
            raise TransientStoreError(
                f"{self.describe()}: injected transient fault "
                f"({op} on {key!r})")
        return decision

    def put_if_absent(self, key: str, data: bytes) -> bool:
        self._inject("put_if_absent", key)
        return self.inner.put_if_absent(key, data)

    def put_if_match(self, key: str, data: bytes, etag: str) -> bool:
        decision = self._inject("put_if_match", key)
        if decision.cas_lost:
            # Report the swap lost without attempting it: to the caller
            # this is exactly a competing writer winning first.
            self.injected.bump("cas_lost")
            resolved = telemetry.resolve(self.sink)
            if resolved:
                resolved.emit(CasRetry(key=key, op="put_if_match"))
            return False
        return self.inner.put_if_match(key, data, etag)

    def get(self, key: str) -> Optional[StoredObject]:
        self._inject("get", key)
        return self.inner.get(key)

    def list_prefix(self, prefix: str) -> List[str]:
        decision = self._inject("list_prefix", prefix)
        keys = self.inner.list_prefix(prefix)
        if decision.truncate and keys:
            kept = int(len(keys) * decision.keep_fraction)
            self.injected.bump("truncated")
            return keys[:kept]
        return keys

    def delete(self, key: str) -> bool:
        self._inject("delete", key)
        return self.inner.delete(key)

    def describe(self) -> str:
        return f"faulty({self.inner.describe()})"


class FaultyBroker(ShardBroker):
    """Decorate any :class:`ShardBroker` with a :class:`FaultSchedule`.

    The shim :class:`~repro.bench.transport.LocalDirBroker` (and the
    in-memory broker) need to join chaos conformance: those backends have
    no object store underneath to wrap, so the weather is injected on the
    queue verbs themselves.  Transient errors fire before the inner call;
    ``cas_lost`` on ``renew`` (or ``lease``) makes the verb report its
    race lost — ``None`` — without touching the queue, which is how a
    worker is driven into its abandon path on demand.
    """

    def __init__(self, inner: ShardBroker, schedule: FaultSchedule,
                 sleep: Callable[[float], None] = time.sleep,
                 sink: Optional[EventSink] = None) -> None:
        self.inner = inner
        self.schedule = schedule
        self.sink = sink
        self.enabled = True
        self.injected = _InjectionCounters()
        self._sleep = sleep

    @property
    def lease_ttl(self) -> float:
        return self.inner.lease_ttl

    def _inject(self, op: str, key: str) -> FaultDecision:
        if not self.enabled:
            return _NO_FAULT
        decision = self.schedule.decide(op)
        if decision.delay_s > 0:
            self.injected.bump("delays")
            self._sleep(decision.delay_s)
        if decision.error:
            self.injected.bump("errors")
            raise TransientStoreError(
                f"faulty broker: injected transient fault "
                f"({op} on {key!r})")
        return decision

    def submit(self, plan: ShardPlan, name: str = DEFAULT_PLAN,
               priority: int = 0) -> None:
        self._inject("submit", name)
        self.inner.submit(plan, name=name, priority=priority)

    def lease(self, worker_id: str) -> Optional[ShardLease]:
        decision = self._inject("lease", worker_id)
        if decision.cas_lost:
            self.injected.bump("cas_lost")
            return None  # "every shard's CAS went to somebody else"
        return self.inner.lease(worker_id)

    def renew(self, lease: ShardLease) -> Optional[ShardLease]:
        decision = self._inject("renew", lease.token)
        if decision.cas_lost:
            self.injected.bump("cas_lost")
            return None  # "a reclaimer swapped the lease out from under us"
        return self.inner.renew(lease)

    def post(self, lease: ShardLease, results: ShardResults) -> bool:
        self._inject("post", lease.token)
        return self.inner.post(lease, results)

    def collect(self, name: str = DEFAULT_PLAN) -> List[ShardResults]:
        self._inject("collect", name)
        return self.inner.collect(name)

    def status(self) -> BrokerStatus:
        self._inject("status", "status")
        return self.inner.status()

    def plan_names(self):
        return self.inner.plan_names()


class RetryingBroker(ShardBroker):
    """Wrap every queue verb of ``inner`` in bounded retry-with-backoff.

    Absorbs :class:`TransientStoreError` only — semantic
    :class:`~repro.bench.shard.ShardError`\\ s (foreign-plan posts, occupied
    names, malformed payloads) pass straight through, and exhaustion
    surfaces as a labeled
    :class:`~repro.bench.store.RetryBudgetExceeded`.  This is the
    consumer-side armour the chaos conformance suite holds the whole
    contract to, and the CLI's ``--fault-schedule`` path uses it so
    coordinator verbs (submit/collect/status) survive the same weather
    workers do.
    """

    def __init__(self, inner: ShardBroker,
                 policy: Optional[RetryPolicy] = None,
                 sink: Optional[EventSink] = None) -> None:
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.sink = sink

    @property
    def lease_ttl(self) -> float:
        return self.inner.lease_ttl

    def _call(self, op: str, key: str, fn):
        return call_with_retries(fn, op=op, key=key, policy=self.policy,
                                 sink=self.sink)

    def submit(self, plan: ShardPlan, name: str = DEFAULT_PLAN,
               priority: int = 0) -> None:
        self._call("submit", name,
                   lambda: self.inner.submit(plan, name=name,
                                             priority=priority))

    def lease(self, worker_id: str) -> Optional[ShardLease]:
        return self._call("lease", worker_id,
                          lambda: self.inner.lease(worker_id))

    def renew(self, lease: ShardLease) -> Optional[ShardLease]:
        return self._call("renew", lease.token,
                          lambda: self.inner.renew(lease))

    def post(self, lease: ShardLease, results: ShardResults) -> bool:
        return self._call("post", lease.token,
                          lambda: self.inner.post(lease, results))

    def collect(self, name: str = DEFAULT_PLAN) -> List[ShardResults]:
        return self._call("collect", name, lambda: self.inner.collect(name))

    def status(self) -> BrokerStatus:
        return self._call("status", "status", self.inner.status)

    def plan_names(self):
        return self._call("plan_names", "plans",
                          lambda: self.inner.plan_names())
