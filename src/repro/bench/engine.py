"""The benchmark execution engine: work-unit scheduling and executors.

The paper's evaluation protocol is a grid — interface×model settings × tasks
× trials (Table 3 alone is 8 × 27 × 3 = 648 sessions).  Every cell is a
:class:`TrialSpec`, deterministically seeded from the benchmark seed via
:func:`trial_seed`, which makes the grid embarrassingly parallel: a trial's
outcome depends only on its spec and the (version-specific, machine-
independent) offline navigation model.

Two executors realise the schedule:

* :class:`SerialExecutor` — runs specs in order in-process; the reference
  implementation every other executor must match bit-for-bit.
* :class:`ParallelExecutor` — fans specs out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Each worker process gets
  its own application instances (trials never share mutable app state), loads
  the offline model from the on-disk :class:`~repro.dmi.cache.ArtifactCache`
  instead of re-ripping, ships results back as plain dicts
  (:meth:`~repro.agent.session.SessionResult.as_dict`), and the parent
  reassembles them **in spec order**, so aggregate output is identical to the
  serial executor's for the same seed.

Both stream :class:`ProgressEvent`\\ s to an optional callback as trials
complete (in completion order, which for the parallel executor may differ
from spec order).
"""

from __future__ import annotations

import tempfile
import time
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING
import zlib

from repro.agent.session import SessionResult
from repro.bench import telemetry
from repro.bench.observe import trace as tracectx
from repro.bench.telemetry import TrialFinished, TrialStarted, phases_from_result

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.bench.runner import BenchmarkRunner


def trial_seed(base_seed: int, task_id: str, setting_key: str, trial: int) -> int:
    """Deterministic per-trial seed; independent of execution order/process."""
    key = f"{base_seed}|{task_id}|{setting_key}|{trial}"
    return zlib.crc32(key.encode("utf-8"))


@dataclass(frozen=True)
class TrialSpec:
    """One schedulable work unit: task × evaluation setting × trial index.

    Pure plain data (strings and ints) so specs cross process boundaries and
    can be exported/replayed; the fully derived ``seed`` travels with the
    spec so any executor reproduces the exact trial.
    """

    task_id: str
    setting_key: str
    trial: int
    seed: int

    def as_dict(self) -> Dict[str, object]:
        return {"task_id": self.task_id, "setting_key": self.setting_key,
                "trial": self.trial, "seed": self.seed}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TrialSpec":
        return cls(task_id=payload["task_id"], setting_key=payload["setting_key"],
                   trial=int(payload["trial"]), seed=int(payload["seed"]))

    @property
    def trace_id(self) -> str:
        """Deterministic trace id for this trial's telemetry.

        Derived (never stored) from the same identity fields as ``seed``
        itself, so the id is byte-identical across the serial, process-
        pool, shard-file and both broker execution paths — and the spec's
        wire format is unchanged.
        """
        return tracectx.trial_trace_id(self)


def expand_trial_specs(base_seed: int, trials: int, setting_keys: Sequence[str],
                       task_ids: Sequence[str]) -> List[TrialSpec]:
    """The canonical schedule: settings × tasks × trials, in that nesting."""
    return [
        TrialSpec(task_id=task_id, setting_key=setting_key, trial=trial,
                  seed=trial_seed(base_seed, task_id, setting_key, trial))
        for setting_key in setting_keys
        for task_id in task_ids
        for trial in range(trials)
    ]


@dataclass(frozen=True)
class ProgressEvent:
    """Streamed to the progress callback after each completed trial."""

    completed: int
    total: int
    spec: TrialSpec
    result: SessionResult


ProgressCallback = Callable[[ProgressEvent], None]


class Executor(ABC):
    """Turns a list of :class:`TrialSpec` into a list of results.

    Contract: the returned list is **in spec order** regardless of the
    completion order, so aggregation downstream is executor-independent.
    """

    @abstractmethod
    def run(self, runner: "BenchmarkRunner", specs: Sequence[TrialSpec],
            progress: Optional[ProgressCallback] = None) -> List[SessionResult]:
        """Execute every spec and return results aligned with ``specs``."""


class SerialExecutor(Executor):
    """In-process, in-order execution (the reference semantics)."""

    def run(self, runner: "BenchmarkRunner", specs: Sequence[TrialSpec],
            progress: Optional[ProgressCallback] = None) -> List[SessionResult]:
        specs = list(specs)
        results: List[SessionResult] = []
        for index, spec in enumerate(specs):
            result = runner.run_spec(spec)
            results.append(result)
            if progress is not None:
                progress(ProgressEvent(completed=index + 1, total=len(specs),
                                       spec=spec, result=result))
        return results


# ----------------------------------------------------------------------
# process-pool execution
# ----------------------------------------------------------------------
#: Per-process benchmark runner, created once by the pool initializer so all
#: specs handled by one worker share offline artefacts (loaded from cache).
_WORKER_RUNNER: Optional["BenchmarkRunner"] = None


def _worker_init(trials: int, seed: int, dmi_config, cache_dir: str,
                 cache_max_entries: Optional[int] = None) -> None:
    global _WORKER_RUNNER
    from repro.bench.runner import BenchmarkConfig, BenchmarkRunner

    # On fork-start platforms the child inherits the parent's process-default
    # sink (including any open JsonlSink file descriptor); the parent already
    # emits every trial's events itself, so a worker emitting too would
    # double-count each trial.  Telemetry is parent-side only in pool runs.
    telemetry.set_default_sink(None)
    _WORKER_RUNNER = BenchmarkRunner(BenchmarkConfig(
        trials=trials, seed=seed, dmi=dmi_config, cache_dir=cache_dir,
        cache_max_entries=cache_max_entries))


def _worker_run(payload: Dict[str, object]) -> Dict[str, object]:
    assert _WORKER_RUNNER is not None, "worker pool used before initialization"
    result = _WORKER_RUNNER.run_spec(TrialSpec.from_dict(payload))
    return result.as_dict()


class ParallelExecutor(Executor):
    """Fans trials out over worker processes; output matches serial exactly.

    Requirements beyond :class:`SerialExecutor`: every spec must reference a
    registry task (:func:`repro.bench.tasks.task_by_id`) and a Table 3
    setting key, because workers re-resolve both by name in a fresh process.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def run(self, runner: "BenchmarkRunner", specs: Sequence[TrialSpec],
            progress: Optional[ProgressCallback] = None) -> List[SessionResult]:
        from repro.bench.runner import setting_by_key
        from repro.bench.tasks import task_by_id
        from repro.dmi.cache import ArtifactCache

        specs = list(specs)
        if not specs:
            return []
        apps = set()
        for task_id, setting_key in {(s.task_id, s.setting_key) for s in specs}:
            try:
                registry_task = task_by_id(task_id)
                registry_setting = setting_by_key(setting_key)
            except KeyError as error:
                raise ValueError(
                    "ParallelExecutor workers resolve tasks and settings by "
                    f"name in fresh processes; {error} is not in the registry. "
                    "Use SerialExecutor for ad-hoc tasks/settings.") from error
            parent_task = runner._resolve_task(task_id)
            if parent_task != registry_task:
                raise ValueError(
                    f"task {task_id!r} was customized away from its registry "
                    "definition; workers would run the registry version, "
                    "breaking serial/parallel equivalence. Use SerialExecutor "
                    "for customized tasks.")
            parent_setting = runner._resolve_setting(setting_key)
            if parent_setting != registry_setting:
                raise ValueError(
                    f"setting {setting_key!r} was customized away from its "
                    "registry definition; workers would run the registry "
                    "version, breaking serial/parallel equivalence. Use "
                    "SerialExecutor for customized settings.")
            apps.add(registry_task.app)

        # A scratch directory is only needed when no persistent cache is
        # configured; with a cache_dir, workers share the runner's own cache
        # (and its hit/miss counters stay authoritative).
        scratch: Optional[tempfile.TemporaryDirectory] = None
        try:
            if runner.config.cache_dir is not None and runner.cache is not None:
                cache_dir = runner.config.cache_dir
                cache = runner.cache
            else:
                scratch = tempfile.TemporaryDirectory(prefix="repro-cache-")
                cache_dir = scratch.name
                cache = ArtifactCache(
                    cache_dir, runner.config.dmi,
                    max_entries=runner.config.cache_max_entries)
            # Pre-warm the on-disk cache from the parent so the rip phase
            # runs (at most) once per app instead of once per worker.  The
            # pre-warm goes through the cache's own load_or_build so warm
            # entries count as hits and fresh rips as misses.
            for app_name in sorted(apps):
                in_memory = runner._artifacts.get(app_name)
                if in_memory is not None:
                    # Already ripped in this process; persist for the
                    # workers without re-building.
                    if not cache.path_for(app_name).exists():
                        cache.store(app_name, in_memory)
                else:
                    runner._artifacts[app_name] = cache.load_or_build(app_name)
            results: List[Optional[SessionResult]] = [None] * len(specs)
            # Trials execute in worker processes whose default sinks are
            # reset to null by _worker_init, so the parent emits the trial
            # events: started at submit, finished per completion.  Real
            # per-trial seconds are unknown here (the worker ran them) and
            # reported as None so the trial_seconds timer stays honest; the
            # simulated wall clock and plan/act phases come from the result
            # and match what a serial run would have emitted.
            sink = telemetry.resolve(runner.sink)
            # Trace contexts are parent-side too: each trial gets its
            # deterministic trace (parented to the ambient span, e.g. a
            # shard lease, when one is active) and the finished event
            # carries submit-to-completion elapsed as the span duration.
            spans: Dict[int, Tuple[tracectx.SpanContext, float]] = {}
            with ProcessPoolExecutor(
                    max_workers=self.jobs, initializer=_worker_init,
                    initargs=(runner.config.trials, runner.config.seed,
                              runner.config.dmi, str(cache_dir),
                              runner.config.cache_max_entries)) as pool:
                futures = {}
                for index, spec in enumerate(specs):
                    if sink:
                        ctx = tracectx.trial_context(spec, tracectx.current())
                        spans[index] = (ctx, time.perf_counter())
                        sink.emit(ctx.attach(TrialStarted(
                            task_id=spec.task_id,
                            setting_key=spec.setting_key,
                            trial=spec.trial)))
                    futures[pool.submit(_worker_run, spec.as_dict())] = index
                completed = 0
                for future in as_completed(futures):
                    index = futures[future]
                    result = SessionResult.from_dict(future.result())
                    results[index] = result
                    completed += 1
                    if sink:
                        spec = specs[index]
                        ctx, submitted = spans[index]
                        sink.emit(ctx.attach(TrialFinished(
                            task_id=spec.task_id, setting_key=spec.setting_key,
                            trial=spec.trial, success=result.success,
                            seconds=None, wall_s=result.wall_time_s,
                            phases=phases_from_result(result)),
                            duration_s=time.perf_counter() - submitted))
                    if progress is not None:
                        progress(ProgressEvent(completed=completed, total=len(specs),
                                               spec=specs[index], result=result))
        finally:
            if scratch is not None:
                scratch.cleanup()
        return results  # type: ignore[return-value]
