"""The benchmark task suite.

27 single-application scenarios modelled on the OSWorld-W (Windows) subset
the paper evaluates: 9 tasks each for the Word-, Excel- and PowerPoint-like
applications, spanning text editing, tabular manipulation and graphics.
Every task carries

* the natural-language instruction,
* the oracle intent decomposition the policy simulator starts from,
* a programmatic checker over the final application state,
* difficulty metadata (semantic difficulty, ambiguity, the policy-failure
  cause a misunderstanding is recorded under, whether the task needs
  observation or composite interaction).

Checkers receive the live :class:`repro.apps.base.Application` instance and
must be pure reads — they never mutate state.
"""

from __future__ import annotations

from typing import List

from repro.apps.excel import ExcelApp
from repro.apps.powerpoint import PowerPointApp
from repro.apps.word import WordApp
from repro.spec import FailureCause, Intent, IntentKind, TaskSpec

# ----------------------------------------------------------------------
# Word checkers
# ----------------------------------------------------------------------
def _word_doc(app: WordApp):
    return app.document


def check_word_italic_revenue(app: WordApp) -> bool:
    doc = _word_doc(app)
    return (doc.paragraphs[2].format.italic
            and not doc.paragraphs[4].format.italic)


def check_word_landscape(app: WordApp) -> bool:
    return _word_doc(app).page_orientation == "landscape"


def check_word_replace_risk(app: WordApp) -> bool:
    text = _word_doc(app).full_text().lower()
    return "risk" not in text and "threat" in text


def check_word_font_arial(app: WordApp) -> bool:
    return all(p.format.font == "Arial" for p in _word_doc(app).paragraphs)


def check_word_quote_style(app: WordApp) -> bool:
    doc = _word_doc(app)
    return doc.paragraphs[5].format.style == "Quote" and \
        doc.paragraphs[4].format.style != "Quote"


def check_word_margins(app: WordApp) -> bool:
    margins = _word_doc(app).margins
    return abs(margins["top"] - 3.0) < 1e-6 and abs(margins["bottom"] - 3.0) < 1e-6


def check_word_footer(app: WordApp) -> bool:
    return _word_doc(app).footer_text == "Confidential"


def check_word_track_changes(app: WordApp) -> bool:
    return _word_doc(app).tracked_changes is True


def check_word_red_heading(app: WordApp) -> bool:
    doc = _word_doc(app)
    return doc.paragraphs[6].format.color == "Red" and doc.paragraphs[0].format.color != "Red"


# ----------------------------------------------------------------------
# Excel checkers
# ----------------------------------------------------------------------
def _sheet(app: ExcelApp):
    return app.workbook.active_sheet


def check_excel_b10(app: ExcelApp) -> bool:
    return _sheet(app).get_value("B10") == 500.0


def check_excel_sum_units(app: ExcelApp) -> bool:
    value = _sheet(app).get_value("C10")
    return isinstance(value, float) and abs(value - 2095.0) < 1e-6


def check_excel_bold_header(app: ExcelApp) -> bool:
    sheet = _sheet(app)
    return all(sheet.cell(f"{col}1").format.bold for col in "ABCDE")


def check_excel_conditional_format(app: ExcelApp) -> bool:
    sheet = _sheet(app)
    for rule in sheet.conditional_formats:
        if rule.operator == "greater_than" and abs(rule.threshold - 50000.0) < 1e-6:
            return sheet.conditional_fill_for("E2") is not None
    return False


def check_excel_sorted_by_region(app: ExcelApp) -> bool:
    sheet = _sheet(app)
    regions = [sheet.get_value(f"A{row}") for row in range(2, 10)]
    return regions == sorted(regions, key=lambda r: str(r).lower())


def check_excel_freeze_top_row(app: ExcelApp) -> bool:
    sheet = _sheet(app)
    return sheet.frozen_rows == 1 and sheet.frozen_columns == 0


def check_excel_column_chart(app: ExcelApp) -> bool:
    return any("Column" in chart.chart_type for chart in _sheet(app).charts)


def check_excel_currency_prices(app: ExcelApp) -> bool:
    sheet = _sheet(app)
    return all(sheet.cell(f"D{row}").format.number_format == "Currency"
               for row in range(2, 10))


def check_excel_bold_top_product(app: ExcelApp) -> bool:
    sheet = _sheet(app)
    return sheet.cell("B7").format.bold and not sheet.cell("B3").format.bold


# ----------------------------------------------------------------------
# PowerPoint checkers
# ----------------------------------------------------------------------
def _deck(app: PowerPointApp):
    return app.presentation


def check_ppt_blue_background(app: PowerPointApp) -> bool:
    deck = _deck(app)
    return all(slide.background.color == "Blue" and slide.background.fill_type == "solid"
               for slide in deck.slides)


def check_ppt_scrolled_to_end(app: PowerPointApp) -> bool:
    return _deck(app).scroll_percent >= 70.0


def check_ppt_two_content_slide(app: PowerPointApp) -> bool:
    deck = _deck(app)
    return deck.slide_count() >= 6 and any(s.layout == "Two Content" for s in deck.slides)


def check_ppt_fade_everywhere(app: PowerPointApp) -> bool:
    return all(s.transition.effect == "Fade" for s in _deck(app).slides)


def check_ppt_text_box_added(app: PowerPointApp) -> bool:
    return any(shape.text == "New text box" for slide in _deck(app).slides
               for shape in slide.shapes)


def check_ppt_slide_hidden(app: PowerPointApp) -> bool:
    return any(slide.hidden for slide in _deck(app).slides)


def check_ppt_notes(app: PowerPointApp) -> bool:
    return any("thank the team" in slide.notes.lower() for slide in _deck(app).slides)


def check_ppt_standard_size(app: PowerPointApp) -> bool:
    return _deck(app).slide_size == "4:3"


def check_ppt_subtitle_gold(app: PowerPointApp) -> bool:
    shape = _deck(app).slides[0].shape_named("Subtitle")
    return shape is not None and shape.format.fill_color == "Gold"


# ----------------------------------------------------------------------
# task definitions
# ----------------------------------------------------------------------
def _word_tasks() -> List[TaskSpec]:
    return [
        TaskSpec(
            task_id="word-01-italic-revenue",
            app="word",
            instruction="Italicize the paragraph that describes revenue growth.",
            intents=(
                Intent(IntentKind.SELECT_PARAGRAPHS, target="Document", select_range=(2, 2)),
                Intent(IntentKind.ACCESS, target="Italic", scope_hint="Font",
                       distractors=("Bold", "Underline")),
            ),
            checker=check_word_italic_revenue,
            semantic_difficulty=1.0,
            policy_failure_cause=FailureCause.SUBTLE_SEMANTICS,
            tags=("formatting", "selection"),
        ),
        TaskSpec(
            task_id="word-02-landscape",
            app="word",
            instruction="Set the page orientation to landscape.",
            intents=(
                Intent(IntentKind.ACCESS, target="Landscape", scope_hint="Orientation",
                       distractors=("Portrait",)),
            ),
            checker=check_word_landscape,
            semantic_difficulty=0.5,
            policy_failure_cause=FailureCause.SUBTLE_SEMANTICS,
            tags=("page-setup",),
        ),
        TaskSpec(
            task_id="word-03-replace-risk",
            app="word",
            instruction="Replace every occurrence of 'risk' with 'threat' in the document.",
            intents=(
                Intent(IntentKind.ACCESS_INPUT, target="Find what (Replace)",
                       scope_hint="Find and Replace", text="risk"),
                Intent(IntentKind.ACCESS_INPUT, target="Replace with",
                       scope_hint="Find and Replace", text="threat"),
                Intent(IntentKind.ACCESS, target="Replace All", scope_hint="Find and Replace",
                       distractors=("Find Next",)),
            ),
            checker=check_word_replace_risk,
            semantic_difficulty=1.1,
            policy_failure_cause=FailureCause.CONTROL_SEMANTICS,
            tags=("dialog", "editing"),
        ),
        TaskSpec(
            task_id="word-04-font-arial",
            app="word",
            instruction="Change the font of the whole document to Arial.",
            intents=(
                Intent(IntentKind.SELECT_PARAGRAPHS, target="Document", select_range=(0, 7)),
                Intent(IntentKind.ACCESS, target="Arial", scope_hint="Font",
                       distractors=("Arial Black", "Arial Narrow")),
            ),
            checker=check_word_font_arial,
            semantic_difficulty=1.0,
            policy_failure_cause=FailureCause.SUBTLE_SEMANTICS,
            tags=("formatting", "large-enumeration"),
        ),
        TaskSpec(
            task_id="word-05-quote-style",
            app="word",
            instruction="Apply the Quote style to the paragraph about mitigation plans.",
            intents=(
                Intent(IntentKind.SELECT_PARAGRAPHS, target="Document", select_range=(5, 5)),
                Intent(IntentKind.ACCESS, target="Quote", scope_hint="Styles",
                       distractors=("Intense Quote", "Emphasis")),
            ),
            checker=check_word_quote_style,
            semantic_difficulty=1.2,
            ambiguous=True,
            policy_failure_cause=FailureCause.AMBIGUOUS_TASK,
            tags=("styles", "selection"),
        ),
        TaskSpec(
            task_id="word-06-custom-margins",
            app="word",
            instruction="Set the top and bottom page margins to 3 centimetres.",
            intents=(
                Intent(IntentKind.ACCESS_INPUT, target="Top margin", scope_hint="Page Setup",
                       text="3.0"),
                Intent(IntentKind.ACCESS_INPUT, target="Bottom margin", scope_hint="Page Setup",
                       text="3.0"),
                Intent(IntentKind.ACCESS, target="OK", scope_hint="Page Setup",
                       distractors=("Cancel",)),
            ),
            checker=check_word_margins,
            semantic_difficulty=1.1,
            policy_failure_cause=FailureCause.CONTROL_SEMANTICS,
            tags=("dialog", "page-setup"),
        ),
        TaskSpec(
            task_id="word-07-footer",
            app="word",
            instruction="Add a footer with the text 'Confidential'.",
            intents=(
                Intent(IntentKind.ACCESS_INPUT, target="Footer text", scope_hint="Footer",
                       text="Confidential"),
            ),
            checker=check_word_footer,
            semantic_difficulty=0.9,
            policy_failure_cause=FailureCause.SUBTLE_SEMANTICS,
            tags=("dialog",),
        ),
        TaskSpec(
            task_id="word-08-track-changes",
            app="word",
            instruction="Turn on Track Changes for this document.",
            intents=(
                Intent(IntentKind.ACCESS, target="Track Changes", scope_hint="Review",
                       distractors=("Accept All Changes",)),
            ),
            checker=check_word_track_changes,
            semantic_difficulty=0.5,
            policy_failure_cause=FailureCause.SUBTLE_SEMANTICS,
            tags=("review",),
        ),
        TaskSpec(
            task_id="word-09-red-heading",
            app="word",
            instruction="Color the Outlook heading text red.",
            intents=(
                Intent(IntentKind.SELECT_PARAGRAPHS, target="Document", select_range=(6, 6)),
                Intent(IntentKind.ACCESS, target="Red", scope_hint="Font Color",
                       distractors=("Dark Red", "Standard Red")),
            ),
            checker=check_word_red_heading,
            semantic_difficulty=1.2,
            policy_failure_cause=FailureCause.CONTROL_SEMANTICS,
            tags=("formatting", "path-dependence"),
        ),
    ]


def _excel_tasks() -> List[TaskSpec]:
    return [
        TaskSpec(
            task_id="excel-01-enter-value",
            app="excel",
            instruction="Enter the value 500 in cell B10.",
            intents=(
                Intent(IntentKind.ACCESS_INPUT, target="Name Box", text="B10"),
                Intent(IntentKind.SHORTCUT, text="enter"),
                Intent(IntentKind.ACCESS_INPUT, target="Formula Bar", text="500"),
                Intent(IntentKind.SHORTCUT, text="enter"),
            ),
            checker=check_excel_b10,
            semantic_difficulty=0.6,
            policy_failure_cause=FailureCause.SUBTLE_SEMANTICS,
            tags=("data-entry", "commit-with-enter"),
        ),
        TaskSpec(
            task_id="excel-02-sum-units",
            app="excel",
            instruction="Add a total below the Units column using AutoSum.",
            intents=(
                Intent(IntentKind.ACCESS_INPUT, target="Name Box", text="C2:C9"),
                Intent(IntentKind.SHORTCUT, text="enter"),
                Intent(IntentKind.ACCESS, target="Sum", scope_hint="AutoSum",
                       distractors=("Average", "Count Numbers")),
            ),
            checker=check_excel_sum_units,
            semantic_difficulty=1.0,
            policy_failure_cause=FailureCause.SUBTLE_SEMANTICS,
            tags=("formulas",),
        ),
        TaskSpec(
            task_id="excel-03-bold-header",
            app="excel",
            instruction="Make the header row bold.",
            intents=(
                Intent(IntentKind.ACCESS_INPUT, target="Name Box", text="A1:E1"),
                Intent(IntentKind.SHORTCUT, text="enter"),
                Intent(IntentKind.ACCESS, target="Bold", scope_hint="Home",
                       distractors=("Italic",)),
            ),
            checker=check_excel_bold_header,
            semantic_difficulty=0.8,
            policy_failure_cause=FailureCause.SUBTLE_SEMANTICS,
            tags=("formatting",),
        ),
        TaskSpec(
            task_id="excel-04-conditional-format",
            app="excel",
            instruction="Highlight revenue values greater than 50000 using conditional formatting.",
            intents=(
                Intent(IntentKind.ACCESS_INPUT, target="Name Box", text="E2:E9"),
                Intent(IntentKind.SHORTCUT, text="enter"),
                Intent(IntentKind.ACCESS_INPUT, target="Format cells that are",
                       scope_hint="Greater Than", text="50000"),
                Intent(IntentKind.ACCESS, target="OK", scope_hint="Greater Than",
                       distractors=("Cancel",)),
            ),
            checker=check_excel_conditional_format,
            semantic_difficulty=1.4,
            policy_failure_cause=FailureCause.CONTROL_SEMANTICS,
            tags=("dialog", "conditional-formatting"),
        ),
        TaskSpec(
            task_id="excel-05-sort-region",
            app="excel",
            instruction="Sort the data rows by Region from A to Z.",
            intents=(
                Intent(IntentKind.ACCESS_INPUT, target="Name Box", text="A2:E9"),
                Intent(IntentKind.SHORTCUT, text="enter"),
                Intent(IntentKind.ACCESS, target="Sort A to Z", scope_hint="Sort & Filter",
                       distractors=("Sort Z to A",)),
            ),
            checker=check_excel_sorted_by_region,
            semantic_difficulty=1.1,
            ambiguous=True,
            policy_failure_cause=FailureCause.AMBIGUOUS_TASK,
            tags=("data",),
        ),
        TaskSpec(
            task_id="excel-06-freeze-top-row",
            app="excel",
            instruction="Freeze the top row so it stays visible while scrolling.",
            intents=(
                Intent(IntentKind.ACCESS, target="Freeze Top Row", scope_hint="Freeze Panes",
                       distractors=("Freeze Panes", "Freeze First Column")),
            ),
            checker=check_excel_freeze_top_row,
            semantic_difficulty=0.9,
            policy_failure_cause=FailureCause.CONTROL_SEMANTICS,
            tags=("view",),
        ),
        TaskSpec(
            task_id="excel-07-column-chart",
            app="excel",
            instruction="Insert a clustered column chart from the sales data.",
            intents=(
                Intent(IntentKind.ACCESS_INPUT, target="Name Box", text="A1:E9"),
                Intent(IntentKind.SHORTCUT, text="enter"),
                Intent(IntentKind.ACCESS, target="Clustered Column",
                       scope_hint="Insert Column Chart",
                       distractors=("Stacked Column", "Line")),
            ),
            checker=check_excel_column_chart,
            semantic_difficulty=1.0,
            policy_failure_cause=FailureCause.SUBTLE_SEMANTICS,
            tags=("charts",),
        ),
        TaskSpec(
            task_id="excel-08-currency-format",
            app="excel",
            instruction="Format the Unit Price column as currency.",
            intents=(
                Intent(IntentKind.ACCESS_INPUT, target="Name Box", text="D2:D9"),
                Intent(IntentKind.SHORTCUT, text="enter"),
                Intent(IntentKind.ACCESS, target="Currency", scope_hint="Number Format",
                       distractors=("Accounting", "Percentage")),
            ),
            checker=check_excel_currency_prices,
            semantic_difficulty=1.0,
            policy_failure_cause=FailureCause.CONTROL_SEMANTICS,
            tags=("formatting",),
        ),
        TaskSpec(
            task_id="excel-09-bold-top-product",
            app="excel",
            instruction="Find the product with the highest revenue and make its Product cell bold.",
            intents=(
                Intent(IntentKind.OBSERVE, target="Revenue"),
                Intent(IntentKind.SELECT_CONTROLS, control_names=("B7",),
                       distractors=("B3", "B6")),
                Intent(IntentKind.ACCESS, target="Bold", scope_hint="Home",
                       distractors=("Italic",)),
            ),
            checker=check_excel_bold_top_product,
            semantic_difficulty=1.3,
            requires_observation=True,
            policy_failure_cause=FailureCause.VISUAL_SEMANTIC,
            tags=("observation", "formatting"),
        ),
    ]


def _powerpoint_tasks() -> List[TaskSpec]:
    return [
        TaskSpec(
            task_id="ppt-01-blue-background",
            app="powerpoint",
            instruction="Make the background blue on all slides.",
            intents=(
                Intent(IntentKind.ACCESS, target="Solid fill", scope_hint="Format Background"),
                Intent(IntentKind.ACCESS, target="Blue", scope_hint="Fill Color",
                       distractors=("Light Blue", "Dark Blue")),
                Intent(IntentKind.ACCESS, target="Apply to All", scope_hint="Format Background",
                       distractors=("Reset Background",)),
            ),
            checker=check_ppt_blue_background,
            semantic_difficulty=1.0,
            policy_failure_cause=FailureCause.SUBTLE_SEMANTICS,
            tags=("paper-task-1", "background"),
        ),
        TaskSpec(
            task_id="ppt-02-scroll-to-end",
            app="powerpoint",
            instruction="Show the area of the deck close to the end.",
            intents=(
                Intent(IntentKind.SET_SCROLLBAR, target="Vertical Scroll Bar", value=80.0),
            ),
            checker=check_ppt_scrolled_to_end,
            semantic_difficulty=0.8,
            uses_composite_interaction=True,
            policy_failure_cause=FailureCause.SUBTLE_SEMANTICS,
            tags=("paper-task-2", "scroll"),
        ),
        TaskSpec(
            task_id="ppt-03-two-content-slide",
            app="powerpoint",
            instruction="Add a new slide that uses the Two Content layout.",
            intents=(
                Intent(IntentKind.ACCESS, target="Two Content", scope_hint="New Slide",
                       distractors=("Comparison", "Title and Content")),
            ),
            checker=check_ppt_two_content_slide,
            semantic_difficulty=1.0,
            policy_failure_cause=FailureCause.CONTROL_SEMANTICS,
            tags=("slides",),
        ),
        TaskSpec(
            task_id="ppt-04-fade-transition-all",
            app="powerpoint",
            instruction="Apply the Fade transition to every slide.",
            intents=(
                Intent(IntentKind.ACCESS, target="Fade", scope_hint="Transition Effects",
                       distractors=("Push", "Wipe")),
                Intent(IntentKind.ACCESS, target="Apply To All", scope_hint="Transitions",
                       distractors=("On Mouse Click",)),
            ),
            checker=check_ppt_fade_everywhere,
            semantic_difficulty=1.1,
            policy_failure_cause=FailureCause.SUBTLE_SEMANTICS,
            tags=("transitions",),
        ),
        TaskSpec(
            task_id="ppt-05-insert-text-box",
            app="powerpoint",
            instruction="Insert a text box on the current slide.",
            intents=(
                Intent(IntentKind.ACCESS, target="Text Box", scope_hint="Insert",
                       distractors=("WordArt",)),
            ),
            checker=check_ppt_text_box_added,
            semantic_difficulty=0.7,
            policy_failure_cause=FailureCause.SUBTLE_SEMANTICS,
            tags=("shapes",),
        ),
        TaskSpec(
            task_id="ppt-06-hide-slide",
            app="powerpoint",
            instruction="Hide the current slide so it is skipped during the slide show.",
            intents=(
                Intent(IntentKind.ACCESS, target="Hide Slide", scope_hint="Slide Show",
                       distractors=("From Current Slide",)),
            ),
            checker=check_ppt_slide_hidden,
            semantic_difficulty=0.9,
            policy_failure_cause=FailureCause.CONTROL_SEMANTICS,
            tags=("slideshow",),
        ),
        TaskSpec(
            task_id="ppt-07-speaker-notes",
            app="powerpoint",
            instruction="Add the speaker note 'Remember to thank the team' to the current slide.",
            intents=(
                Intent(IntentKind.ACCESS_INPUT, target="Notes",
                       text="Remember to thank the team"),
            ),
            checker=check_ppt_notes,
            semantic_difficulty=0.9,
            policy_failure_cause=FailureCause.SUBTLE_SEMANTICS,
            tags=("notes",),
        ),
        TaskSpec(
            task_id="ppt-08-standard-size",
            app="powerpoint",
            instruction="Change the slide size to Standard (4:3).",
            intents=(
                Intent(IntentKind.ACCESS, target="Standard (4:3)", scope_hint="Slide Size",
                       distractors=("Widescreen (16:9)",)),
            ),
            checker=check_ppt_standard_size,
            semantic_difficulty=0.8,
            policy_failure_cause=FailureCause.SUBTLE_SEMANTICS,
            tags=("design",),
        ),
        TaskSpec(
            task_id="ppt-09-subtitle-gold-fill",
            app="powerpoint",
            instruction="Give the subtitle text box on the title slide a gold fill.",
            intents=(
                Intent(IntentKind.SELECT_CONTROLS, control_names=("Subtitle",),
                       distractors=("Title",)),
                Intent(IntentKind.ACCESS, target="Gold", scope_hint="Shape Fill",
                       distractors=("Yellow", "Orange")),
            ),
            checker=check_ppt_subtitle_gold,
            semantic_difficulty=1.3,
            ambiguous=True,
            policy_failure_cause=FailureCause.AMBIGUOUS_TASK,
            tags=("shapes", "contextual"),
        ),
    ]


def all_tasks() -> List[TaskSpec]:
    """The complete 27-task suite (Word, Excel, PowerPoint)."""
    return _word_tasks() + _excel_tasks() + _powerpoint_tasks()


def tasks_for_app(app: str) -> List[TaskSpec]:
    """All tasks targeting one application ("word" | "excel" | "powerpoint")."""
    return [t for t in all_tasks() if t.app == app]


def task_by_id(task_id: str) -> TaskSpec:
    """Look up a task anywhere in this build's registry.

    ``syn:<token>:NNNN`` ids belong to generated suites: the token encodes
    the full generator spec, so the task is regenerated (memoized, O(1) on
    repeat) rather than searched — which is what lets shard/broker workers
    resolve synthetic grids from ids alone.
    """
    if task_id.startswith("syn:"):
        from repro.apps.synthetic import synthetic_task

        return synthetic_task(task_id)
    for task in all_tasks():
        if task.task_id == task_id:
            return task
    raise KeyError(f"unknown task id {task_id!r}")
