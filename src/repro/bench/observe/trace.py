"""Deterministic trace correlation across the worker/broker/store layers.

One trial's journey — submit → lease → rip/cache → act → post → collect —
crosses three processes (submitter, worker, collector) and five possible
execution paths.  This module makes that journey reconstructable from
merged JSONL without any runtime coordination, by deriving every id from
the same identity fields that already make the paths byte-identical:

``trial`` traces
    :func:`trial_trace_id` hashes ``seed|task_id|setting_key|trial`` — the
    exact tuple :func:`repro.bench.engine.trial_seed` derives the trial's
    RNG seed from — so a trial has the *same* trace id whether it ran
    serially, in a process pool, from a shard file, or off either broker.
``shard`` traces
    :func:`manifest_trace_id` hashes the manifest's plan-identity fields
    plus its shard index, so submitter and every worker agree without
    storing an id in the (format-versioned) manifest JSON.
``plan`` traces
    :func:`plan_trace_id` adds the broker-side plan *name* to the plan
    identity, so two tenants submitting the same grid under different
    names stay distinguishable.

Span ids are derived, not random (:func:`span_id_for`), so structurally
related events agree on ids across processes: a worker's lease span and
the trial spans executed under it link up by construction.  Parent links
may cross trace boundaries (trial → shard → plan); :func:`build_trace`
follows that closure, which is exactly how ``repro trace show TRACE_ID``
pulls a trial's submit/lease/post/collect context into one timeline.

The ambient context is a *thread-local* span stack (:func:`push` /
:func:`pop` / :func:`current`): instrumented seams push their span around
nested work so leaf events (``store_retry`` inside a broker post,
``cache_hit`` inside a trial's rip phase) adopt the right parent via
:func:`leaf`.  Heartbeat threads get their context passed explicitly —
thread-locals don't cross threads, by design.

Nothing here runs when telemetry is off: every caller already guards with
``if sink:``, so with the NullSink no hash, no stack push and no
``time.time()`` call ever happens (the overhead guard in
``benchmarks/test_telemetry_overhead.py`` pins that contract).
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bench.telemetry import TelemetryEvent


class ObserveError(ValueError):
    """Trace/fleet input is unreadable or structurally invalid."""


#: Hex digits kept from the sha256; 64 bits of id space is plenty for a
#: benchmark fleet and keeps JSONL lines and rendered timelines readable.
_ID_HEX = 16


def _derive(*parts: object) -> str:
    text = "|".join(str(part) for part in parts)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:_ID_HEX]


def trial_trace_id(spec) -> str:
    """The deterministic trace id of one trial.

    ``spec`` is duck-typed (``task_id``/``setting_key``/``trial``/``seed``,
    i.e. a :class:`~repro.bench.engine.TrialSpec`).  Because ``seed`` is
    itself derived from the run seed and the spec identity, the id is
    byte-identical across all five execution paths for the same run.
    """
    return _derive("trial", spec.seed, spec.task_id, spec.setting_key,
                   spec.trial)


def manifest_trace_id(manifest) -> str:
    """The deterministic trace id of one shard manifest (duck-typed)."""
    return _derive("shard", manifest.seed, manifest.trials,
                   manifest.fingerprint, manifest.shard_count,
                   ",".join(manifest.setting_keys),
                   ",".join(manifest.task_ids), manifest.shard_index)


def plan_trace_id(name: str, manifest) -> str:
    """The deterministic trace id of one named plan submission.

    Derived from the plan *name* plus the plan-identity fields every
    manifest replicates, so the submitter (holding the plan), a worker
    (holding one lease) and the collector (holding posted results) all
    derive it independently.
    """
    return _derive("plan", name, manifest.seed, manifest.trials,
                   manifest.fingerprint, manifest.shard_count,
                   ",".join(manifest.setting_keys),
                   ",".join(manifest.task_ids))


def span_id_for(trace_id: str, name: str, qualifier: object = "") -> str:
    """A span id derived from its trace, name and disambiguator.

    Derivation (not randomness) is what lets separate processes agree on
    structural spans — e.g. every worker knows the plan's ``submit`` span
    id without having seen the submit happen.
    """
    return _derive("span", trace_id, name, qualifier)


@dataclass(frozen=True)
class SpanContext:
    """One span's coordinates; attach to events via :meth:`attach`."""

    trace_id: str
    span_id: str
    parent_span_id: str = ""

    def child(self, name: str, qualifier: object = "") -> "SpanContext":
        """A child span in the same trace."""
        return SpanContext(
            trace_id=self.trace_id,
            span_id=span_id_for(self.trace_id, name, qualifier),
            parent_span_id=self.span_id)

    def attach(self, event: TelemetryEvent,
               duration_s: Optional[float] = None) -> TelemetryEvent:
        """Stamp ``event`` as *this* span (wall-clock ``ts`` included)."""
        return event.with_trace(
            trace_id=self.trace_id, span_id=self.span_id,
            parent_span_id=self.parent_span_id, duration_s=duration_s,
            ts=time.time())


def trial_context(spec, parent: Optional["SpanContext"] = None) -> SpanContext:
    """The root span of one trial's trace, optionally linked to the
    ambient span (a worker's lease span) it executes under."""
    trace_id = trial_trace_id(spec)
    return SpanContext(
        trace_id=trace_id,
        span_id=span_id_for(trace_id, "trial"),
        parent_span_id=parent.span_id if parent is not None else "")


def plan_context(name: str, manifest) -> SpanContext:
    """The plan trace's root (``submit``) span.

    Derivable by any process holding the plan name and *any* one of its
    manifests — which is how a worker's lease span and a collector's
    collect span link to a submit they never saw happen.
    """
    trace_id = plan_trace_id(name, manifest)
    return SpanContext(trace_id=trace_id,
                       span_id=span_id_for(trace_id, "submit"))


def shard_context(plan_name: str, manifest, name: str,
                  qualifier: object = "") -> SpanContext:
    """A shard-trace span parented (cross-trace) to the plan submit span.

    The parent link crossing from the shard trace into the plan trace is
    what lets :func:`build_trace` pull a trial's submit/collect context
    into its timeline without any id ever being stored.
    """
    trace_id = manifest_trace_id(manifest)
    return SpanContext(
        trace_id=trace_id,
        span_id=span_id_for(trace_id, name, qualifier),
        parent_span_id=plan_context(plan_name, manifest).span_id)


# ----------------------------------------------------------------------
# the ambient (thread-local) span stack
# ----------------------------------------------------------------------
_STACK = threading.local()


def current() -> Optional[SpanContext]:
    """The innermost active span on this thread, if any."""
    stack = getattr(_STACK, "spans", None)
    return stack[-1] if stack else None


def push(ctx: SpanContext) -> SpanContext:
    """Activate ``ctx`` on this thread; pair with :func:`pop`."""
    stack = getattr(_STACK, "spans", None)
    if stack is None:
        stack = _STACK.spans = []
    stack.append(ctx)
    return ctx


def pop(ctx: SpanContext) -> None:
    """Deactivate ``ctx``; tolerant of a mismatched stack (an exception
    may have unwound past an inner pop) by removing the newest match."""
    stack = getattr(_STACK, "spans", None)
    if not stack:
        return
    if stack[-1] == ctx:
        stack.pop()
        return
    for index in range(len(stack) - 1, -1, -1):
        if stack[index] == ctx:
            del stack[index]
            return


def leaf(event: TelemetryEvent, name: Optional[str] = None,
         qualifier: object = "",
         duration_s: Optional[float] = None) -> TelemetryEvent:
    """Stamp ``event`` as a leaf span under the ambient context.

    With no ambient context the event still gets a wall-clock ``ts`` (so
    merged timelines sort) but no trace fields — a serial run's cache
    events, for example, adopt the trial context that run_spec pushed,
    while a bare ``ArtifactCache`` call stays untraced.
    """
    ctx = current()
    if ctx is not None:
        span = span_id_for(ctx.trace_id, name or event.name, qualifier)
        return event.with_trace(trace_id=ctx.trace_id, span_id=span,
                                parent_span_id=ctx.span_id,
                                duration_s=duration_s, ts=time.time())
    return event.with_trace(duration_s=duration_s, ts=time.time())


# ----------------------------------------------------------------------
# reconstruction
# ----------------------------------------------------------------------
@dataclass
class Trace:
    """One reconstructed trace: the requested id plus its linked closure.

    ``events`` is every event whose trace is in the closure, in timeline
    order (wall-clock ``ts``, then file order for ties — ts is stamped by
    independent machines, so ordering across hosts is approximate by
    nature).  ``trace_ids`` is the closure itself: a trial trace links up
    to its shard trace (via the lease-span parent) and the shard to its
    plan trace (via the submit-span parent).
    """

    trace_id: str
    trace_ids: Tuple[str, ...] = ()
    events: List[Dict[str, object]] = field(default_factory=list)

    def event_names(self) -> set:
        return {str(event.get("event", "")) for event in self.events}

    def spans(self) -> Dict[str, List[Dict[str, object]]]:
        """Events grouped by span id (one span may carry several events,
        e.g. ``trial_started`` and ``trial_finished``)."""
        grouped: Dict[str, List[Dict[str, object]]] = {}
        for event in self.events:
            span = str(event.get("span_id", ""))
            grouped.setdefault(span, []).append(event)
        return grouped

    def as_dict(self) -> Dict[str, object]:
        return {"trace_id": self.trace_id,
                "trace_ids": list(self.trace_ids),
                "events": [dict(event) for event in self.events]}


def build_trace(events: Iterable[Dict[str, object]],
                trace_id: str) -> Trace:
    """Reconstruct ``trace_id``'s timeline from merged JSONL event dicts.

    Follows parent-span links across trace boundaries to a fixed point:
    starting from the requested trace, any included event whose parent
    span lives in another trace pulls that trace into the closure.  For a
    trial trace this closure is exactly its submit → lease → post →
    collect context; unrelated trials (which link *into* the shard trace
    but are not linked *from* it) stay out.
    """
    ordered = list(events)
    span_owner: Dict[str, str] = {}
    by_trace: Dict[str, List[Tuple[int, Dict[str, object]]]] = {}
    for index, event in enumerate(ordered):
        owner = str(event.get("trace_id", "") or "")
        if not owner:
            continue
        by_trace.setdefault(owner, []).append((index, event))
        span = str(event.get("span_id", "") or "")
        if span:
            span_owner.setdefault(span, owner)
    included = set()
    frontier = [trace_id]
    while frontier:
        trace = frontier.pop()
        if trace in included or trace not in by_trace:
            continue
        included.add(trace)
        for _, event in by_trace[trace]:
            parent = str(event.get("parent_span_id", "") or "")
            owner = span_owner.get(parent)
            if owner is not None and owner not in included:
                frontier.append(owner)
    collected = [pair for trace in included for pair in by_trace[trace]]
    collected.sort(key=lambda pair: (float(pair[1].get("ts") or 0.0),
                                     pair[0]))
    return Trace(trace_id=trace_id,
                 trace_ids=tuple(sorted(included)),
                 events=[event for _, event in collected])


def _depths(events: Sequence[Dict[str, object]]) -> Dict[int, int]:
    """Indent depth per event index, from parent-span chain length."""
    span_depth: Dict[str, int] = {}
    depths: Dict[int, int] = {}
    # Two passes: spans usually appear before their children in timeline
    # order, but clock skew may reorder them — resolve what we can, then
    # default unresolved parents to depth 1.
    for _ in range(2):
        for index, event in enumerate(events):
            span = str(event.get("span_id", ""))
            parent = str(event.get("parent_span_id", "") or "")
            if not parent:
                depth = 0
            elif parent in span_depth:
                depth = span_depth[parent] + 1
            else:
                continue
            depths[index] = depth
            if span:
                span_depth.setdefault(span, depth)
    for index in range(len(events)):
        depths.setdefault(index, 1)
    return depths


def render_trace(trace: Trace) -> str:
    """A human-readable timeline for ``repro trace show``."""
    if not trace.events:
        return f"trace {trace.trace_id}: no events found"
    base = min(float(event.get("ts") or 0.0) for event in trace.events
               if event.get("ts") is not None) if any(
                   event.get("ts") is not None for event in trace.events) \
        else 0.0
    depths = _depths(trace.events)
    lines = [f"trace {trace.trace_id} "
             f"({len(trace.events)} event(s) across "
             f"{len(trace.trace_ids)} linked trace(s))"]
    skip = {"event", "ts", "trace_id", "span_id", "parent_span_id",
            "duration_s", "phases"}
    for index, event in enumerate(trace.events):
        ts = event.get("ts")
        offset = f"+{float(ts) - base:8.3f}s" if ts is not None \
            else " " * 10
        indent = "  " * depths[index]
        detail = " ".join(
            f"{key}={value}" for key, value in event.items()
            if key not in skip)
        duration = event.get("duration_s")
        if duration is not None:
            detail += f" ({float(duration):.3f}s)"
        lines.append(f"{offset} {indent}{event.get('event', '?')} "
                     f"{detail}".rstrip())
    return "\n".join(lines)
