"""Cross-fleet metrics aggregation and the OpenMetrics textfile writer.

PR 7 left one :class:`~repro.bench.telemetry.MetricsSnapshotSink` file per
worker and staleness detection "to the operator".  This module closes
both gaps: :class:`FleetAggregator` merges any number of snapshot files
(and, optionally, live JSONL event tails) into one :class:`FleetGauges`
object — per-plan queue depth, lease churn, retry rates, cache hit
ratios, drain rates and per-worker liveness, each worker flagged stale
when its ``written_at`` stamp is older than ``max_age_s`` — and
:func:`write_promfile` exposes the result in the OpenMetrics/Prometheus
text exposition format (atomic rename, stdlib only), the shape every
node-exporter ``textfile`` collector scrapes.

Merge semantics, made explicit because they differ by kind:

* **Queue gauges** (queued/leased/done per plan) are *broker-global*
  observations every worker repeats — merging takes the freshest
  observer's value, never a sum.  When the caller also has a live
  :class:`~repro.bench.transport.BrokerStatus` (``fleet status`` does),
  :meth:`FleetAggregator.add_broker_status` makes it authoritative.
* **Worker counters** (idle polls, lease churn, retries, cache hits) are
  per-worker facts and *sum* across the fleet.
* **Drain rate** needs history, not a point-in-time file: it is computed
  from timestamped ``queue_depth`` events when an events JSONL is folded
  in via :meth:`FleetAggregator.add_events`.
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.bench.observe.trace import ObserveError
from repro.bench.telemetry import load_metrics_snapshot, read_jsonl_events

#: Counter names folded fleet-wide from worker snapshots (a fixed, ordered
#: vocabulary so the gauges object and the promfile are stable even when a
#: worker never emitted a given kind).
FLEET_COUNTERS = (
    "trial_finished", "lease_acquired", "lease_renewed", "lease_lost",
    "manifest_abandoned", "shard_posted", "store_retry", "cas_retry",
    "cache_hit", "cache_miss", "worker_idle",
)


@dataclass(frozen=True)
class WorkerSnapshot:
    """One worker's snapshot file, parsed and staleness-checked."""

    path: str
    worker_id: str
    schema_version: int
    #: Wall-clock write stamp; file mtime for version-1 snapshots.
    written_at: Optional[float]
    #: Seconds since ``written_at`` at aggregation time.
    age_s: Optional[float]
    #: True when ``age_s`` exceeded the aggregator's ``max_age_s``.
    stale: bool
    plans: Dict[str, Dict[str, object]] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    idle_count: int = 0
    idle_slept_s: float = 0.0
    events: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path, "worker_id": self.worker_id,
            "schema_version": self.schema_version,
            "written_at": self.written_at, "age_s": self.age_s,
            "stale": self.stale, "plans": {name: dict(gauges)
                                           for name, gauges in
                                           self.plans.items()},
            "counters": dict(self.counters),
            "idle": {"count": self.idle_count, "slept_s": self.idle_slept_s},
            "events": self.events,
        }


@dataclass
class FleetGauges:
    """The merged, fleet-wide gauges object ``fleet status`` renders."""

    #: Per-plan ``{queued, leased, done, drained, observed_by, age_s}``.
    plans: Dict[str, Dict[str, object]] = field(default_factory=dict)
    workers: List[WorkerSnapshot] = field(default_factory=list)
    #: Summed per-worker counters, seeded from :data:`FLEET_COUNTERS`.
    counters: Dict[str, int] = field(default_factory=dict)
    idle_count: int = 0
    idle_slept_s: float = 0.0
    #: Per-plan shards/second completion rate from timestamped
    #: ``queue_depth`` samples (only with :meth:`FleetAggregator.add_events`).
    drain_rate: Dict[str, float] = field(default_factory=dict)
    generated_at: float = 0.0

    @property
    def live_workers(self) -> int:
        return sum(1 for worker in self.workers if not worker.stale)

    @property
    def stale_workers(self) -> Tuple[WorkerSnapshot, ...]:
        return tuple(worker for worker in self.workers if worker.stale)

    @property
    def queued(self) -> int:
        return sum(int(gauges.get("queued", 0))
                   for gauges in self.plans.values())

    @property
    def leased(self) -> int:
        return sum(int(gauges.get("leased", 0))
                   for gauges in self.plans.values())

    @property
    def done(self) -> int:
        return sum(int(gauges.get("done", 0))
                   for gauges in self.plans.values())

    @property
    def cache_hit_ratio(self) -> Optional[float]:
        hits = self.counters.get("cache_hit", 0)
        misses = self.counters.get("cache_miss", 0)
        if hits + misses == 0:
            return None
        return hits / (hits + misses)

    def as_dict(self) -> Dict[str, object]:
        return {
            "plans": {name: dict(gauges)
                      for name, gauges in sorted(self.plans.items())},
            "workers": [worker.as_dict() for worker in self.workers],
            "live_workers": self.live_workers,
            "counters": dict(self.counters),
            "idle": {"count": self.idle_count, "slept_s": self.idle_slept_s},
            "cache_hit_ratio": self.cache_hit_ratio,
            "drain_rate": dict(self.drain_rate),
            "generated_at": self.generated_at,
        }

    def render(self) -> str:
        """The fleet table ``repro fleet status`` appends below the
        broker's own queue table."""
        lines = []
        if self.workers:
            width = max(12, max(len(w.worker_id) for w in self.workers))
            header = (f"{'worker':<{width}s} {'age s':>8s} {'events':>7s} "
                      f"{'idle s':>8s} state")
            lines.append(header)
            lines.append("-" * len(header))
            for worker in self.workers:
                age = f"{worker.age_s:8.1f}" if worker.age_s is not None \
                    else f"{'?':>8s}"
                state = "STALE" if worker.stale else "live"
                lines.append(f"{worker.worker_id:<{width}s} {age} "
                             f"{worker.events:>7d} "
                             f"{worker.idle_slept_s:>8.1f} {state}")
        churn = (f"lease churn: {self.counters.get('lease_acquired', 0)} "
                 f"acquired, {self.counters.get('lease_renewed', 0)} "
                 f"renewed, {self.counters.get('lease_lost', 0)} lost")
        retries = (f"retries: {self.counters.get('store_retry', 0)} store, "
                   f"{self.counters.get('cas_retry', 0)} cas")
        lines.append(churn + "; " + retries)
        ratio = self.cache_hit_ratio
        cache = (f"cache: {self.counters.get('cache_hit', 0)} hit(s), "
                 f"{self.counters.get('cache_miss', 0)} miss(es)")
        if ratio is not None:
            cache += f" ({ratio * 100:.0f}% hit ratio)"
        lines.append(cache)
        lines.append(f"worker idle: {self.idle_count} poll(s), "
                     f"{self.idle_slept_s:.1f}s slept")
        drained = sorted(name for name, plan_gauges in self.plans.items()
                         if plan_gauges.get("drained"))
        if drained:
            lines.append(f"drained plans: {', '.join(drained)}")
        for plan, rate in sorted(self.drain_rate.items()):
            lines.append(f"drain rate {plan!r}: {rate:.3f} shard(s)/s")
        return "\n".join(lines)


class FleetAggregator:
    """Merges per-worker snapshots (and event tails) into one gauges view."""

    def __init__(self, max_age_s: Optional[float] = None,
                 clock: Callable[[], float] = time.time) -> None:
        if max_age_s is not None and max_age_s < 0:
            raise ObserveError(f"max_age_s must be >= 0, got {max_age_s}")
        self.max_age_s = max_age_s
        self._clock = clock
        self._workers: List[WorkerSnapshot] = []
        #: Per-plan timestamped (ts, done) samples from queue_depth events.
        self._depth_samples: Dict[str, List[Tuple[float, int]]] = {}
        self._authoritative_plans: Optional[Dict[str, Dict[str, object]]] = None

    # ------------------------------------------------------------------
    # inputs
    # ------------------------------------------------------------------
    def add_snapshot(self, path: Union[str, Path]) -> WorkerSnapshot:
        """Fold one :class:`MetricsSnapshotSink` file in; returns the
        parsed (staleness-flagged) snapshot.  Raises
        :class:`~repro.bench.telemetry.TelemetryError` on bad files or
        unknown schema versions."""
        payload = load_metrics_snapshot(path)
        target = Path(path)
        written_at = payload.get("written_at")
        if written_at is None:
            # Version-1 snapshots predate the stamp; the file mtime is the
            # closest honest signal (rewritten atomically on every update).
            try:
                written_at = target.stat().st_mtime
            except OSError:
                written_at = None
        age_s = (self._clock() - float(written_at)
                 if written_at is not None else None)
        stale = bool(self.max_age_s is not None and age_s is not None
                     and age_s > self.max_age_s)
        idle = payload.get("worker_idle", {})
        idle = idle if isinstance(idle, dict) else {}
        plans = payload.get("plans", {})
        plans = plans if isinstance(plans, dict) else {}
        counters = payload.get("counters", {})
        counters = counters if isinstance(counters, dict) else {}
        snapshot = WorkerSnapshot(
            path=str(target),
            worker_id=str(payload.get("worker_id") or target.stem),
            schema_version=int(payload.get("schema_version", 1)),
            written_at=float(written_at) if written_at is not None else None,
            age_s=age_s, stale=stale,
            plans={str(name): dict(gauges) for name, gauges in plans.items()
                   if isinstance(gauges, dict)},
            counters={str(name): int(count)
                      for name, count in counters.items()},
            idle_count=int(idle.get("count", 0)),
            idle_slept_s=float(idle.get("slept_s", 0.0)),
            events=int(payload.get("events", 0)))
        self._workers.append(snapshot)
        return snapshot

    def add_events(self, path: Union[str, Path]) -> int:
        """Fold a live JSONL tail in for drain-rate windows; returns the
        number of timestamped ``queue_depth`` samples found."""
        samples = 0
        for event in read_jsonl_events(path):
            if event.get("event") != "queue_depth":
                continue
            ts = event.get("ts")
            if ts is None:
                continue
            plan = str(event.get("plan", ""))
            self._depth_samples.setdefault(plan, []).append(
                (float(ts), int(event.get("done", 0))))
            samples += 1
        return samples

    def add_broker_status(self, status) -> None:
        """Make a live broker's own counters authoritative for the
        per-plan queue gauges (worker snapshots then only contribute
        liveness and counters).  ``status`` is duck-typed
        (:class:`~repro.bench.transport.BrokerStatus`)."""
        self._authoritative_plans = {
            plan.name: {"queued": plan.queued, "leased": plan.leased,
                        "done": plan.done, "drained": plan.drained,
                        "observed_by": "broker", "age_s": 0.0}
            for plan in status.plans}

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def aggregate(self) -> FleetGauges:
        gauges = FleetGauges(generated_at=self._clock())
        gauges.workers = list(self._workers)
        gauges.counters = {name: 0 for name in FLEET_COUNTERS}
        for worker in self._workers:
            for name, count in worker.counters.items():
                gauges.counters[name] = gauges.counters.get(name, 0) + count
            gauges.idle_count += worker.idle_count
            gauges.idle_slept_s += worker.idle_slept_s
        if self._authoritative_plans is not None:
            gauges.plans = {name: dict(plan) for name, plan
                            in self._authoritative_plans.items()}
        else:
            # Freshest observer wins per plan: queue gauges are global
            # facts each worker observed at a different moment, so the
            # youngest snapshot mentioning the plan is the best estimate.
            best_age: Dict[str, float] = {}
            for worker in sorted(self._workers,
                                 key=lambda w: (w.age_s is None,
                                                w.age_s or 0.0)):
                age = worker.age_s if worker.age_s is not None \
                    else float("inf")
                for name, plan in worker.plans.items():
                    if name not in gauges.plans or age < best_age[name]:
                        merged = {
                            "queued": int(plan.get("queued", 0)),
                            "leased": int(plan.get("leased", 0)),
                            "done": int(plan.get("done", 0)),
                            "drained": bool(plan.get("drained", False)),
                            "observed_by": worker.worker_id,
                            "age_s": worker.age_s,
                        }
                        gauges.plans[name] = merged
                        best_age[name] = age
        for plan, samples in self._depth_samples.items():
            samples = sorted(samples)
            if len(samples) < 2:
                continue
            (first_ts, first_done), (last_ts, last_done) = \
                samples[0], samples[-1]
            window = last_ts - first_ts
            if window > 0 and last_done > first_done:
                gauges.drain_rate[plan] = (last_done - first_done) / window
        return gauges


# ----------------------------------------------------------------------
# OpenMetrics / Prometheus textfile exposition (stdlib only)
# ----------------------------------------------------------------------
_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}

#: ``metric_name{label="value",...} value`` — the subset of the
#: OpenMetrics text format the writer emits and the parser accepts.
_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>.*)\})?'
    r'\s+(?P<value>[^\s]+)$')
_LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"')


def _escape_label(value: str) -> str:
    return "".join(_LABEL_ESCAPES.get(char, char) for char in value)


def _sample(name: str, labels: Dict[str, str], value: object) -> str:
    if labels:
        rendered = ",".join(f'{key}="{_escape_label(str(val))}"'
                            for key, val in sorted(labels.items()))
        return f"{name}{{{rendered}}} {value}"
    return f"{name} {value}"


def render_openmetrics(gauges: FleetGauges, prefix: str = "repro") -> str:
    """The fleet gauges in OpenMetrics text exposition format.

    Gauge metrics for queue depth and liveness, counter metrics for the
    monotonic per-event totals; ends with the ``# EOF`` marker the
    OpenMetrics spec requires.  No dependencies: the format is line-based
    and this emits the plain subset every Prometheus scraper accepts.
    """
    lines: List[str] = []

    def head(name: str, kind: str, help_text: str) -> str:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        return name

    name = head(f"{prefix}_queue_depth", "gauge",
                "Shards per plan by queue state.")
    for plan, plan_gauges in sorted(gauges.plans.items()):
        for state in ("queued", "leased", "done"):
            lines.append(_sample(name, {"plan": plan, "state": state},
                                 int(plan_gauges.get(state, 0))))
    name = head(f"{prefix}_plan_drained", "gauge",
                "1 when the plan has no queued or leased shards left.")
    for plan, plan_gauges in sorted(gauges.plans.items()):
        lines.append(_sample(name, {"plan": plan},
                             1 if plan_gauges.get("drained") else 0))
    name = head(f"{prefix}_workers", "gauge",
                "Workers by snapshot liveness.")
    lines.append(_sample(name, {"state": "live"}, gauges.live_workers))
    lines.append(_sample(name, {"state": "stale"},
                         len(gauges.stale_workers)))
    name = head(f"{prefix}_worker_age_seconds", "gauge",
                "Age of each worker's snapshot at aggregation time.")
    for worker in gauges.workers:
        if worker.age_s is not None:
            lines.append(_sample(name, {"worker": worker.worker_id},
                                 f"{worker.age_s:.3f}"))
    name = head(f"{prefix}_events_total", "counter",
                "Telemetry events by type, summed across workers.")
    for counter, count in sorted(gauges.counters.items()):
        lines.append(_sample(name, {"kind": counter}, count))
    name = head(f"{prefix}_idle_seconds_total", "counter",
                "Total seconds workers spent in idle backoff.")
    lines.append(_sample(name, {}, f"{gauges.idle_slept_s:.3f}"))
    ratio = gauges.cache_hit_ratio
    if ratio is not None:
        name = head(f"{prefix}_cache_hit_ratio", "gauge",
                    "Fleet-wide artifact cache hit ratio.")
        lines.append(_sample(name, {}, f"{ratio:.6f}"))
    name = head(f"{prefix}_drain_rate", "gauge",
                "Shards completed per second, per plan (windowed).")
    for plan, rate in sorted(gauges.drain_rate.items()):
        lines.append(_sample(name, {"plan": plan}, f"{rate:.6f}"))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class MetricSample:
    """One parsed exposition line: name + labels + float value."""

    name: str
    labels: Dict[str, str]
    value: float


def parse_openmetrics(text: str) -> List[MetricSample]:
    """Parse the exposition subset :func:`render_openmetrics` writes.

    Used by the round-trip checks in tests and CI: a promfile that fails
    to parse would be silently dropped by a real node-exporter textfile
    collector, which is exactly the failure mode this guards against.
    Raises :class:`ObserveError` naming the offending line.
    """
    samples: List[MetricSample] = []
    saw_eof = False
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if saw_eof:
            raise ObserveError(f"line {number}: content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("#"):
            if not (line.startswith("# HELP ")
                    or line.startswith("# TYPE ")):
                raise ObserveError(
                    f"line {number}: unknown comment {line!r} (expected "
                    "# HELP, # TYPE or # EOF)")
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ObserveError(
                f"line {number}: not a valid metric sample: {line!r}")
        labels: Dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            matched_len = sum(
                len(part.group(0)) for part in _LABEL_RE.finditer(raw))
            pairs = list(_LABEL_RE.finditer(raw))
            # Reject label blocks with unparsed residue (beyond commas).
            residue = _LABEL_RE.sub("", raw).replace(",", "").strip()
            if residue or (not pairs and raw.strip()):
                raise ObserveError(
                    f"line {number}: malformed label block {{{raw}}}")
            del matched_len
            for part in pairs:
                labels[part.group("key")] = re.sub(
                    r'\\(.)', lambda m: {"n": "\n"}.get(m.group(1),
                                                        m.group(1)),
                    part.group("value"))
        try:
            value = float(match.group("value"))
        except ValueError as error:
            raise ObserveError(
                f"line {number}: non-numeric value "
                f"{match.group('value')!r}") from error
        samples.append(MetricSample(name=match.group("name"),
                                    labels=labels, value=value))
    if not saw_eof:
        raise ObserveError("missing # EOF terminator")
    return samples


def write_promfile(gauges: FleetGauges, directory: Union[str, Path],
                   name: str = "repro_fleet.prom",
                   prefix: str = "repro") -> Path:
    """Atomically write the OpenMetrics textfile into ``directory``.

    Temp file + rename, same as every other writer in this codebase, so a
    node-exporter textfile collector scraping mid-write never sees a torn
    exposition.
    """
    target = Path(directory) / name
    target.parent.mkdir(parents=True, exist_ok=True)
    rendered = render_openmetrics(gauges, prefix=prefix)
    tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
    tmp.write_text(rendered, encoding="utf-8")
    tmp.replace(target)
    return target
