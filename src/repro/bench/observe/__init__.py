"""The fleet observability plane.

Three modules close the ROADMAP's "fleet aggregation + autoscaling
signals" item on top of the PR 5/PR 7 telemetry substrate:

:mod:`repro.bench.observe.trace`
    Deterministic trace correlation: trial/shard/plan trace ids derived
    from the same identity fields that make the five execution paths
    byte-identical, a thread-local span-context stack for the
    instrumented seams, and the reconstruction that turns merged JSONL
    from any number of workers back into one per-trial timeline.
:mod:`repro.bench.observe.fleet`
    :class:`~repro.bench.observe.fleet.FleetAggregator` merges N
    per-worker :class:`~repro.bench.telemetry.MetricsSnapshotSink` files
    (and/or live JSONL tails) into one staleness-aware gauges object,
    plus the OpenMetrics textfile writer/parser (no dependencies).
:mod:`repro.bench.observe.advisor`
    :class:`~repro.bench.observe.advisor.AdvisorPolicy` consumes the
    aggregated gauges and emits typed
    :class:`~repro.bench.telemetry.ScaleAdvice` recommendations
    (recommend-only; actuation is out of scope).
"""

from repro.bench.observe.advisor import AdvisorPolicy
from repro.bench.observe.fleet import (
    FleetAggregator,
    FleetGauges,
    WorkerSnapshot,
    parse_openmetrics,
    render_openmetrics,
    write_promfile,
)
from repro.bench.observe.trace import (
    ObserveError,
    SpanContext,
    Trace,
    build_trace,
    manifest_trace_id,
    plan_trace_id,
    render_trace,
    span_id_for,
    trial_trace_id,
)

__all__ = [
    "AdvisorPolicy",
    "FleetAggregator",
    "FleetGauges",
    "ObserveError",
    "SpanContext",
    "Trace",
    "WorkerSnapshot",
    "build_trace",
    "manifest_trace_id",
    "parse_openmetrics",
    "plan_trace_id",
    "render_openmetrics",
    "render_trace",
    "span_id_for",
    "trial_trace_id",
    "write_promfile",
]
