"""Recommend-only autoscaling advice from aggregated fleet gauges.

The broker already exposes everything a scaler needs — per-plan backlog,
lease counts, worker liveness, drain rate — but until now nothing
consumed it.  :class:`AdvisorPolicy` turns one :class:`FleetGauges` view
into a typed :class:`~repro.bench.telemetry.ScaleAdvice`: scale up when
the queued backlog exceeds what the live workers can be expected to
chew through, scale down when the queue is drained and workers idle,
hold otherwise.  Actuation is deliberately out of scope — the advice is
an event (loggable, aggregatable, diffable) and a ``repro fleet advise``
exit, and whatever supervises the fleet decides what to do with it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bench.observe.fleet import FleetGauges
from repro.bench.observe.trace import ObserveError
from repro.bench.telemetry import ScaleAdvice


@dataclass(frozen=True)
class AdvisorPolicy:
    """Threshold policy mapping fleet gauges to scaling advice.

    ``target_backlog`` is the queued-shards-per-live-worker level the
    policy is happy with; beyond it, it recommends enough workers to
    bring the ratio back to target (clamped to ``max_workers``).  With
    zero live workers and a non-empty queue the advice is always to
    scale up — a fleet of stale snapshots drains nothing.
    """

    target_backlog: int = 4
    min_workers: int = 1
    max_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.target_backlog < 1:
            raise ObserveError(
                f"target_backlog must be >= 1, got {self.target_backlog}")
        if self.min_workers < 0:
            raise ObserveError(
                f"min_workers must be >= 0, got {self.min_workers}")
        if self.max_workers is not None \
                and self.max_workers < self.min_workers:
            raise ObserveError(
                f"max_workers ({self.max_workers}) must be >= "
                f"min_workers ({self.min_workers})")

    def _clamp(self, workers: int) -> int:
        workers = max(workers, self.min_workers)
        if self.max_workers is not None:
            workers = min(workers, self.max_workers)
        return workers

    def advise(self, gauges: FleetGauges) -> ScaleAdvice:
        live = gauges.live_workers
        queued = gauges.queued
        leased = gauges.leased
        backlog = queued + leased
        drain = sum(gauges.drain_rate.values())
        eta = f"; drain eta {backlog / drain:.0f}s at current rate" \
            if drain > 0 and backlog else ""

        if queued and live == 0:
            recommended = self._clamp(
                max(1, -(-queued // self.target_backlog)))
            return ScaleAdvice(
                action="scale_up", workers=live, recommended=recommended,
                queued=queued, leased=leased,
                reason=f"{queued} shard(s) queued with no live worker "
                       f"snapshots{eta}")
        if live and queued > self.target_backlog * live:
            # ceil(queued / target_backlog) workers brings the per-worker
            # backlog back under target.
            recommended = self._clamp(-(-queued // self.target_backlog))
            if recommended > live:
                return ScaleAdvice(
                    action="scale_up", workers=live,
                    recommended=recommended, queued=queued, leased=leased,
                    reason=f"backlog {queued} queued over {live} live "
                           f"worker(s) exceeds target of "
                           f"{self.target_backlog}/worker{eta}")
        if queued == 0 and leased == 0 and live > self.min_workers:
            return ScaleAdvice(
                action="scale_down", workers=live,
                recommended=self.min_workers, queued=queued, leased=leased,
                reason=f"all plans drained; {live} live worker(s) idle "
                       f"above the floor of {self.min_workers}")
        return ScaleAdvice(
            action="hold", workers=live, recommended=live,
            queued=queued, leased=leased,
            reason=f"{queued} queued / {leased} leased within target for "
                   f"{live} live worker(s){eta}")
