"""Failure analysis (paper §5.6, Figure 6).

Every failed trial carries a :class:`repro.agent.session.FailureRecord`
whose cause maps to the paper's two-level taxonomy: *policy*-level causes
(ambiguous task description, misinterpreted control semantics, weak
visual-semantic understanding, subtle task semantics) versus
*mechanism*-level causes (control localization / navigation errors,
composite-interaction errors, topology inaccuracies, step-budget
exhaustion).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.agent.session import SessionResult
from repro.spec import FailureCategory, FailureCause


def failures(results: Sequence[SessionResult]) -> Sequence[SessionResult]:
    return [r for r in results if not r.success]


def failure_distribution(results: Sequence[SessionResult]) -> Dict[str, object]:
    """Policy/mechanism split plus totals (the Figure 6 pie)."""
    failed = failures(results)
    policy = sum(1 for r in failed
                 if r.failure is not None and r.failure.category == FailureCategory.POLICY)
    mechanism = sum(1 for r in failed
                    if r.failure is not None and r.failure.category == FailureCategory.MECHANISM)
    total = len(failed)
    return {
        "failures": total,
        "policy": policy,
        "mechanism": mechanism,
        "policy_share": policy / total if total else 0.0,
        "mechanism_share": mechanism / total if total else 0.0,
    }


def failure_breakdown(results: Sequence[SessionResult]) -> Dict[str, int]:
    """Counts per fine-grained failure cause."""
    counts: Dict[str, int] = {cause.value: 0 for cause in FailureCause}
    for result in failures(results):
        if result.failure is not None:
            counts[result.failure.cause.value] += 1
    return {cause: count for cause, count in counts.items() if count}


def failure_share_by_cause(results: Sequence[SessionResult]) -> Dict[str, float]:
    breakdown = failure_breakdown(results)
    total = sum(breakdown.values())
    if not total:
        return {}
    return {cause: count / total for cause, count in breakdown.items()}
