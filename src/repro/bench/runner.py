"""The benchmark runner.

Executes the task suite under the (interface × model × knowledge)
configurations of the paper's Table 3, with the paper's protocol: each task
is capped at 30 steps and run three times, results are averaged, and the
offline navigation model is built once per application and reused across
trials (it is version-specific but machine-independent).

Execution is delegated to the engine (:mod:`repro.bench.engine`): the runner
expands the evaluation grid into deterministic :class:`~repro.bench.engine.TrialSpec`
work units and hands them to a :class:`~repro.bench.engine.SerialExecutor`
(``jobs = 1``) or a process-pool :class:`~repro.bench.engine.ParallelExecutor`
(``jobs > 1``); both yield identical aggregate results for a fixed seed.
With ``cache_dir`` set, offline models are loaded from the content-addressed
:class:`~repro.dmi.cache.ArtifactCache` instead of re-ripping the GUI.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.agent.host_agent import HostAgent
from repro.agent.session import InterfaceSetting, SessionResult
from repro.apps import APP_FACTORIES, app_factory
from repro.bench.engine import (
    Executor,
    ParallelExecutor,
    ProgressCallback,
    SerialExecutor,
    TrialSpec,
    expand_trial_specs,
    trial_seed,
)
from repro.bench import telemetry
from repro.bench.observe import trace as tracectx
from repro.bench.tasks import all_tasks, task_by_id
from repro.bench.telemetry import TrialFinished, TrialStarted, phases_from_result
from repro.dmi.cache import ArtifactCache
from repro.dmi.interface import DMI, DMIConfig, OfflineArtifacts, build_offline_artifacts
from repro.llm.profiles import GPT5_MEDIUM, GPT5_MINI, GPT5_MINIMAL, ModelProfile
from repro.spec import TaskSpec

#: The canonical benchmark seed.  The paper's protocol fixes one seed for the
#: whole evaluation; 11 is used everywhere (library default, CLI default and
#: the benchmark harness, which historically disagreed: the library defaulted
#: to 7 while the CLI and harness used 11) so that numbers quoted from any
#: entry point agree.  All reported figures were generated under seed 11.
DEFAULT_SEED = 11


@dataclass(frozen=True)
class EvaluationSetting:
    """One row of the paper's Table 3."""

    key: str
    interface: InterfaceSetting
    profile: ModelProfile
    #: "/" (none) or "Nav.forest", mirroring the paper's Knowledge column.
    knowledge: str = "/"

    @property
    def label(self) -> str:
        return (f"{self.interface.value} | {self.knowledge} | "
                f"{self.profile.name} ({self.profile.reasoning})")


#: The eight configurations reported in Table 3.
TABLE3_SETTINGS: List[EvaluationSetting] = [
    EvaluationSetting("gui-gpt5-medium", InterfaceSetting.GUI_ONLY, GPT5_MEDIUM, "/"),
    EvaluationSetting("forest-gpt5-medium", InterfaceSetting.GUI_PLUS_FOREST, GPT5_MEDIUM,
                      "Nav.forest"),
    EvaluationSetting("dmi-gpt5-medium", InterfaceSetting.GUI_PLUS_DMI, GPT5_MEDIUM,
                      "Nav.forest"),
    EvaluationSetting("gui-gpt5-minimal", InterfaceSetting.GUI_ONLY, GPT5_MINIMAL, "/"),
    EvaluationSetting("dmi-gpt5-minimal", InterfaceSetting.GUI_PLUS_DMI, GPT5_MINIMAL,
                      "Nav.forest"),
    EvaluationSetting("gui-gpt5-mini", InterfaceSetting.GUI_ONLY, GPT5_MINI, "/"),
    EvaluationSetting("forest-gpt5-mini", InterfaceSetting.GUI_PLUS_FOREST, GPT5_MINI,
                      "Nav.forest"),
    EvaluationSetting("dmi-gpt5-mini", InterfaceSetting.GUI_PLUS_DMI, GPT5_MINI, "Nav.forest"),
]

#: The three core-comparison settings used by Figures 5 and 6.
CORE_SETTING_KEYS = ("gui-gpt5-medium", "forest-gpt5-medium", "dmi-gpt5-medium")


@dataclass
class BenchmarkConfig:
    """Runner configuration (defaults follow the paper's protocol)."""

    trials: int = 3
    seed: int = DEFAULT_SEED
    dmi: DMIConfig = field(default_factory=DMIConfig)
    #: Restrict to a subset of tasks (None = the full 27-task suite).
    tasks: Optional[Sequence[TaskSpec]] = None
    #: Worker processes; > 1 selects the process-pool executor.
    jobs: int = 1
    #: Directory for the offline-model cache (None = rip in-process).
    cache_dir: Optional[Union[str, Path]] = None
    #: LRU bound on the cache directory (None = unbounded); see
    #: :class:`~repro.dmi.cache.ArtifactCache`.
    cache_max_entries: Optional[int] = None


@dataclass
class RunOutcome:
    """All trial results for one evaluation setting."""

    setting: EvaluationSetting
    results: List[SessionResult] = field(default_factory=list)

    def by_task(self) -> Dict[str, List[SessionResult]]:
        grouped: Dict[str, List[SessionResult]] = {}
        for result in self.results:
            grouped.setdefault(result.task_id, []).append(result)
        return grouped

    def solved_task_ids(self) -> set:
        """Tasks solved at least once under this setting."""
        return {task_id for task_id, runs in self.by_task().items()
                if any(r.success for r in runs)}


class BenchmarkRunner:
    """Runs tasks under evaluation settings, reusing offline artefacts."""

    def __init__(self, config: Optional[BenchmarkConfig] = None) -> None:
        self.config = config or BenchmarkConfig()
        self._artifacts: Dict[str, OfflineArtifacts] = {}
        self._settings: Dict[str, EvaluationSetting] = {}
        self._tasks: Dict[str, TaskSpec] = {}
        #: Telemetry sink for trial events (None = the process default at
        #: emit time; see :mod:`repro.bench.telemetry`).
        self.sink: Optional[telemetry.EventSink] = None
        self.cache: Optional[ArtifactCache] = (
            ArtifactCache(self.config.cache_dir, self.config.dmi,
                          max_entries=self.config.cache_max_entries)
            if self.config.cache_dir is not None else None)

    # ------------------------------------------------------------------
    # offline phase (shared across settings and trials)
    # ------------------------------------------------------------------
    def offline_artifacts(self, app_name: str) -> OfflineArtifacts:
        """Build (or load from cache) the offline model for one application."""
        if app_name not in self._artifacts:
            if self.cache is not None:
                self._artifacts[app_name] = self.cache.load_or_build(app_name)
            else:
                scratch = app_factory(app_name)()
                self._artifacts[app_name] = build_offline_artifacts(scratch, self.config.dmi)
        return self._artifacts[app_name]

    def all_offline_artifacts(self) -> Dict[str, OfflineArtifacts]:
        """Models for the hand-written apps (generated apps build on demand)."""
        return {name: self.offline_artifacts(name) for name in APP_FACTORIES}

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def tasks(self) -> List[TaskSpec]:
        return list(self.config.tasks) if self.config.tasks is not None else all_tasks()

    def trial_specs(self, settings: Sequence[EvaluationSetting],
                    tasks: Optional[Sequence[TaskSpec]] = None) -> List[TrialSpec]:
        """Expand settings × tasks × trials into deterministic work units."""
        self._register_settings(settings)
        task_list = list(tasks) if tasks is not None else self.tasks()
        self._register_tasks(task_list)
        return expand_trial_specs(self.config.seed, self.config.trials,
                                  [setting.key for setting in settings],
                                  [task.task_id for task in task_list])

    def executor(self) -> Executor:
        """The executor selected by ``config.jobs``."""
        if self.config.jobs > 1:
            return ParallelExecutor(self.config.jobs)
        return SerialExecutor()

    # ------------------------------------------------------------------
    # online phase
    # ------------------------------------------------------------------
    def run_spec(self, spec: TrialSpec) -> SessionResult:
        """Run the single work unit described by ``spec``.

        Instrumented: emits :class:`~repro.bench.telemetry.TrialStarted` /
        :class:`~repro.bench.telemetry.TrialFinished` (with the measured
        rip/build and simulated plan/act phase breakdown) to the runner's
        sink.  With the default :class:`~repro.bench.telemetry.NullSink`
        even the ``perf_counter`` reads are skipped, so the hot path pays
        only the truthiness checks.
        """
        sink = telemetry.resolve(self.sink)
        measuring = bool(sink)
        ctx = None
        if measuring:
            # The trial's root span: deterministic trace id, parented to
            # the ambient span (a worker's lease span in broker runs, or
            # nothing in plain serial runs).  The context stays pushed for
            # the duration of the trial so nested cache/store events
            # attach as its children.
            ctx = tracectx.trial_context(spec, tracectx.current())
            tracectx.push(ctx)
            sink.emit(ctx.attach(TrialStarted(task_id=spec.task_id,
                                              setting_key=spec.setting_key,
                                              trial=spec.trial)))
            started = time.perf_counter()
        try:
            task = self._resolve_task(spec.task_id)
            setting = self._resolve_setting(spec.setting_key)
            rng = random.Random(spec.seed)
            app = app_factory(task.app)()
            rip_started = time.perf_counter() if measuring else 0.0
            artifacts = self.offline_artifacts(task.app)
            build_started = time.perf_counter() if measuring else 0.0
            profile = setting.profile
            if setting.knowledge == "Nav.forest" and not setting.interface.uses_dmi:
                # The ablation provides the forest as prose knowledge only.
                profile = profile.with_knowledge(True)
            host = HostAgent(profile, setting.interface, rng=rng)
            dmi = DMI(app, artifacts, self.config.dmi) if setting.interface.uses_dmi else None
            act_started = time.perf_counter() if measuring else 0.0
            result = host.run_task(task, app, artifacts.forest, core=artifacts.core, dmi=dmi)
            if measuring:
                finished = time.perf_counter()
                sink.emit(ctx.attach(TrialFinished(
                    task_id=spec.task_id, setting_key=spec.setting_key,
                    trial=spec.trial, success=result.success,
                    seconds=finished - started, wall_s=result.wall_time_s,
                    phases=phases_from_result(
                        result, rip_s=build_started - rip_started,
                        build_s=act_started - build_started)),
                    duration_s=finished - started))
        finally:
            if ctx is not None:
                tracectx.pop(ctx)
        return result

    def run_trial(self, task: TaskSpec, setting: EvaluationSetting, trial: int) -> SessionResult:
        """Run one trial of one task under one setting."""
        self._register_settings([setting])
        self._register_tasks([task])
        return self.run_spec(TrialSpec(
            task_id=task.task_id, setting_key=setting.key, trial=trial,
            seed=self._trial_seed(task, setting, trial)))

    def run_setting(self, setting: EvaluationSetting,
                    tasks: Optional[Sequence[TaskSpec]] = None,
                    progress: Optional[ProgressCallback] = None) -> RunOutcome:
        """Run every task x trial combination for one setting."""
        return self.run_settings([setting], tasks, progress=progress)[setting.key]

    def run_settings(self, settings: Sequence[EvaluationSetting],
                     tasks: Optional[Sequence[TaskSpec]] = None,
                     executor: Optional[Executor] = None,
                     progress: Optional[ProgressCallback] = None) -> Dict[str, RunOutcome]:
        """Run the full grid for ``settings`` on the configured executor."""
        # Dedupe by key (keeping the last entry, matching the historical
        # dict-overwrite semantics) so repeated keys don't double-run trials
        # or double-append results into one outcome.
        settings = list({setting.key: setting for setting in settings}.values())
        specs = self.trial_specs(settings, tasks)
        executor = executor if executor is not None else self.executor()
        results = executor.run(self, specs, progress=progress)
        outcomes = {setting.key: RunOutcome(setting=setting) for setting in settings}
        for spec, result in zip(specs, results):
            outcomes[spec.setting_key].results.append(result)
        return outcomes

    def run_table3(self, tasks: Optional[Sequence[TaskSpec]] = None,
                   progress: Optional[ProgressCallback] = None) -> Dict[str, RunOutcome]:
        """Run all eight Table 3 configurations."""
        return self.run_settings(TABLE3_SETTINGS, tasks, progress=progress)

    def shard_plan(self, settings: Sequence[EvaluationSetting], shards: int,
                   tasks: Optional[Sequence[TaskSpec]] = None):
        """Partition this runner's grid into ``shards`` exportable manifests.

        The manifests embed the runner's seed, trial count and DMI config
        fingerprint; run them anywhere with
        :class:`repro.bench.shard.ManifestExecutor` and recombine with
        :func:`repro.bench.shard.merge_shard_results` — the merged outcome
        is bit-identical to :meth:`run_settings` on this runner.
        """
        from repro.bench.shard import plan_shards

        settings = list({setting.key: setting for setting in settings}.values())
        task_list = list(tasks) if tasks is not None else self.tasks()
        return plan_shards(shards, seed=self.config.seed,
                           trials=self.config.trials,
                           setting_keys=[setting.key for setting in settings],
                           task_ids=[task.task_id for task in task_list],
                           dmi_config=self.config.dmi)

    # ------------------------------------------------------------------
    def _register_settings(self, settings: Sequence[EvaluationSetting]) -> None:
        for setting in settings:
            self._settings[setting.key] = setting

    def _register_tasks(self, tasks: Sequence[TaskSpec]) -> None:
        for task in tasks:
            self._tasks[task.task_id] = task

    def _resolve_setting(self, key: str) -> EvaluationSetting:
        if key in self._settings:
            return self._settings[key]
        return setting_by_key(key)

    def _resolve_task(self, task_id: str) -> TaskSpec:
        """Caller-supplied task objects win over the global registry."""
        if task_id in self._tasks:
            return self._tasks[task_id]
        for task in (self.config.tasks or ()):
            if task.task_id == task_id:
                return task
        return task_by_id(task_id)

    def _trial_seed(self, task: TaskSpec, setting: EvaluationSetting, trial: int) -> int:
        return trial_seed(self.config.seed, task.task_id, setting.key, trial)


def setting_by_key(key: str) -> EvaluationSetting:
    for setting in TABLE3_SETTINGS:
        if setting.key == key:
            return setting
    raise KeyError(f"unknown evaluation setting {key!r}")
