"""The benchmark runner.

Executes the task suite under the (interface × model × knowledge)
configurations of the paper's Table 3, with the paper's protocol: each task
is capped at 30 steps and run three times, results are averaged, and the
offline navigation model is built once per application and reused across
trials (it is version-specific but machine-independent).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.agent.host_agent import HostAgent
from repro.agent.session import InterfaceSetting, SessionResult
from repro.apps import APP_FACTORIES
from repro.bench.tasks import all_tasks
from repro.dmi.interface import DMI, DMIConfig, OfflineArtifacts, build_offline_artifacts
from repro.llm.profiles import GPT5_MEDIUM, GPT5_MINI, GPT5_MINIMAL, ModelProfile
from repro.spec import TaskSpec


@dataclass(frozen=True)
class EvaluationSetting:
    """One row of the paper's Table 3."""

    key: str
    interface: InterfaceSetting
    profile: ModelProfile
    #: "/" (none) or "Nav.forest", mirroring the paper's Knowledge column.
    knowledge: str = "/"

    @property
    def label(self) -> str:
        return (f"{self.interface.value} | {self.knowledge} | "
                f"{self.profile.name} ({self.profile.reasoning})")


#: The eight configurations reported in Table 3.
TABLE3_SETTINGS: List[EvaluationSetting] = [
    EvaluationSetting("gui-gpt5-medium", InterfaceSetting.GUI_ONLY, GPT5_MEDIUM, "/"),
    EvaluationSetting("forest-gpt5-medium", InterfaceSetting.GUI_PLUS_FOREST, GPT5_MEDIUM,
                      "Nav.forest"),
    EvaluationSetting("dmi-gpt5-medium", InterfaceSetting.GUI_PLUS_DMI, GPT5_MEDIUM,
                      "Nav.forest"),
    EvaluationSetting("gui-gpt5-minimal", InterfaceSetting.GUI_ONLY, GPT5_MINIMAL, "/"),
    EvaluationSetting("dmi-gpt5-minimal", InterfaceSetting.GUI_PLUS_DMI, GPT5_MINIMAL,
                      "Nav.forest"),
    EvaluationSetting("gui-gpt5-mini", InterfaceSetting.GUI_ONLY, GPT5_MINI, "/"),
    EvaluationSetting("forest-gpt5-mini", InterfaceSetting.GUI_PLUS_FOREST, GPT5_MINI,
                      "Nav.forest"),
    EvaluationSetting("dmi-gpt5-mini", InterfaceSetting.GUI_PLUS_DMI, GPT5_MINI, "Nav.forest"),
]

#: The three core-comparison settings used by Figures 5 and 6.
CORE_SETTING_KEYS = ("gui-gpt5-medium", "forest-gpt5-medium", "dmi-gpt5-medium")


@dataclass
class BenchmarkConfig:
    """Runner configuration (defaults follow the paper's protocol)."""

    trials: int = 3
    seed: int = 7
    dmi: DMIConfig = field(default_factory=DMIConfig)
    #: Restrict to a subset of tasks (None = the full 27-task suite).
    tasks: Optional[Sequence[TaskSpec]] = None


@dataclass
class RunOutcome:
    """All trial results for one evaluation setting."""

    setting: EvaluationSetting
    results: List[SessionResult] = field(default_factory=list)

    def by_task(self) -> Dict[str, List[SessionResult]]:
        grouped: Dict[str, List[SessionResult]] = {}
        for result in self.results:
            grouped.setdefault(result.task_id, []).append(result)
        return grouped

    def solved_task_ids(self) -> set:
        """Tasks solved at least once under this setting."""
        return {task_id for task_id, runs in self.by_task().items()
                if any(r.success for r in runs)}


class BenchmarkRunner:
    """Runs tasks under evaluation settings, reusing offline artefacts."""

    def __init__(self, config: Optional[BenchmarkConfig] = None) -> None:
        self.config = config or BenchmarkConfig()
        self._artifacts: Dict[str, OfflineArtifacts] = {}

    # ------------------------------------------------------------------
    # offline phase (shared across settings and trials)
    # ------------------------------------------------------------------
    def offline_artifacts(self, app_name: str) -> OfflineArtifacts:
        """Build (once) and return the offline model for one application."""
        if app_name not in self._artifacts:
            scratch = APP_FACTORIES[app_name]()
            self._artifacts[app_name] = build_offline_artifacts(scratch, self.config.dmi)
        return self._artifacts[app_name]

    def all_offline_artifacts(self) -> Dict[str, OfflineArtifacts]:
        return {name: self.offline_artifacts(name) for name in APP_FACTORIES}

    # ------------------------------------------------------------------
    # online phase
    # ------------------------------------------------------------------
    def tasks(self) -> List[TaskSpec]:
        return list(self.config.tasks) if self.config.tasks is not None else all_tasks()

    def run_trial(self, task: TaskSpec, setting: EvaluationSetting, trial: int) -> SessionResult:
        """Run one trial of one task under one setting."""
        rng = random.Random(self._trial_seed(task, setting, trial))
        app = APP_FACTORIES[task.app]()
        artifacts = self.offline_artifacts(task.app)
        profile = setting.profile
        if setting.knowledge == "Nav.forest" and not setting.interface.uses_dmi:
            # The ablation provides the forest as prose knowledge only.
            profile = profile.with_knowledge(True)
        host = HostAgent(profile, setting.interface, rng=rng)
        dmi = DMI(app, artifacts, self.config.dmi) if setting.interface.uses_dmi else None
        return host.run_task(task, app, artifacts.forest, core=artifacts.core, dmi=dmi)

    def run_setting(self, setting: EvaluationSetting,
                    tasks: Optional[Sequence[TaskSpec]] = None) -> RunOutcome:
        """Run every task x trial combination for one setting."""
        outcome = RunOutcome(setting=setting)
        for task in (tasks if tasks is not None else self.tasks()):
            for trial in range(self.config.trials):
                outcome.results.append(self.run_trial(task, setting, trial))
        return outcome

    def run_settings(self, settings: Sequence[EvaluationSetting],
                     tasks: Optional[Sequence[TaskSpec]] = None) -> Dict[str, RunOutcome]:
        return {setting.key: self.run_setting(setting, tasks) for setting in settings}

    def run_table3(self, tasks: Optional[Sequence[TaskSpec]] = None) -> Dict[str, RunOutcome]:
        """Run all eight Table 3 configurations."""
        return self.run_settings(TABLE3_SETTINGS, tasks)

    # ------------------------------------------------------------------
    def _trial_seed(self, task: TaskSpec, setting: EvaluationSetting, trial: int) -> int:
        key = f"{self.config.seed}|{task.task_id}|{setting.key}|{trial}"
        return zlib.crc32(key.encode("utf-8"))


def setting_by_key(key: str) -> EvaluationSetting:
    for setting in TABLE3_SETTINGS:
        if setting.key == key:
            return setting
    raise KeyError(f"unknown evaluation setting {key!r}")
