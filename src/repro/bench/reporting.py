"""Report generators: one renderer per table / figure in the paper.

Each function takes already-computed benchmark outcomes and returns the
formatted text the corresponding bench prints, so the mapping
"paper artefact -> code that regenerates it" stays explicit (see DESIGN.md's
per-experiment index and EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.agent.session import SessionResult
from repro.bench.failures import failure_breakdown, failure_distribution
from repro.bench.metrics import aggregate, normalized_core_steps, one_shot_rate
from repro.bench.runner import RunOutcome
from repro.dmi.interface import OfflineArtifacts
from repro.dmi.state import INTERFACE_PATTERN_TABLE


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return " | ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))


def _interface_label(outcome: RunOutcome) -> str:
    mapping = {
        "gui-only": "GUI-only",
        "gui-only+nav.forest": "GUI-only",
        "gui+dmi": "GUI+DMI",
    }
    value = outcome.setting.interface.value
    label = mapping.get(value)
    if label is None:
        raise ValueError(
            f"no Table 3 interface label for interface {value!r} "
            f"(setting {outcome.setting.key!r}); add it to the "
            "_interface_label mapping")
    return label


def _model_label(outcome: RunOutcome) -> str:
    name = outcome.setting.profile.name
    return "5-mini" if name == "gpt-5-mini" else "GPT-5"


# ----------------------------------------------------------------------
# Table 3
# ----------------------------------------------------------------------
def render_table3(outcomes: Mapping[str, RunOutcome]) -> str:
    """'Results across interfaces and models' (SR / Steps / Time)."""
    widths = (10, 12, 8, 10, 8, 7, 9)
    lines = ["Table 3. Results across interfaces and models.",
             _format_row(("Interface", "Knowledge", "Model", "Reasoning", "SR", "Steps",
                          "Time(s)"), widths),
             "-" * 76]
    for outcome in outcomes.values():
        summary = aggregate(outcome.results)
        lines.append(_format_row((
            _interface_label(outcome),
            outcome.setting.knowledge,
            _model_label(outcome),
            outcome.setting.profile.reasoning.title(),
            f"{summary.success_rate * 100:.1f}%",
            f"{summary.avg_steps:.2f}",
            f"{summary.avg_time_s:.0f}",
        ), widths))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 5a / 5b
# ----------------------------------------------------------------------
def render_figure5a(outcomes: Mapping[str, RunOutcome], bar_width: int = 40) -> str:
    """Success-rate bars per interface x model (Figure 5a)."""
    lines = ["Figure 5a. Success rate (%).", ""]
    for outcome in outcomes.values():
        summary = aggregate(outcome.results)
        share = summary.success_rate
        bar = "#" * int(round(share * bar_width))
        label = (f"{_model_label(outcome)} ({outcome.setting.profile.reasoning}) "
                 f"{_interface_label(outcome)}"
                 + (" +Nav.forest" if outcome.setting.interface.value == "gui-only+nav.forest"
                    else ""))
        lines.append(f"{label:<46} {share * 100:5.1f}% |{bar}")
    return "\n".join(lines)


def render_figure5b(outcomes: Mapping[str, RunOutcome], groups: Sequence[Sequence[str]],
                    bar_width: int = 40) -> str:
    """Normalized core steps over the intersection of solved tasks (Figure 5b).

    ``groups`` lists, per model configuration, the outcome keys to compare
    (e.g. GUI-only, ablation and GUI+DMI under GPT-5 medium).
    """
    lines = ["Figure 5b. Normalized core steps (intersection of tasks solved by all "
             "compared methods; framework overhead excluded).", ""]
    for group in groups:
        present = {key: outcomes[key].results for key in group if key in outcomes}
        if not present:
            continue
        normalized = normalized_core_steps(present)
        # max(...) or 1.0 keeps peak positive even when every value is 0.0
        # (empty solved-task intersection), so dividing is always safe.
        peak = max(normalized.values()) or 1.0
        for key in group:
            if key not in normalized:
                continue
            outcome = outcomes[key]
            value = normalized[key]
            bar = "#" * int(round((value / peak) * bar_width))
            label = (f"{_model_label(outcome)} ({outcome.setting.profile.reasoning}) "
                     f"{_interface_label(outcome)}"
                     + (" +Nav.forest" if outcome.setting.interface.value ==
                        "gui-only+nav.forest" else ""))
            lines.append(f"{label:<46} {value:5.2f} |{bar}")
        lines.append("")
    return "\n".join(lines).rstrip()


# ----------------------------------------------------------------------
# Figure 6
# ----------------------------------------------------------------------
def render_figure6(dmi_results: Sequence[SessionResult],
                   gui_results: Sequence[SessionResult]) -> str:
    """Failure-cause distribution, policy vs mechanism (Figure 6)."""
    lines = ["Figure 6. Failure-cause distribution (policy vs mechanism)."]
    for label, results in (("GUI+DMI", dmi_results), ("GUI-only baseline", gui_results)):
        distribution = failure_distribution(results)
        lines.append("")
        lines.append(f"{label}: {distribution['failures']} failures")
        lines.append(f"  policy-level:    {distribution['policy']:3d} "
                     f"({distribution['policy_share'] * 100:.1f}%)")
        lines.append(f"  mechanism-level: {distribution['mechanism']:3d} "
                     f"({distribution['mechanism_share'] * 100:.1f}%)")
        for cause, count in sorted(failure_breakdown(results).items(),
                                   key=lambda item: -item[1]):
            lines.append(f"    {cause:<42} {count}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table 1 / Table 2
# ----------------------------------------------------------------------
def render_table1(gui_trace: Sequence[str], dmi_trace: Sequence[str],
                  gui_trace2: Sequence[str], dmi_trace2: Sequence[str]) -> str:
    """Imperative GUI vs declarative DMI command traces for the two example tasks."""
    lines = ["Table 1. Task examples: imperative GUI vs declarative DMI.", ""]
    lines.append("Task 1 (make the background blue on all slides):")
    lines.append("  GUI: " + " -> ".join(gui_trace))
    lines.append("  DMI: " + "; ".join(dmi_trace))
    lines.append("")
    lines.append("Task 2 (show the area close to the end):")
    lines.append("  GUI: " + " -> ".join(gui_trace2))
    lines.append("  DMI: " + "; ".join(dmi_trace2))
    return "\n".join(lines)


def render_table2() -> str:
    """State/observation declaration interfaces and their UIA patterns."""
    lines = ["Table 2. State and observation declaration interfaces.",
             _format_row(("Interface", "Control pattern"), (22, 28)),
             "-" * 52]
    for interface, pattern in INTERFACE_PATTERN_TABLE.items():
        lines.append(_format_row((interface, pattern), (22, 28)))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# §5.2 offline modeling, §5.3 one-shot, §5.4 overhead
# ----------------------------------------------------------------------
def render_offline_modeling(artifacts: Mapping[str, OfflineArtifacts]) -> str:
    """Offline-phase statistics (§5.2): raw UNG size, forest, core topology."""
    widths = (12, 10, 10, 12, 14, 12, 12)
    lines = ["Offline phase: UI navigation modeling (paper §5.2).",
             _format_row(("App", "UNG nodes", "UNG edges", "Merge nodes", "Forest nodes",
                          "Subtrees", "Core nodes"), widths),
             "-" * 92]
    for name, art in artifacts.items():
        summary = art.summary()
        lines.append(_format_row((
            name, summary["ung_nodes"], summary["ung_edges"], summary["merge_nodes"],
            summary["forest_nodes"], summary["shared_subtrees"], summary["core_nodes"],
        ), widths))
        lines.append(f"    modeling time: {summary['modeling_seconds']:.1f}s, "
                     f"core tokens: {summary['core_tokens']}")
    return "\n".join(lines)


def render_one_shot(outcomes: Mapping[str, RunOutcome], dmi_key: str) -> str:
    """One-shot task completion (§5.3)."""
    outcome = outcomes[dmi_key]
    rate = one_shot_rate(outcome.results)
    summary = aggregate(outcome.results)
    lines = [
        "One-shot task completion (paper §5.3).",
        f"Setting: {outcome.setting.label}",
        f"Successful trials completed with a single core LLM call (4 total steps): "
        f"{rate * 100:.1f}%",
        f"Average steps on successful trials: {summary.avg_steps:.2f} "
        f"(core {summary.avg_core_steps:.2f} + 3 framework overhead)",
    ]
    return "\n".join(lines)


def render_token_overhead(per_app_breakdown: Mapping[str, Mapping[str, int]],
                          per_control_tokens: Mapping[str, float],
                          per_task_tokens: Optional[Mapping[str, Dict[str, float]]] = None) -> str:
    """Token overhead of the DMI context (§5.4)."""
    lines = ["Token overhead (paper §5.4)."]
    for app, breakdown in per_app_breakdown.items():
        lines.append(f"\n{app}:")
        for component, tokens in breakdown.items():
            lines.append(f"  {component:<22} {tokens:>8}")
        lines.append(f"  tokens per control     {per_control_tokens.get(app, 0.0):8.1f}")
    if per_task_tokens:
        lines.append("\nAverage total tokens per task (successful trials):")
        for setting, values in per_task_tokens.items():
            lines.append(f"  {setting:<28} prompt {values.get('prompt', 0):>9.0f}   "
                         f"total {values.get('total', 0):>9.0f}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# §5.5 ablation
# ----------------------------------------------------------------------
def render_ablation(outcomes: Mapping[str, RunOutcome],
                    triples: Sequence[Sequence[str]]) -> str:
    """Ablation summary (§5.5): baseline vs +Nav.forest vs full DMI."""
    lines = ["Ablation (paper §5.5): is the gain from the declarative interface or from "
             "the static knowledge?", ""]
    for triple in triples:
        for key in triple:
            if key not in outcomes:
                continue
            outcome = outcomes[key]
            summary = aggregate(outcome.results)
            lines.append(f"{outcome.setting.label:<58} SR {summary.success_rate * 100:5.1f}%  "
                         f"steps {summary.avg_steps:5.2f}")
        lines.append("")
    return "\n".join(lines).rstrip()
