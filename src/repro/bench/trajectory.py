"""Regression-aware run comparison and the ``BENCH_*.json`` trajectory.

Two consumers of the run registry live here:

``repro runs diff A B``
    :func:`diff_runs` flattens two :class:`~repro.bench.registry.RunRecord`\\ s
    into one numeric metric namespace (:func:`flatten_metrics`: wall clock,
    trial count, every telemetry counter, timer totals, and the per-setting
    Table 3 aggregates as ``<setting>.<metric>``) and tabulates the deltas;
    :class:`FailIf` turns ``--fail-if wall_clock>+10%`` style thresholds
    into pass/fail verdicts so CI can gate on regressions.

``repro runs export --bench BENCH_5.json``
    :func:`export_bench` emits the repository's benchmark-trajectory file:
    one datapoint per recorded run, in chronological order, so the perf
    history of the scaling stack accumulates PR over PR instead of living
    in ad-hoc ``benchmarks/test_*_scaling.py`` prints.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.bench.registry import RegistryError, RunRecord
from repro.bench.telemetry import EVENT_NAMES

#: Version of the BENCH_*.json trajectory layout.
BENCH_FORMAT_VERSION = 1

_BENCH_KIND = "repro-bench-trajectory"

#: ``BENCH_<pr>.json`` — the conventional trajectory file name; the PR
#: number is inferred from it when ``--pr`` is not given.
_BENCH_NAME_RE = re.compile(r"^BENCH_(\d+)\.json$")


def flatten_metrics(record: RunRecord) -> Dict[str, float]:
    """One flat ``{metric_name: number}`` view of a record.

    Namespace: ``wall_clock`` and ``trial_count`` from the record itself;
    every telemetry counter under its own name (``cache_misses`` style is
    the raw event name, e.g. ``cache_miss``); each timer's total seconds as
    ``<timer>_total_s``; and each per-setting aggregate metric as
    ``<setting_key>.<metric>``.

    Every *known* event counter is present, defaulting to ``0.0``: an
    AggregatingSink only creates counters for events that occurred, but a
    run with zero cache misses must gate as ``cache_miss == 0``, not as
    "metric missing".
    """
    flat: Dict[str, float] = {
        "wall_clock": record.wall_clock_s,
        "trial_count": float(record.trial_count),
    }
    flat.update({name: 0.0 for name in EVENT_NAMES})
    for name, value in record.counters.items():
        flat[name] = float(value)
    for name, stats in record.timers.items():
        total = stats.get("total_s") if isinstance(stats, dict) else None
        if isinstance(total, (int, float)) and not isinstance(total, bool):
            flat[f"{name}_total_s"] = float(total)
    for setting_key, summary in record.metrics.items():
        if not isinstance(summary, dict):
            continue
        for metric, value in summary.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                flat[f"{setting_key}.{metric}"] = float(value)
    return flat


@dataclass(frozen=True)
class DiffRow:
    """One metric's before/after in a run diff."""

    metric: str
    before: Optional[float]   # None: metric absent from that record
    after: Optional[float]

    @property
    def delta(self) -> Optional[float]:
        if self.before is None or self.after is None:
            return None
        return self.after - self.before

    @property
    def percent(self) -> Optional[float]:
        """Relative change in percent, or None when undefined."""
        if self.delta is None or self.before == 0:
            return None
        return self.delta / abs(self.before) * 100.0


def diff_runs(before: RunRecord, after: RunRecord) -> List[DiffRow]:
    """Per-metric delta rows over the union of both records' metrics."""
    ours = flatten_metrics(before)
    theirs = flatten_metrics(after)
    return [DiffRow(metric=name, before=ours.get(name), after=theirs.get(name))
            for name in sorted(set(ours) | set(theirs))]


def render_diff(before: RunRecord, after: RunRecord,
                rows: Sequence[DiffRow]) -> str:
    """The ``repro runs diff`` table (changed metrics only, widest first)."""
    lines = [f"runs diff: {before.run_id} ({before.executor}) -> "
             f"{after.run_id} ({after.executor})"]
    if before.config_key != after.config_key:
        lines.append("warning: the runs measure different grids "
                     f"(config_key {before.config_key} vs "
                     f"{after.config_key}); deltas compare unlike work")
    header = f"{'metric':<40s} {'before':>12s} {'after':>12s} " \
             f"{'delta':>12s} {'%':>8s}"
    lines += [header, "-" * len(header)]
    changed = 0
    for row in rows:
        if row.delta == 0:
            continue
        changed += 1

        def cell(value: Optional[float]) -> str:
            return "-" if value is None else f"{value:12.4g}"

        percent = "-" if row.percent is None else f"{row.percent:+7.1f}%"
        lines.append(f"{row.metric:<40s} {cell(row.before):>12s} "
                     f"{cell(row.after):>12s} {cell(row.delta):>12s} "
                     f"{percent:>8s}")
    if not changed:
        lines.append("(no metric changed)")
    lines.append(f"{changed} metric(s) changed, "
                 f"{len(rows) - changed} unchanged")
    return "\n".join(lines)


_FAIL_IF_RE = re.compile(
    r"^\s*(?P<metric>[A-Za-z0-9_.\-]+)\s*(?P<op>[<>])\s*"
    r"(?P<value>[+-]?\d+(?:\.\d+)?)\s*(?P<pct>%)?\s*$")


@dataclass(frozen=True)
class FailIf:
    """One ``--fail-if`` regression threshold, e.g. ``wall_clock>+10%``.

    Semantics: with ``delta = after - before``, the diff *fails* when
    ``delta OP threshold`` holds, where a ``%`` threshold is relative to
    the before value (``threshold = value/100 * |before|``).  So
    ``wall_clock>+10%`` fails on a >10 % slowdown and ``cache_hit<-2``
    fails when the hit counter drops by more than 2.
    """

    metric: str
    op: str              # ">" or "<"
    value: float
    percent: bool

    @classmethod
    def parse(cls, text: str) -> "FailIf":
        match = _FAIL_IF_RE.match(text)
        if match is None:
            raise RegistryError(
                f"invalid --fail-if spec {text!r}: expected "
                "METRIC>+N[%] or METRIC<-N[%], e.g. 'wall_clock>+10%'")
        return cls(metric=match.group("metric"), op=match.group("op"),
                   value=float(match.group("value")),
                   percent=match.group("pct") is not None)

    def check(self, row: DiffRow) -> Optional[str]:
        """A violation message if ``row`` trips this threshold, else None."""
        if row.before is None or row.after is None:
            return (f"{self.metric}: metric is missing from "
                    f"{'the before' if row.before is None else 'the after'} "
                    "run; cannot gate on it")
        delta = row.after - row.before
        if self.percent:
            if row.before == 0:
                # No baseline to be relative to: any move in the failing
                # direction trips a percent threshold.
                exceeded = delta > 0 if self.op == ">" else delta < 0
            else:
                threshold = self.value / 100.0 * abs(row.before)
                exceeded = delta > threshold if self.op == ">" \
                    else delta < threshold
            shown = f"{self.value:+g}%"
        else:
            exceeded = delta > self.value if self.op == ">" \
                else delta < self.value
            shown = f"{self.value:+g}"
        if not exceeded:
            return None
        percent = "" if row.percent is None else f" ({row.percent:+.1f}%)"
        return (f"{self.metric}: {row.before:g} -> {row.after:g}, delta "
                f"{delta:+g}{percent} exceeds --fail-if "
                f"{self.metric}{self.op}{shown}")


def check_fail_ifs(rows: Sequence[DiffRow],
                   specs: Sequence[FailIf]) -> List[str]:
    """All violation messages for ``specs`` against a diff's rows."""
    by_metric = {row.metric: row for row in rows}
    violations: List[str] = []
    for spec in specs:
        row = by_metric.get(spec.metric)
        if row is None:
            violations.append(f"{spec.metric}: metric is missing from both "
                              "runs; cannot gate on it")
            continue
        message = spec.check(row)
        if message is not None:
            violations.append(message)
    return violations


# ----------------------------------------------------------------------
# the BENCH_*.json trajectory
# ----------------------------------------------------------------------
def bench_datapoint(record: RunRecord) -> Dict[str, object]:
    """One trajectory datapoint: the record's identity plus flat metrics."""
    return {
        "run_id": record.run_id,
        "created_at": record.created_at,
        "executor": record.executor,
        "config_key": record.config_key,
        "seed": record.seed,
        "trials": record.trials,
        "jobs": record.jobs,
        "settings": len(record.setting_keys),
        "tasks": len(record.task_ids),
        "metrics": flatten_metrics(record),
    }


def infer_pr_number(path: Union[str, Path]) -> Optional[int]:
    match = _BENCH_NAME_RE.match(Path(path).name)
    return int(match.group(1)) if match else None


def export_bench(records: Sequence[RunRecord], path: Union[str, Path],
                 pr: Optional[int] = None) -> Dict[str, object]:
    """Write the trajectory file for ``records``; returns the payload.

    Records are emitted in chronological (run id) order.  ``pr`` tags which
    PR the trajectory snapshot belongs to; when omitted it is inferred from
    a ``BENCH_<n>.json`` file name, else recorded as ``None``.
    """
    if not records:
        raise RegistryError("no run records to export; run something with "
                            "--registry first")
    target = Path(path)
    payload: Dict[str, object] = {
        "kind": _BENCH_KIND,
        "format_version": BENCH_FORMAT_VERSION,
        "pr": pr if pr is not None else infer_pr_number(target),
        "datapoints": [bench_datapoint(record)
                       for record in sorted(records,
                                            key=lambda r: r.run_id)],
    }
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=1, ensure_ascii=False)
                      + "\n", encoding="utf-8")
    return payload
