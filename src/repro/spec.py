"""Task and intent specifications.

These dataclasses describe *what a benchmark task asks for* in a way both the
policy simulator (:mod:`repro.llm.planner`) and the benchmark checkers
(:mod:`repro.bench`) can consume.  They live in a dependency-free module so
that the LLM substrate does not need to import the benchmark package (and
vice versa).

An :class:`Intent` is one abstract semantic operation — "access the
``Apply to All`` control", "set the scrollbar to 80%", "type 42 into the
Name Box".  A task's intent list is the *oracle decomposition* of the
instruction: it is what a competent planner would derive from the natural-
language instruction plus application knowledge.  The policy simulator
starts from this decomposition and then degrades it according to the model
profile (semantic errors, grounding errors, planning errors), which is how
LLM weaknesses enter the reproduction without a live model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple


class IntentKind(str, enum.Enum):
    """The kinds of abstract operations tasks are composed of."""

    #: Navigate to a functional control and click it.
    ACCESS = "access"
    #: Navigate to an Edit-type control and type text into it.
    ACCESS_INPUT = "access_input"
    #: Press a keyboard shortcut (auxiliary; e.g. ENTER to commit).
    SHORTCUT = "shortcut"
    #: Set a scrollbar to an absolute position (composite interaction).
    SET_SCROLLBAR = "set_scrollbar"
    #: Select a contiguous range of lines in a text control.
    SELECT_LINES = "select_lines"
    #: Select a contiguous range of paragraphs in a text control.
    SELECT_PARAGRAPHS = "select_paragraphs"
    #: Select one or more controls (cells, list items) by name.
    SELECT_CONTROLS = "select_controls"
    #: Retrieve structured text from controls and use it for a later choice.
    OBSERVE = "observe"


@dataclass(frozen=True)
class Intent:
    """One abstract semantic operation of a task."""

    kind: IntentKind
    #: Name of the target functional control (ACCESS/ACCESS_INPUT), or of the
    #: on-screen control operated on by state/observation declarations.
    target: str = ""
    #: Substring that must appear in the navigation path of the target; used
    #: to disambiguate controls that share a name (e.g. the colour "Blue"
    #: under "Fill Color" vs under "Font Color").
    scope_hint: str = ""
    #: Text to type (ACCESS_INPUT) or key combination (SHORTCUT).
    text: str = ""
    #: Numeric argument (scroll percent, spinner value).
    value: float = 0.0
    #: Inclusive (start, end) range for SELECT_LINES / SELECT_PARAGRAPHS, or
    #: an empty tuple.
    select_range: Tuple[int, ...] = ()
    #: Control names to select for SELECT_CONTROLS.
    control_names: Tuple[str, ...] = ()
    #: Plausible-but-wrong alternatives a semantically confused planner might
    #: pick instead of ``target`` (drives the policy-failure model).
    distractors: Tuple[str, ...] = ()

    def describe(self) -> str:
        if self.kind in (IntentKind.ACCESS, IntentKind.ACCESS_INPUT):
            suffix = f" <- {self.text!r}" if self.text else ""
            scope = f" (via {self.scope_hint})" if self.scope_hint else ""
            return f"{self.kind.value}: {self.target}{scope}{suffix}"
        if self.kind == IntentKind.SET_SCROLLBAR:
            return f"{self.kind.value}: {self.target} -> {self.value:.0f}%"
        if self.kind in (IntentKind.SELECT_LINES, IntentKind.SELECT_PARAGRAPHS):
            return f"{self.kind.value}: {self.target} {self.select_range}"
        if self.kind == IntentKind.SELECT_CONTROLS:
            return f"{self.kind.value}: {', '.join(self.control_names)}"
        if self.kind == IntentKind.SHORTCUT:
            return f"{self.kind.value}: {self.text}"
        return f"{self.kind.value}: {self.target}"


class FailureCategory(str, enum.Enum):
    """Top-level failure taxonomy (paper §5.6, Figure 6)."""

    POLICY = "policy"
    MECHANISM = "mechanism"


class FailureCause(str, enum.Enum):
    """Fine-grained failure causes used in the paper's failure analysis."""

    # policy-level
    AMBIGUOUS_TASK = "ambiguous_task_description"
    CONTROL_SEMANTICS = "misinterpreted_control_semantics"
    VISUAL_SEMANTIC = "weak_visual_semantic_understanding"
    SUBTLE_SEMANTICS = "misunderstood_subtle_task_semantics"
    # mechanism-level
    CONTROL_LOCALIZATION = "control_localization_or_navigation_error"
    COMPOSITE_INTERACTION = "composite_interaction_error"
    TOPOLOGY_INACCURACY = "topology_modeling_inaccuracy"
    STEP_BUDGET_EXHAUSTED = "step_budget_exhausted"

    @property
    def category(self) -> FailureCategory:
        if self in (FailureCause.AMBIGUOUS_TASK, FailureCause.CONTROL_SEMANTICS,
                    FailureCause.VISUAL_SEMANTIC, FailureCause.SUBTLE_SEMANTICS):
            return FailureCategory.POLICY
        return FailureCategory.MECHANISM


@dataclass
class TaskSpec:
    """One benchmark task (an OSWorld-W-style single-app scenario)."""

    task_id: str
    app: str                                   # "word" | "excel" | "powerpoint"
    instruction: str
    intents: Tuple[Intent, ...]
    #: Called with the application instance after the run; True == success.
    checker: Callable[[object], bool]
    #: Multiplier on the model's semantic-error rate (0 = trivially clear,
    #: 1 = average, >1 = harder than average).
    semantic_difficulty: float = 1.0
    #: Whether the instruction itself is ambiguous (the dominant policy
    #: failure cause in the paper's analysis).
    ambiguous: bool = False
    #: Which policy-level cause a semantic failure on this task is recorded
    #: under (matches the paper's categories).
    policy_failure_cause: FailureCause = FailureCause.SUBTLE_SEMANTICS
    #: The task requires reading dynamic content before acting (observation
    #: declaration / visual parsing for the baseline).
    requires_observation: bool = False
    #: The task involves a composite interaction (scroll/drag) at some point.
    uses_composite_interaction: bool = False
    #: Free-form tags used by reporting.
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        # "synthetic:<token>" names a generated app (repro.apps.synthetic);
        # the prefix is matched literally to keep this module dependency-free.
        if self.app not in {"word", "excel", "powerpoint"} \
                and not self.app.startswith("synthetic:"):
            raise ValueError(f"unknown app {self.app!r} for task {self.task_id}")
        if not self.intents:
            raise ValueError(f"task {self.task_id} has no intents")

    def intent_count(self) -> int:
        return len(self.intents)
