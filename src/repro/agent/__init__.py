"""A computer-use-agent framework in the mould of UFO-2.

The framework mirrors the baseline the paper evaluates against:

* a :class:`repro.agent.host_agent.HostAgent` decomposes the user task,
  activates the target application and verifies overall completion (a fixed
  3-LLM-call framework overhead);
* an *AppAgent* executes the delegated subtask against one application —
  either the GUI-only baseline (:mod:`repro.agent.app_agent`, action
  sequences over currently visible, alphabetically labelled controls) or the
  DMI-augmented agent (:mod:`repro.agent.dmi_agent`, declarative DMI calls
  with GUI primitives as the slow-path fallback);
* a session records every LLM call, delivered action, token count and the
  failure classification used by the benchmark's analysis.
"""

from repro.agent.actions import ActionOutcome, GuiAction
from repro.agent.labeling import alphabetic_labels, label_visible_controls
from repro.agent.session import (
    FailureRecord,
    InterfaceSetting,
    LLMCallRecord,
    SessionResult,
)
from repro.agent.app_agent import GuiAppAgent, GuiAgentConfig
from repro.agent.dmi_agent import DmiAppAgent, DmiAgentConfig
from repro.agent.host_agent import HostAgent, HostAgentConfig

__all__ = [
    "ActionOutcome",
    "DmiAgentConfig",
    "DmiAppAgent",
    "FailureRecord",
    "GuiAction",
    "GuiAgentConfig",
    "GuiAppAgent",
    "HostAgent",
    "HostAgentConfig",
    "InterfaceSetting",
    "LLMCallRecord",
    "SessionResult",
    "alphabetic_labels",
    "label_visible_controls",
]
