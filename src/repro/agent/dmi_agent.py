"""The DMI-augmented AppAgent (GUI+DMI).

The agent is the same AppAgent as the baseline but is instructed to prefer
DMI's declarative primitives; raw GUI actions remain available as the
slow-path fallback (paper §5.1 and §6).  One LLM round emits either a batch
of ``visit`` commands, one interaction-related declaration, a
``further_query``, or a GUI fallback action — DMI's design forbids mixing
``visit`` with interaction-related interfaces in the same turn.

Because navigation and interaction are executed deterministically by DMI,
the mechanism-level error models (grounding, navigation planning, composite
interaction) do not apply on the fast path.  What remains are policy-level
errors from the planner plus a small probability that the offline topology
does not cover a control the task needs (``topology_gap_rate``), in which
case the agent falls back to imperative GUI execution for that intent and
re-inherits the baseline's fragility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.agent.app_agent import GuiAgentConfig, GuiAppAgent
from repro.agent.session import FailureRecord, InterfaceSetting, LLMCallRecord, SessionResult
from repro.apps.base import Application
from repro.dmi.interface import DMI
from repro.llm.grounding import GroundingModel
from repro.llm.planner import PlannedCall, SemanticPlanner
from repro.llm.profiles import ModelProfile
from repro.spec import FailureCause, Intent, IntentKind, TaskSpec


@dataclass
class DmiAgentConfig:
    """Budgets and prompt-size constants for the DMI-augmented agent."""

    max_total_steps: int = 30
    base_prompt_tokens: int = 1500
    completion_tokens: int = 220
    seconds_per_action: float = 0.4
    #: Probability that the offline topology misses/misdescribes a control
    #: the task needs (paper §5.6 reports 4.8% of DMI failures from
    #: topology/modeling inaccuracies; §6 discusses the causes).
    topology_gap_rate: float = 0.05
    #: How many times the agent re-plans after structured error feedback
    #: before giving up on a call.
    max_replans: int = 2


class DmiAppAgent:
    """Executes one task trial through DMI, with GUI primitives as fallback."""

    def __init__(self, app: Application, dmi: DMI, profile: ModelProfile,
                 rng: Optional[random.Random] = None,
                 config: Optional[DmiAgentConfig] = None) -> None:
        self.app = app
        self.dmi = dmi
        self.profile = profile
        self.rng = rng or random.Random(0)
        self.config = config or DmiAgentConfig()
        self.planner = SemanticPlanner(profile, self.rng)
        self.grounding = GroundingModel(profile, self.rng)
        self._extra_context_tokens = 0

    # ------------------------------------------------------------------
    def execute_task(self, task: TaskSpec, result: SessionResult) -> None:
        plan = self.planner.plan_declarative(task, self.dmi.forest, self.dmi.core)
        failure: Optional[FailureRecord] = None
        mechanism_issue = False
        core_budget = self.config.max_total_steps - 3

        calls = list(plan.calls)
        call_index = 0
        while call_index < len(calls):
            if result.core_steps >= core_budget:
                failure = FailureRecord(FailureCause.STEP_BUDGET_EXHAUSTED,
                                        detail="30-step cap reached")
                break
            call = calls[call_index]
            self._record_round(result, call)

            if call.kind == "visit":
                ok, needs_fallback = self._execute_visit(call, task, result)
                if needs_fallback:
                    mechanism_issue = True
                    fallback_failure = self._gui_fallback(call, task, result)
                    if fallback_failure is not None:
                        failure = fallback_failure
                        break
                elif not ok:
                    mechanism_issue = True
            elif call.kind == "further_query":
                query = self.dmi.further_query(call.payload.get("node_ids", []))
                self._extra_context_tokens += query.tokens
            elif call.kind == "set_scrollbar_pos":
                feedback = self.dmi.set_scrollbar_pos(call.payload["control"],
                                                      None, call.payload["percent"])
                result.record_actions(1, self.config.seconds_per_action)
                if not feedback.ok:
                    mechanism_issue = True
            elif call.kind == "select_lines":
                feedback = self.dmi.select_lines(call.payload["control"],
                                                 call.payload["start"], call.payload["end"])
                result.record_actions(1, self.config.seconds_per_action)
                if not feedback.ok:
                    mechanism_issue = True
            elif call.kind == "select_paragraphs":
                feedback = self.dmi.select_paragraphs(call.payload["control"],
                                                      call.payload["start"], call.payload["end"])
                result.record_actions(1, self.config.seconds_per_action)
                if not feedback.ok:
                    mechanism_issue = True
            elif call.kind == "select_controls":
                feedback = self.dmi.select_controls(call.payload["controls"])
                result.record_actions(1, self.config.seconds_per_action)
                if not feedback.ok:
                    mechanism_issue = True
            elif call.kind == "get_texts":
                self.dmi.get_texts(call.payload.get("control"))
            elif call.kind == "gui_fallback":
                mechanism_issue = True
                fallback_failure = self._gui_fallback(call, task, result)
                if fallback_failure is not None:
                    failure = fallback_failure
                    break
            call_index += 1

        result.success = bool(task.checker(self.app)) and failure is None
        result.one_shot = result.success and result.core_steps <= 1
        if result.success:
            return
        if failure is None:
            if plan.corruption is not None:
                failure = FailureRecord(plan.corruption, detail="semantic planning error")
            elif mechanism_issue:
                failure = FailureRecord(FailureCause.TOPOLOGY_INACCURACY,
                                        detail="declarative execution hit a topology gap")
            else:
                failure = FailureRecord(task.policy_failure_cause,
                                        detail="final state did not satisfy the checker")
        result.failure = failure

    # ------------------------------------------------------------------
    # rounds
    # ------------------------------------------------------------------
    def _record_round(self, result: SessionResult, call: PlannedCall) -> None:
        context = self.dmi.context_token_breakdown()["total"]
        prompt = self.config.base_prompt_tokens + context + self._extra_context_tokens
        latency = (self.profile.base_latency_s
                   + prompt / 1000.0 * self.profile.latency_per_1k_prompt_tokens_s
                   + self.rng.uniform(-2.0, 2.0))
        result.record_call(LLMCallRecord(role="app", purpose="execute",
                                         prompt_tokens=prompt,
                                         completion_tokens=self.config.completion_tokens,
                                         latency_s=max(1.0, latency),
                                         detail=call.kind))

    # ------------------------------------------------------------------
    # visit execution with structured-feedback replanning
    # ------------------------------------------------------------------
    def _execute_visit(self, call: PlannedCall, task: TaskSpec, result: SessionResult):
        """Returns (ok, needs_gui_fallback)."""
        commands = list(call.payload.get("commands", []))
        # Simulated topology gap: the offline model is stale for one of the
        # controls this call touches.
        if self.rng.random() < self.config.topology_gap_rate and commands:
            return False, True
        visit_result = self.dmi.visit(commands)
        result.record_actions(visit_result.actions_delivered, self.config.seconds_per_action)
        if visit_result.ok:
            return True, False
        # Structured error feedback: re-plan and retry the failing commands.
        for _ in range(self.config.max_replans):
            failing = [f for f in visit_result.errors()]
            if not failing:
                break
            retry = self.dmi.visit(commands)
            result.record_actions(retry.actions_delivered, self.config.seconds_per_action)
            if retry.ok:
                return True, False
            visit_result = retry
        return False, True

    # ------------------------------------------------------------------
    # GUI slow-path fallback
    # ------------------------------------------------------------------
    def _gui_fallback(self, call: PlannedCall, task: TaskSpec,
                      result: SessionResult) -> Optional[FailureRecord]:
        """Execute the intents behind a failed call imperatively.

        The fallback re-uses the baseline agent's executor on a task that is
        narrowed to the affected intents, so it inherits the baseline's
        error model and step accounting (minus the framework overhead, which
        was already charged).
        """
        intents = self._intents_for_call(call, task)
        if not intents:
            return None
        fallback_task = TaskSpec(
            task_id=f"{task.task_id}#fallback",
            app=task.app,
            instruction=task.instruction,
            intents=tuple(intents),
            checker=lambda _app: True,
            semantic_difficulty=0.0,
            uses_composite_interaction=task.uses_composite_interaction,
        )
        baseline = GuiAppAgent(self.app, self.dmi.forest, self.profile,
                               InterfaceSetting.GUI_PLUS_DMI, rng=self.rng,
                               config=GuiAgentConfig(max_total_steps=result.core_steps + 9 + 3))
        sub_result = SessionResult(task_id=fallback_task.task_id, app=task.app,
                                   interface=InterfaceSetting.GUI_PLUS_DMI,
                                   model=self.profile.name, reasoning=self.profile.reasoning)
        baseline.execute_task(fallback_task, sub_result)
        # Merge accounting into the parent session.
        for record in sub_result.calls:
            result.record_call(record)
        result.record_actions(sub_result.actions, 0.0)
        result.notes.append(f"gui fallback for {call.kind} ({len(intents)} intent(s))")
        if sub_result.failure is not None and \
                sub_result.failure.cause != FailureCause.STEP_BUDGET_EXHAUSTED:
            return sub_result.failure
        return None

    def _intents_for_call(self, call: PlannedCall, task: TaskSpec) -> List[Intent]:
        if call.kind == "gui_fallback":
            intent = call.payload.get("intent")
            return [intent] if isinstance(intent, Intent) else []
        if call.intent_index >= 0 and call.intent_index < len(task.intents):
            return [task.intents[call.intent_index]]
        # A visit bundle: recover the access intents it covered, together
        # with the auxiliary shortcuts interleaved with them (e.g. the ENTER
        # that commits a Name Box edit).
        return [i for i in task.intents
                if i.kind in (IntentKind.ACCESS, IntentKind.ACCESS_INPUT, IntentKind.SHORTCUT)]
