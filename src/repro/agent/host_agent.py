"""The HostAgent: multi-agent orchestration and the fixed framework overhead.

UFO-2's architecture routes every task through a HostAgent that decomposes
the request, opens/activates the target application and finally verifies
completion, while a per-application AppAgent executes the delegated subtask.
For single-application tasks this contributes a fixed 3-LLM-call overhead:

1. HostAgent decomposes the task and activates the application;
2. (AppAgent executes — one or more calls, counted as *core steps*);
3. AppAgent verifies its result and decides on hand-off;
4. HostAgent verifies overall completion.

``HostAgent.run_task`` wraps either AppAgent (GUI-only baseline or GUI+DMI)
with that overhead and produces the :class:`SessionResult` the benchmark
aggregates (paper §5.3, "One-shot task completion").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Union

from repro.agent.app_agent import GuiAgentConfig, GuiAppAgent
from repro.agent.dmi_agent import DmiAgentConfig, DmiAppAgent
from repro.agent.session import InterfaceSetting, LLMCallRecord, SessionResult
from repro.apps.base import Application
from repro.dmi.interface import DMI
from repro.llm.profiles import ModelProfile
from repro.spec import TaskSpec
from repro.topology.core import CoreTopology
from repro.topology.forest import NavigationForest

#: The framework's fixed number of non-execution LLM calls per task.
FRAMEWORK_OVERHEAD_STEPS = 3


@dataclass
class HostAgentConfig:
    """Prompt sizes for the orchestration calls."""

    host_prompt_tokens: int = 900
    verify_prompt_tokens: int = 1100
    completion_tokens: int = 120


class HostAgent:
    """Runs one task trial end to end under a given interface setting."""

    def __init__(self, profile: ModelProfile, setting: InterfaceSetting,
                 rng: Optional[random.Random] = None,
                 config: Optional[HostAgentConfig] = None) -> None:
        self.profile = profile
        self.setting = setting
        self.rng = rng or random.Random(0)
        self.config = config or HostAgentConfig()

    # ------------------------------------------------------------------
    def run_task(self, task: TaskSpec, app: Application,
                 forest: NavigationForest,
                 core: Optional[CoreTopology] = None,
                 dmi: Optional[DMI] = None,
                 gui_config: Optional[GuiAgentConfig] = None,
                 dmi_config: Optional[DmiAgentConfig] = None) -> SessionResult:
        """Execute ``task`` against ``app`` and return the session result."""
        result = SessionResult(task_id=task.task_id, app=task.app, interface=self.setting,
                               model=self.profile.name, reasoning=self.profile.reasoning)

        # 1. HostAgent decomposes the task and activates the application.
        self._overhead_call(result, role="host", purpose="decompose",
                            prompt_tokens=self.config.host_prompt_tokens)

        # 2..n. AppAgent executes the delegated subtask.
        if self.setting.uses_dmi:
            if dmi is None:
                raise ValueError("GUI+DMI setting requires a DMI instance")
            app_agent = DmiAppAgent(app, dmi, self.profile, rng=self.rng, config=dmi_config)
        else:
            app_agent = GuiAppAgent(app, forest, self.profile, self.setting, rng=self.rng,
                                    config=gui_config, core=core)
        app_agent.execute_task(task, result)

        # n+1. AppAgent verifies the result and decides on hand-off.
        self._overhead_call(result, role="app", purpose="verify",
                            prompt_tokens=self.config.verify_prompt_tokens)
        # n+2. HostAgent verifies overall task completion.
        self._overhead_call(result, role="host", purpose="verify",
                            prompt_tokens=self.config.host_prompt_tokens)

        result.one_shot = result.success and result.core_steps <= 1
        return result

    # ------------------------------------------------------------------
    def _overhead_call(self, result: SessionResult, role: str, purpose: str,
                       prompt_tokens: int) -> None:
        latency = (self.profile.base_latency_s * 0.6
                   + prompt_tokens / 1000.0 * self.profile.latency_per_1k_prompt_tokens_s
                   + self.rng.uniform(-1.5, 1.5))
        result.record_call(LLMCallRecord(role=role, purpose=purpose,
                                         prompt_tokens=prompt_tokens,
                                         completion_tokens=self.config.completion_tokens,
                                         latency_s=max(1.0, latency)))
