"""Session records: LLM calls, actions, failures, and per-task results.

Everything the benchmark's metrics and failure analysis need is captured
here: the number of LLM calls (steps), the simulated wall-clock time, token
usage, whether the core user intent completed in a single LLM call
(one-shot), and — when the task fails — a classified failure record
(policy vs mechanism, with the fine-grained cause).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.spec import FailureCategory, FailureCause


class InterfaceSetting(str, enum.Enum):
    """The three evaluated interface settings (paper Table 3)."""

    GUI_ONLY = "gui-only"
    GUI_PLUS_FOREST = "gui-only+nav.forest"     # ablation: static knowledge only
    GUI_PLUS_DMI = "gui+dmi"

    @property
    def uses_dmi(self) -> bool:
        return self is InterfaceSetting.GUI_PLUS_DMI

    @property
    def has_forest_knowledge(self) -> bool:
        return self in (InterfaceSetting.GUI_PLUS_FOREST, InterfaceSetting.GUI_PLUS_DMI)


@dataclass
class LLMCallRecord:
    """One simulated LLM round trip."""

    role: str                       # "host" | "app"
    purpose: str                    # "decompose" | "execute" | "verify"
    prompt_tokens: int = 0
    completion_tokens: int = 0
    latency_s: float = 0.0
    detail: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "role": self.role,
            "purpose": self.purpose,
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
            "latency_s": self.latency_s,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "LLMCallRecord":
        return cls(**payload)


@dataclass
class FailureRecord:
    """Why a task trial failed."""

    cause: FailureCause
    detail: str = ""

    @property
    def category(self) -> FailureCategory:
        return self.cause.category

    def as_dict(self) -> Dict[str, object]:
        return {"cause": self.cause.value, "detail": self.detail}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FailureRecord":
        return cls(cause=FailureCause(payload["cause"]),
                   detail=str(payload.get("detail", "")))


@dataclass
class SessionResult:
    """The outcome of one task trial under one interface setting."""

    task_id: str
    app: str
    interface: InterfaceSetting
    model: str
    reasoning: str
    success: bool = False
    #: Total LLM calls, including the fixed framework overhead.
    steps: int = 0
    #: LLM calls made by the AppAgent's execution phase (steps minus the
    #: fixed 3-call framework overhead).
    core_steps: int = 0
    #: Simulated wall-clock seconds.
    wall_time_s: float = 0.0
    #: Low-level input actions delivered to the application.
    actions: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    #: True when the core user intent completed within a single AppAgent
    #: execution call (paper §5.3, "one-shot task completion").
    one_shot: bool = False
    failure: Optional[FailureRecord] = None
    calls: List[LLMCallRecord] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    def record_call(self, call: LLMCallRecord) -> None:
        self.calls.append(call)
        self.steps += 1
        if call.role == "app" and call.purpose == "execute":
            self.core_steps += 1
        self.prompt_tokens += call.prompt_tokens
        self.completion_tokens += call.completion_tokens
        self.wall_time_s += call.latency_s

    def record_actions(self, count: int, seconds_per_action: float = 0.4) -> None:
        self.actions += count
        self.wall_time_s += count * seconds_per_action

    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    def as_dict(self) -> Dict[str, object]:
        """Plain-data representation, lossless enough for :meth:`from_dict`.

        ``time_s`` stays rounded for human consumption; ``wall_time_s``
        carries the exact float so a round trip (e.g. across a process
        boundary or a JSON export) reproduces aggregate metrics bit-for-bit.
        """
        return {
            "task_id": self.task_id,
            "app": self.app,
            "interface": self.interface.value,
            "model": self.model,
            "reasoning": self.reasoning,
            "success": self.success,
            "steps": self.steps,
            "core_steps": self.core_steps,
            "time_s": round(self.wall_time_s, 1),
            "wall_time_s": self.wall_time_s,
            "actions": self.actions,
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
            "one_shot": self.one_shot,
            "failure_cause": self.failure.cause.value if self.failure else None,
            "failure_category": self.failure.category.value if self.failure else None,
            "failure": self.failure.as_dict() if self.failure else None,
            "calls": [call.as_dict() for call in self.calls],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SessionResult":
        """Rebuild a result from :meth:`as_dict` output (exact round trip)."""
        result = cls(
            task_id=payload["task_id"],
            app=payload["app"],
            interface=InterfaceSetting(payload["interface"]),
            model=payload["model"],
            reasoning=payload["reasoning"],
        )
        result.success = bool(payload.get("success", False))
        result.steps = int(payload.get("steps", 0))
        result.core_steps = int(payload.get("core_steps", 0))
        result.wall_time_s = float(payload.get("wall_time_s", payload.get("time_s", 0.0)))
        result.actions = int(payload.get("actions", 0))
        result.prompt_tokens = int(payload.get("prompt_tokens", 0))
        result.completion_tokens = int(payload.get("completion_tokens", 0))
        result.one_shot = bool(payload.get("one_shot", False))
        failure = payload.get("failure")
        if failure:
            result.failure = FailureRecord.from_dict(failure)
        elif payload.get("failure_cause"):
            result.failure = FailureRecord(FailureCause(payload["failure_cause"]))
        result.calls = [LLMCallRecord.from_dict(call) for call in payload.get("calls", [])]
        result.notes = list(payload.get("notes", []))
        return result
