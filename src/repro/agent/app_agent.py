"""The GUI-only AppAgent (the UFO2-as-style baseline).

The agent drives an application exclusively through imperative GUI actions.
Each LLM round it labels the currently visible controls, asks the policy
simulator for the next actions, and executes an *action sequence*: as many
of the remaining plan steps as reference controls that were visible at the
start of the round (the baseline cannot plan over controls that are not yet
exposed — paper §5.1 and §5.3).

The round loop reproduces the mechanism-level fragility the paper measures:

* **grounding errors** — a targeted click may land on a neighbouring control;
* **navigation-planning errors** — a round may be spent opening the wrong
  branch;
* **recovery** — when the expected control is not on screen (usually the
  consequence of an earlier error) the agent closes stray dialogs and
  re-navigates the current intent from the top, burning extra rounds;
* **composite interactions** — scrollbar drags and text selections follow an
  observe–act loop with per-attempt failure probabilities;
* **step budget** — the task is capped at 30 LLM calls overall.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.agent.actions import deliver_click, deliver_scrollbar_drag, deliver_shortcut, deliver_text
from repro.agent.labeling import label_visible_controls, labelled_prompt_tokens
from repro.agent.session import FailureRecord, InterfaceSetting, LLMCallRecord, SessionResult
from repro.apps.base import Application
from repro.gui.widgets import ScrollBarControl, Window
from repro.llm.grounding import GroundingModel
from repro.llm.planner import MicroStep, SemanticPlanner
from repro.llm.profiles import ModelProfile
from repro.spec import FailureCause, IntentKind, TaskSpec
from repro.topology.core import CoreTopology
from repro.topology.forest import NavigationForest
from repro.uia.element import UIElement
from repro.uia.patterns import PatternId


@dataclass
class GuiAgentConfig:
    """Budgets and prompt-size constants for the baseline agent."""

    #: Total LLM-call cap per task, including the 3-call framework overhead.
    max_total_steps: int = 30
    #: Tokens of the fixed AppAgent round prompt: system prompt, task and
    #: execution history, plus the screenshot the multimodal baseline sends
    #: each round (image tokens dominate).
    base_prompt_tokens: int = 4500
    #: Mean completion tokens per round.
    completion_tokens: int = 180
    #: Seconds charged per delivered low-level action.
    seconds_per_action: float = 0.4
    #: How many times the agent may re-navigate one intent before giving up.
    max_recoveries_per_intent: int = 2
    #: How many observe–act attempts a composite interaction gets.
    max_composite_attempts: int = 3
    #: Tolerance (percentage points) for scrollbar positioning.
    scroll_tolerance: float = 6.0
    #: Probability of continuing an action sequence with a further step in
    #: the same round.  The UFO2-style baseline *can* chain actions over
    #: currently visible controls, but in practice emits conservative,
    #: shorter sequences and re-observes frequently; this models that.
    chain_continuation_probability: float = 0.55


class GuiAppAgent:
    """Executes one task trial through imperative GUI actions only."""

    def __init__(self, app: Application, forest: NavigationForest, profile: ModelProfile,
                 setting: InterfaceSetting, rng: Optional[random.Random] = None,
                 config: Optional[GuiAgentConfig] = None,
                 core: Optional[CoreTopology] = None) -> None:
        self.app = app
        self.forest = forest
        self.core = core
        self.profile = profile
        self.setting = setting
        self.rng = rng or random.Random(0)
        self.config = config or GuiAgentConfig()
        self.planner = SemanticPlanner(profile, self.rng)
        self.grounding = GroundingModel(profile, self.rng)

    # ------------------------------------------------------------------
    def execute_task(self, task: TaskSpec, result: SessionResult) -> None:
        """Run the AppAgent execution phase; mutates ``result`` in place."""
        knows = self.profile.knows_app_structure or self.setting.has_forest_knowledge
        plan = self.planner.plan_imperative(task, self.forest, knows_structure=knows)
        steps = plan.steps
        index = 0
        recoveries: Dict[int, int] = {}
        composite_attempts: Dict[int, int] = {}
        visual_misread = False
        grounding_error_seen = False
        failure: Optional[FailureRecord] = None
        core_budget = self.config.max_total_steps - 3

        while index < len(steps):
            if result.core_steps >= core_budget:
                failure = FailureRecord(FailureCause.STEP_BUDGET_EXHAUSTED,
                                        detail="30-step cap reached")
                break
            visible = self._visible_elements()
            visible_names = {e.name for e in visible if e.name}
            self._record_round(result, visible)

            # A round occasionally goes to a wrong navigation branch.
            if self.rng.random() < self.profile.nav_plan_error_rate:
                self._wasted_round(result, visible)
                grounding_error_seen = True
                continue

            step = steps[index]
            if step.kind in ("click", "type") and step.target not in visible_names \
                    and not self._locatable(step.target, visible):
                recovered = self._recover(task, steps, index, recoveries, result)
                if not recovered:
                    failure = FailureRecord(FailureCause.CONTROL_LOCALIZATION,
                                            detail=f"could not reach {step.target!r}")
                    break
                continue

            # Execute the action sequence for this round.
            bundle_executed = 0
            while index < len(steps):
                step = steps[index]
                if step.kind in ("click", "type") and bundle_executed > 0 \
                        and step.target not in visible_names:
                    break  # not visible at round start: next round
                if bundle_executed > 0 and \
                        self.rng.random() >= self.config.chain_continuation_probability:
                    break  # conservative agent: re-observe before continuing
                if step.kind == "click":
                    outcome_ok, was_error = self._do_click(step, result)
                    grounding_error_seen = grounding_error_seen or was_error
                    if not outcome_ok:
                        break
                    index += 1
                elif step.kind == "type":
                    ok, was_error = self._do_type(step, result)
                    grounding_error_seen = grounding_error_seen or was_error
                    if not ok:
                        break
                    index += 1
                elif step.kind == "shortcut":
                    deliver_shortcut(self.app, step.text)
                    result.record_actions(1, self.config.seconds_per_action)
                    index += 1
                elif step.kind == "drag_scroll":
                    done, failed = self._do_drag_scroll(step, index, composite_attempts, result)
                    if failed:
                        failure = FailureRecord(FailureCause.COMPOSITE_INTERACTION,
                                                detail=f"scrollbar drag to {step.value}% failed")
                        index = len(steps)
                    elif done:
                        index += 1
                    break  # observe-act loop: one attempt per round
                elif step.kind == "select_text":
                    done, failed = self._do_select_text(step, index, composite_attempts, result)
                    if failed:
                        failure = FailureRecord(FailureCause.COMPOSITE_INTERACTION,
                                                detail="iterative text selection failed")
                        index = len(steps)
                    elif done:
                        index += 1
                    break
                elif step.kind == "read":
                    if self.grounding.misreads_content():
                        visual_misread = True
                        self._corrupt_after_misread(task, steps, index)
                    index += 1
                else:  # pragma: no cover - defensive
                    index += 1
                bundle_executed += 1
            if failure is not None:
                break

        result.success = bool(task.checker(self.app)) and failure is None
        if result.success:
            return
        if failure is None:
            failure = self._classify_checker_failure(task, plan.corruption, visual_misread,
                                                     grounding_error_seen)
        result.failure = failure

    # ------------------------------------------------------------------
    # round bookkeeping
    # ------------------------------------------------------------------
    def _record_round(self, result: SessionResult, visible: List[UIElement]) -> None:
        labelling = label_visible_controls(self._windows())
        prompt = self.config.base_prompt_tokens + labelled_prompt_tokens(labelling)
        if self.setting.has_forest_knowledge and self.core is not None:
            prompt += self.core.token_estimate()
        latency = (self.profile.base_latency_s
                   + prompt / 1000.0 * self.profile.latency_per_1k_prompt_tokens_s
                   + self.rng.uniform(-2.0, 2.0))
        result.record_call(LLMCallRecord(role="app", purpose="execute",
                                         prompt_tokens=prompt,
                                         completion_tokens=self.config.completion_tokens,
                                         latency_s=max(1.0, latency)))

    def _wasted_round(self, result: SessionResult, visible: List[UIElement]) -> None:
        """A navigation-planning error: the agent opens an unrelated branch."""
        clickable = [e for e in visible
                     if e.is_enabled and e.name and e.get_pattern(PatternId.INVOKE) is not None]
        if clickable:
            victim = self.rng.choice(clickable)
            deliver_click(self.app, victim)
            result.record_actions(1, self.config.seconds_per_action)
        result.notes.append("navigation planning error: wrong branch explored")

    # ------------------------------------------------------------------
    # step execution
    # ------------------------------------------------------------------
    def _do_click(self, step: MicroStep, result: SessionResult):
        visible = self._visible_elements()
        element = self.grounding.locate(step.target, visible, step.scope_hint)
        if element is None:
            return False, False
        was_error = element.name.lower() != step.target.lower()
        outcome = deliver_click(self.app, element)
        result.record_actions(1, self.config.seconds_per_action)
        return outcome.delivered, was_error

    def _do_type(self, step: MicroStep, result: SessionResult):
        visible = self._visible_elements()
        element = self.grounding.locate(step.target, visible, step.scope_hint)
        if element is None:
            return False, False
        was_error = element.name.lower() != step.target.lower()
        outcome = deliver_text(self.app, element, step.text)
        result.record_actions(1, self.config.seconds_per_action)
        return outcome.delivered, was_error

    def _do_drag_scroll(self, step: MicroStep, step_index: int,
                        attempts: Dict[int, int], result: SessionResult):
        """One observe–drag attempt; returns (done, permanently_failed)."""
        attempts[step_index] = attempts.get(step_index, 0) + 1
        scrollbar = self._find_scrollbar(step.target)
        if scrollbar is None:
            return False, attempts[step_index] >= self.config.max_composite_attempts
        if self.rng.random() < self.profile.composite_error_rate:
            achieved = max(0.0, min(100.0, step.value + self.rng.uniform(-35.0, 35.0)))
        else:
            achieved = max(0.0, min(100.0, step.value + self.rng.uniform(-3.0, 3.0)))
        deliver_scrollbar_drag(self.app, scrollbar, step.value, achieved)
        # The drag itself moves the thumb: force the realised position.
        scrollbar.set_position(achieved)
        result.record_actions(3, self.config.seconds_per_action)  # press, drag, release
        done = abs(scrollbar.position - step.value) <= self.config.scroll_tolerance
        failed = not done and attempts[step_index] >= self.config.max_composite_attempts
        return done, failed

    def _do_select_text(self, step: MicroStep, step_index: int,
                        attempts: Dict[int, int], result: SessionResult):
        """Iterative text selection (click start, shift-click end)."""
        attempts[step_index] = attempts.get(step_index, 0) + 1
        visible = self._visible_elements()
        element = self.grounding.locate(step.target, visible)
        result.record_actions(2, self.config.seconds_per_action)
        if element is None:
            return False, attempts[step_index] >= self.config.max_composite_attempts
        text_pattern = element.get_pattern(PatternId.TEXT)
        if text_pattern is None:
            return False, attempts[step_index] >= self.config.max_composite_attempts
        start, end = step.select_range[0], step.select_range[-1]
        if self.rng.random() < self.profile.composite_error_rate:
            # Mis-positioned cursor: the selection is off by one, or missed.
            available = len(text_pattern.get_paragraphs())
            start = max(0, min(available - 1, start + self.rng.choice([-1, 1])))
            end = max(start, min(available - 1, end + self.rng.choice([-1, 0, 1])))
            try:
                text_pattern.select_paragraphs(start, end)
            except IndexError:
                pass
            done = False
        else:
            try:
                text_pattern.select_paragraphs(start, end)
                done = True
            except IndexError:
                done = False
        failed = not done and attempts[step_index] >= self.config.max_composite_attempts
        return done, failed

    def _corrupt_after_misread(self, task: TaskSpec, steps: List[MicroStep],
                               read_index: int) -> None:
        """A misread observation makes a later dependent action target the
        wrong control (e.g. bolding the wrong cell)."""
        for step in steps[read_index + 1:]:
            if step.kind in ("click", "type"):
                intent = task.intents[step.intent_index] if \
                    0 <= step.intent_index < len(task.intents) else None
                if intent is not None and intent.distractors:
                    step.target = self.rng.choice(list(intent.distractors))
                return

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def _recover(self, task: TaskSpec, steps: List[MicroStep], index: int,
                 recoveries: Dict[int, int], result: SessionResult) -> bool:
        """Re-navigate the current intent from the top after getting lost."""
        intent_index = steps[index].intent_index
        recoveries[intent_index] = recoveries.get(intent_index, 0) + 1
        if recoveries[intent_index] > self.config.max_recoveries_per_intent:
            return False
        if self.rng.random() >= self.profile.recovery_competence:
            # The model mis-diagnoses the unexpected state and burns the
            # round without getting back on track.
            result.notes.append("failed to re-orient after an unexpected UI state")
            return True
        # Close a stray modal dialog if one is in the way.
        top = self.app.desktop.top_window(self.app.process_id)
        if top is not None and top.is_modal:
            deliver_shortcut(self.app, "escape")
            result.record_actions(1, self.config.seconds_per_action)
        # Re-derive the navigation for this intent and splice it in.
        intent = task.intents[intent_index] if 0 <= intent_index < len(task.intents) else None
        if intent is None or intent.kind not in (IntentKind.ACCESS, IntentKind.ACCESS_INPUT):
            return True
        resolution = self.planner.resolve_leaf(self.forest, steps[index].target or intent.target,
                                               intent.scope_hint)
        if resolution.node is None:
            resolution = self.planner.resolve_leaf(self.forest, intent.target, intent.scope_hint)
        if resolution.node is None:
            return False
        path = self.forest.node_path(resolution.node.node_id, resolution.entry_ref_ids)
        replacement = [MicroStep(kind="click", target=n.name, scope_hint=intent.scope_hint,
                                 intent_index=intent_index) for n in path]
        # Drop the remaining clicks of this intent and splice the fresh path.
        end = index
        while end < len(steps) and steps[end].intent_index == intent_index \
                and steps[end].kind == "click":
            end += 1
        steps[index:end] = replacement
        result.notes.append(f"recovered navigation for intent {intent_index}")
        return True

    # ------------------------------------------------------------------
    # failure classification
    # ------------------------------------------------------------------
    def _classify_checker_failure(self, task: TaskSpec, corruption, visual_misread: bool,
                                  grounding_error_seen: bool) -> FailureRecord:
        if corruption is not None:
            return FailureRecord(corruption, detail="semantic planning error")
        if visual_misread:
            return FailureRecord(FailureCause.VISUAL_SEMANTIC,
                                 detail="misread on-screen content")
        if grounding_error_seen:
            return FailureRecord(FailureCause.CONTROL_LOCALIZATION,
                                 detail="wrong control activated during execution")
        if task.uses_composite_interaction:
            return FailureRecord(FailureCause.COMPOSITE_INTERACTION,
                                 detail="composite interaction left the wrong state")
        return FailureRecord(FailureCause.CONTROL_LOCALIZATION,
                             detail="final state did not satisfy the checker")

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _windows(self) -> List[Window]:
        """Windows the agent can act on, topmost first.

        A modal dialog captures input: while one is open, only its controls
        are reachable, so a wrong click that opens an unrelated dialog
        actually blocks progress until the agent recovers.
        """
        windows = list(reversed(self.app.desktop.open_windows(self.app.process_id)))
        if windows and windows[0].is_modal:
            return windows[:1]
        return windows

    def _visible_elements(self) -> List[UIElement]:
        elements: List[UIElement] = []
        for window in self._windows():
            stack: List[UIElement] = [window]
            while stack:
                node = stack.pop()
                if not node.visible:
                    continue
                elements.append(node)
                stack.extend(reversed(node.children))
        return elements

    def _locatable(self, name: str, visible: List[UIElement]) -> bool:
        return self.grounding._best_match(name, visible) is not None

    def _find_scrollbar(self, name: str) -> Optional[ScrollBarControl]:
        for element in self._visible_elements():
            if isinstance(element, ScrollBarControl) and element.name == name:
                return element
        for element in self._visible_elements():
            if isinstance(element, ScrollBarControl):
                return element
        return None
