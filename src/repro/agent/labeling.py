"""Alphabetic labelling of visible controls.

The UFO-2-style baseline labels every control of the visible accessibility
tree before calling the LLM and passes the labels in the prompt.  Labels are
alphabetic (``A``, ``B``, ..., ``Z``, ``AA``, ``AB``, ...) to keep them
distinct from the numeric ids DMI's navigation topology uses (paper §5.1).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.llm.tokens import estimate_tokens
from repro.uia.element import UIElement
from repro.uia.tree import visible_elements


def alphabetic_labels(count: int) -> List[str]:
    """Generate ``count`` labels: A..Z, AA..AZ, BA.. and so on."""
    labels = []
    for index in range(count):
        label = ""
        value = index
        while True:
            label = chr(ord("A") + value % 26) + label
            value = value // 26 - 1
            if value < 0:
                break
        labels.append(label)
    return labels


def label_visible_controls(roots: Sequence[UIElement]) -> Dict[str, UIElement]:
    """Label every visible, named control under ``roots``.

    Returns an ordered mapping label -> element (document order, windows
    bottom-up so the topmost window's controls get the last labels, matching
    how an agent would re-label after a dialog opens).
    """
    elements: List[UIElement] = []
    for root in roots:
        for element in visible_elements(root):
            if element.name:
                elements.append(element)
    labels = alphabetic_labels(len(elements))
    return dict(zip(labels, elements))


def labelled_prompt_text(labelling: Dict[str, UIElement]) -> str:
    """Render the labelled control list the way it enters the prompt."""
    lines = ["## Visible controls"]
    for label, element in labelling.items():
        lines.append(f"{label}: {element.name} ({element.control_type.value})")
    return "\n".join(lines)


def labelled_prompt_tokens(labelling: Dict[str, UIElement]) -> int:
    return estimate_tokens(labelled_prompt_text(labelling))
